//! Deterministic discrete-event world.
//!
//! [`SimWorld`] hosts agents on named hosts connected by a
//! [`Topology`]. All interaction — message delivery, migration, timers —
//! flows through a single event queue ordered by `(time, sequence)`, so a
//! given seed always produces the identical execution. This is the runtime
//! used by every benchmark; the thread-backed runtime in
//! [`crate::thread_net`] exercises the same [`Agent`] API on real
//! concurrency.
//!
//! # Example
//!
//! ```
//! use agentsim::prelude::*;
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Serialize, Deserialize)]
//! struct Echo;
//!
//! impl Agent for Echo {
//!     fn agent_type(&self) -> &'static str { "echo" }
//!     fn snapshot(&self) -> serde_json::Value { serde_json::json!(null) }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
//!         ctx.note(format!("echoed {}", msg.kind));
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut world = SimWorld::new(7);
//! let host = world.add_host("solo");
//! let echo = world.create_agent(host, Box::new(Echo))?;
//! world.send_external(echo, Message::new("ping"))?;
//! world.run_until_idle();
//! assert_eq!(world.trace().labels(), vec!["echoed ping"]);
//! # Ok(())
//! # }
//! ```

use crate::agent::{Action, Agent, AgentCapsule, AgentRegistry, Ctx, DurablePolicy, FaultCounter};
use crate::chaos::{ChaosEvent, ChaosPlan, Fault};
use crate::clock::{SimDuration, SimTime};
use crate::durable::{DurabilityConfig, DurableStore};
use crate::error::{PlatformError, Result};
use crate::ids::{AgentId, HostId, MessageId};
use crate::intern::InternedStr;
use crate::message::Message;
use crate::metrics::Metrics;
use crate::net::Topology;
use crate::overload::{deadline_expired, EnqueueVerdict, MailboxConfig, MailboxState};
use crate::security::{Authenticator, TravelPermit};
use crate::storage::DeactivatedStore;
use crate::supervise::{RestoreDecision, SupervisionConfig, Supervisor, Verdict};
use crate::telemetry::{HopKind, SpanEventKind, Telemetry, TraceCtx};
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};

/// Where an agent currently is, from the world's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// Live on a host, receiving messages.
    Active(HostId),
    /// Serialized in a host's stable store.
    Deactivated(HostId),
    /// Travelling between hosts.
    InTransit,
}

#[derive(Debug)]
enum EventKind {
    Deliver(Message),
    Arrive {
        capsule: AgentCapsule,
        dest: HostId,
    },
    Timer {
        agent: AgentId,
        tag: u64,
        trace: Option<TraceCtx>,
        deadline: Option<SimTime>,
    },
    /// Apply (`heal == false`) or heal (`heal == true`) the chaos plan's
    /// fault at `index`.
    Chaos {
        index: usize,
        heal: bool,
    },
    /// Run the supervision failure detector. Only ever scheduled while
    /// supervision is enabled *and* armed by an observation, so worlds
    /// without supervision stay byte-identical.
    SupervisionTick,
}

/// Live chaos-engine state derived from an installed [`ChaosPlan`].
struct ChaosState {
    dup_probability: f64,
    reorder_probability: f64,
    max_jitter_us: u64,
    events: Vec<ChaosEvent>,
    /// Last scheduled delivery per (sender, receiver) pair: jitter is
    /// clamped so per-pair FIFO order survives reordering (TCP-like).
    fifo: HashMap<(Option<AgentId>, AgentId), SimTime>,
    /// Message ids already delivered to an active agent; duplicate copies
    /// are suppressed at the receiver.
    delivered: HashSet<MessageId>,
}

#[derive(Debug)]
struct QueuedEvent {
    at: SimTime,
    /// Shard that scheduled the event (0 in unsharded worlds). Part of the
    /// ordering key so that same-time events from different shards have a
    /// deterministic total order regardless of heap insertion order.
    shard: u16,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.shard == other.shard && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.shard, self.seq).cmp(&(other.at, other.shard, other.seq))
    }
}

/// What a [`BoundaryItem`] carries across a shard boundary.
pub(crate) enum BoundaryPayload {
    /// A message for an agent owned by another shard.
    Deliver(Message),
    /// An agent migrating to a host owned by another shard.
    Arrive { capsule: AgentCapsule, dest: HostId },
}

/// One cross-shard handoff, exchanged between epochs by
/// [`crate::shard::ShardedSimWorld`]. The `(at, origin_shard, origin_seq)`
/// triple is the item's position in the global total order: the destination
/// shard enqueues it under exactly that key, so same-seed runs reproduce at
/// any shard count and independently of exchange iteration order.
pub(crate) struct BoundaryItem {
    pub(crate) at: SimTime,
    pub(crate) origin_shard: u16,
    pub(crate) origin_seq: u64,
    pub(crate) payload: BoundaryPayload,
}

/// Cross-shard routing state, present only in multi-shard runs (installed
/// by [`crate::shard::ShardedSimWorld`]). `None` — the default — keeps the
/// single-shard world byte-identical to the pre-sharding runtime: none of
/// the boundary paths below are ever taken.
struct BoundaryState {
    /// Minimum latency of a boundary crossing. At least the epoch window:
    /// this is what makes the conservative lock-step barrier safe (an item
    /// sent during an epoch can never land inside any shard's past).
    latency: SimDuration,
    /// Agents known to live on other shards: id → host they were last
    /// announced on (used for fault/latency lookups on the sending side).
    remote_agents: HashMap<AgentId, HostId>,
    /// Hosts owned by other shards.
    remote_hosts: HashSet<HostId>,
    /// Remote hosts currently crashed, mirrored between epochs so remote
    /// dispatches are refused synchronously like local ones.
    remote_down: HashSet<HostId>,
    /// Outgoing boundary items, drained by the coordinator between epochs.
    outbox: Vec<BoundaryItem>,
    /// Agents newly created on (or arrived at) this shard, to be announced
    /// to the other shards at the next epoch exchange.
    announce: Vec<(AgentId, HostId)>,
}

struct Host {
    name: String,
    active: HashMap<AgentId, Box<dyn Agent>>,
    store: DeactivatedStore,
    auth: Authenticator,
    /// Messages for deactivated agents, replayed on activation.
    pending: HashMap<AgentId, Vec<Message>>,
    /// Crashed by the chaos engine: refuses arrivals and deliveries until
    /// restarted. The authenticator survives (stable-storage semantics),
    /// so genuine returning agents still verify after a restart.
    crashed: bool,
    /// WAL-backed stable storage, present when durability is enabled on
    /// the world. Survives crashes (only the unsynced log tail is lost);
    /// replayed by the recovery pass on restart.
    durable: Option<DurableStore>,
    /// Wedged by a chaos hang fault: the host is up and accepts arrivals,
    /// but deliveries and timer callbacks stall into the buffers below
    /// until the hang heals or the supervisor bounces the host.
    hung: bool,
    /// Deliveries that landed while hung, replayed on heal/bounce.
    stalled: Vec<Message>,
    /// Timer callbacks that came due while hung, fired on heal/bounce.
    stalled_timers: Vec<(AgentId, u64, Option<TraceCtx>, Option<SimTime>)>,
}

/// Live self-healing state, present after [`SimWorld::enable_supervision`].
struct SupervisionState {
    supervisor: Supervisor,
    /// Whether a detector tick is currently scheduled. The detector is
    /// dormant (no events) until an observation arms it, and disarms again
    /// once nothing is being watched — otherwise `run_until_idle` would
    /// never drain.
    armed: bool,
    /// Hosts replaced by automatic failover: dead host → standby.
    failed_over: HashMap<HostId, HostId>,
    /// Agents whose home moved in a failover; arrivals of capsules still
    /// carrying the dead home are re-bound from this map.
    rehomed: HashMap<AgentId, HostId>,
    /// In-transit orphans marked for retirement: their home failed over
    /// with no restored owner, so they are dropped on arrival instead of
    /// leaking.
    retired: HashSet<AgentId>,
}

/// The deterministic discrete-event agent world.
///
/// See the [module documentation](self) for an example.
pub struct SimWorld {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<QueuedEvent>>,
    hosts: BTreeMap<HostId, Host>,
    locations: HashMap<AgentId, Location>,
    homes: HashMap<AgentId, HostId>,
    /// Permit currently carried by each travelling (or visiting) agent.
    permits: HashMap<AgentId, TravelPermit>,
    topology: Topology,
    registry: AgentRegistry,
    metrics: Metrics,
    trace: Trace,
    rng: StdRng,
    next_agent_id: u64,
    next_msg_id: u64,
    next_host_id: u32,
    /// Safety valve against runaway event loops.
    max_events: u64,
    processed_events: u64,
    /// Chaos engine state, present after [`SimWorld::install_chaos`].
    chaos: Option<ChaosState>,
    /// Telemetry sink (request tracing + metrics registry), off by default.
    telemetry: Telemetry,
    /// Handler span of the callback currently executing, threaded through
    /// nested callbacks by save/restore in [`SimWorld::run_callback`].
    current_trace: Option<TraceCtx>,
    /// Ambient request deadline of the callback currently executing,
    /// stamped onto everything it sends. Same save/restore discipline as
    /// `current_trace`.
    current_deadline: Option<SimTime>,
    /// Bounded-mailbox state, present after [`SimWorld::set_mailbox`].
    /// `None` keeps the unbounded pre-overload behaviour byte-identical.
    mailbox: Option<MailboxState>,
    /// Deadline budget minted for every [`SimWorld::send_external`]
    /// request, if configured.
    ingress_deadline: Option<SimDuration>,
    /// This world's shard index (0 in unsharded worlds); stamped onto every
    /// scheduled event as the middle component of the ordering key.
    shard: u16,
    /// Cross-shard routing state; `None` outside sharded runs.
    boundary: Option<BoundaryState>,
    /// Durability configuration, present after
    /// [`SimWorld::enable_durability`]. `None` — the default — keeps every
    /// journaling seam untaken: traces and metrics stay byte-identical to
    /// the pre-durability runtime.
    durability: Option<DurabilityConfig>,
    /// Self-healing supervision, present after
    /// [`SimWorld::enable_supervision`]. `None` — the default — schedules
    /// no detector events and takes no recovery seams: traces stay
    /// byte-identical and every supervision counter stays zero.
    supervision: Option<SupervisionState>,
}

impl SimWorld {
    /// Create a world with a LAN topology and the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self::with_topology(seed, Topology::lan())
    }

    /// Create a world with an explicit topology.
    pub fn with_topology(seed: u64, topology: Topology) -> Self {
        SimWorld {
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            hosts: BTreeMap::new(),
            locations: HashMap::new(),
            homes: HashMap::new(),
            permits: HashMap::new(),
            topology,
            registry: AgentRegistry::new(),
            metrics: Metrics::new(),
            trace: Trace::new(),
            rng: StdRng::seed_from_u64(seed),
            next_agent_id: 1,
            next_msg_id: 1,
            next_host_id: 1,
            max_events: 50_000_000,
            processed_events: 0,
            chaos: None,
            telemetry: Telemetry::new(),
            current_trace: None,
            current_deadline: None,
            mailbox: None,
            ingress_deadline: None,
            shard: 0,
            boundary: None,
            durability: None,
            supervision: None,
        }
    }

    /// Give every host (existing and future) a WAL-backed
    /// [`DurableStore`]: agent capsules are journalled at callback and
    /// lifecycle boundaries, purchase intents/commits and profile deltas
    /// land via the `Ctx::journal_*` family, and
    /// [`SimWorld::restart_host`] runs a replay-based recovery pass. Off
    /// by default (zero cost, byte-identical traces).
    pub fn enable_durability(&mut self, cfg: DurabilityConfig) {
        self.durability = Some(cfg);
        for h in self.hosts.values_mut() {
            if h.durable.is_none() {
                h.durable = Some(DurableStore::new(cfg));
            }
        }
    }

    /// The world's durability configuration, if enabled.
    pub fn durability(&self) -> Option<DurabilityConfig> {
        self.durability
    }

    /// Read access to a host's durable store (tests, benches).
    pub fn durable_store(&self, host: HostId) -> Option<&DurableStore> {
        self.hosts.get(&host)?.durable.as_ref()
    }

    /// Turn on the self-healing supervision layer: a crashed host is
    /// *suspected* after missing a heartbeat lease and automatically
    /// failed over to a standby (durable replay + roamer reclamation)
    /// once the lease expires; a hung host is bounced after the hang
    /// grace; crash-looping agents are quarantined once their restart
    /// budget runs out. Off by default — no detector events are
    /// scheduled, traces stay byte-identical, and every supervision
    /// counter stays zero.
    pub fn enable_supervision(&mut self, cfg: SupervisionConfig) {
        self.supervision = Some(SupervisionState {
            supervisor: Supervisor::new(cfg),
            armed: false,
            failed_over: HashMap::new(),
            rehomed: HashMap::new(),
            retired: HashSet::new(),
        });
    }

    /// The supervision policy engine, if enabled (tests, benches).
    pub fn supervisor(&self) -> Option<&Supervisor> {
        self.supervision.as_ref().map(|s| &s.supervisor)
    }

    /// Standby host that automatically replaced `host`, if the
    /// supervisor ran a failover for it.
    pub fn failover_of(&self, host: HostId) -> Option<HostId> {
        self.supervision
            .as_ref()
            .and_then(|s| s.failed_over.get(&host).copied())
    }

    /// Whether `host` is currently wedged by a chaos hang fault.
    pub fn host_hung(&self, host: HostId) -> bool {
        self.hosts.get(&host).map(|h| h.hung).unwrap_or(false)
    }

    /// Enforce a per-agent bounded mailbox with the given capacity and
    /// full-mailbox policy. Off by default (unbounded, byte-identical to
    /// the pre-overload behaviour).
    pub fn set_mailbox(&mut self, config: MailboxConfig) {
        self.mailbox = Some(MailboxState::new(Some(config)));
    }

    /// Highest mailbox depth observed so far (0 when bounded mailboxes
    /// are off).
    pub fn mailbox_max_depth(&self) -> usize {
        self.mailbox
            .as_ref()
            .map_or(0, MailboxState::max_depth_seen)
    }

    /// Mint an absolute deadline of `now + budget` on every request
    /// injected via [`SimWorld::send_external`]. `None` (the default)
    /// leaves requests deadline-free.
    pub fn set_ingress_deadline(&mut self, budget: Option<SimDuration>) {
        self.ingress_deadline = budget;
    }

    /// Register a host and return its id.
    pub fn add_host(&mut self, name: impl Into<String>) -> HostId {
        let id = HostId(self.next_host_id);
        self.next_host_id += 1;
        let secret = self.rng.gen();
        self.hosts.insert(
            id,
            Host {
                name: name.into(),
                active: HashMap::new(),
                store: DeactivatedStore::new(),
                auth: Authenticator::new(secret),
                pending: HashMap::new(),
                crashed: false,
                durable: self.durability.map(DurableStore::new),
                hung: false,
                stalled: Vec::new(),
                stalled_timers: Vec::new(),
            },
        );
        id
    }

    /// Mutable access to the agent factory registry.
    pub fn registry_mut(&mut self) -> &mut AgentRegistry {
        &mut self.registry
    }

    /// Shared access to the agent factory registry.
    pub fn registry(&self) -> &AgentRegistry {
        &self.registry
    }

    /// Mutable access to the topology (adjust links between runs).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Create `agent` on `host` from outside the world (the operator's
    /// hand). `on_creation` runs immediately.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownHost`] if the host does not exist.
    pub fn create_agent(&mut self, host: HostId, agent: Box<dyn Agent>) -> Result<AgentId> {
        if !self.hosts.contains_key(&host) {
            return Err(PlatformError::UnknownHost(host));
        }
        let id = AgentId(self.next_agent_id);
        self.next_agent_id += 1;
        self.install_agent(host, id, agent, true);
        Ok(id)
    }

    /// Inject a message from outside the world (e.g. a simulated browser
    /// request entering the HttpA front). Delivered after the local delay.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownAgent`] if `to` has never been seen.
    pub fn send_external(&mut self, to: AgentId, mut msg: Message) -> Result<MessageId> {
        if !self.locations.contains_key(&to) {
            return Err(PlatformError::UnknownAgent(to));
        }
        msg.id = MessageId(self.next_msg_id);
        self.next_msg_id += 1;
        msg.from = None;
        msg.to = to;
        // Request ingress: mint the root span of a new trace (subject to
        // sampling) and open the first message hop under it.
        msg.trace = if self.telemetry.is_enabled() {
            self.telemetry.mint_root(&msg.kind, self.now).map(|root| {
                self.telemetry.child(
                    root,
                    HopKind::Message,
                    msg.kind.clone(),
                    None,
                    None,
                    self.now,
                )
            })
        } else {
            None
        };
        msg.deadline = self.ingress_deadline.map(|budget| self.now + budget);
        let id = msg.id;
        let delay = self.topology.local_delay();
        let at = self.now + delay;
        self.enqueue_deliver(at, msg);
        Ok(id)
    }

    /// Process a single event. Returns `false` when the queue is empty or
    /// the event budget is exhausted.
    pub fn step(&mut self) -> bool {
        if self.processed_events >= self.max_events {
            return false;
        }
        let Some(Reverse(event)) = self.events.pop() else {
            return false;
        };
        self.processed_events += 1;
        debug_assert!(event.at >= self.now, "event queue must be monotone");
        self.now = event.at;
        match event.kind {
            EventKind::Deliver(msg) => self.handle_deliver(msg),
            EventKind::Arrive { capsule, dest } => self.handle_arrival(capsule, dest),
            EventKind::Timer {
                agent,
                tag,
                trace,
                deadline,
            } => self.handle_timer(agent, tag, trace, deadline),
            EventKind::Chaos { index, heal } => self.handle_chaos(index, heal),
            EventKind::SupervisionTick => self.handle_supervision_tick(),
        }
        if self.durability.is_some() {
            self.maybe_checkpoint();
        }
        true
    }

    /// Checkpoint any durable store whose journal has grown past the
    /// configured threshold: fold the live capsules of delta-journalled
    /// agents into the state, snapshot it, and truncate the WAL. Bounds
    /// replay cost at recovery time.
    fn maybe_checkpoint(&mut self) {
        let hosts: Vec<HostId> = self.hosts.keys().copied().collect();
        for host in hosts {
            let due = self
                .hosts
                .get(&host)
                .and_then(|h| h.durable.as_ref())
                .is_some_and(DurableStore::should_checkpoint);
            if !due {
                continue;
            }
            // Delta-journalled agents only hit the WAL as deltas; capture
            // their live capsules now so the snapshot is self-contained
            // and their replayed delta history can be dropped.
            let mut fresh: Vec<(u64, serde_json::Value, bool)> = Vec::new();
            if let Some(h) = self.hosts.get(&host) {
                let mut ids: Vec<AgentId> = h
                    .active
                    .iter()
                    .filter(|(_, a)| matches!(a.durable_policy(), DurablePolicy::Deltas))
                    .map(|(id, _)| *id)
                    .collect();
                ids.sort_unstable();
                for id in ids {
                    let Some(agent) = h.active.get(&id) else {
                        continue;
                    };
                    let home = self.homes.get(&id).copied().unwrap_or(host);
                    let permit = self.permits.get(&id).copied();
                    let capsule = AgentCapsule::capture(id, agent.as_ref(), home, permit);
                    let value = serde_json::to_value(&capsule).unwrap_or(serde_json::Value::Null);
                    fresh.push((id.0, value, true));
                }
            }
            if let Some(store) = self.hosts.get_mut(&host).and_then(|h| h.durable.as_mut()) {
                // in-memory checkpoints cannot fail; the runtimes never
                // install file-backed stores
                let _ = store.checkpoint(fresh);
            }
            self.drain_durable_counters(host);
        }
    }

    /// Fold a host's durable-store counters into the world metrics.
    fn drain_durable_counters(&mut self, host: HostId) {
        if let Some(counters) = self
            .hosts
            .get_mut(&host)
            .and_then(|h| h.durable.as_mut())
            .map(DurableStore::take_counters)
        {
            counters.merge_into(&mut self.metrics);
        }
    }

    /// Journal the live capsule of an agent active on a durable host.
    /// Capsule-journalled agents are captured after every callback;
    /// delta-journalled agents only get a baseline capture (their ongoing
    /// history travels as deltas, folded in at checkpoints).
    fn journal_live_capsule(&mut self, host: HostId, id: AgentId) {
        let home = self.homes.get(&id).copied().unwrap_or(host);
        let permit = self.permits.get(&id).copied();
        let Some(h) = self.hosts.get_mut(&host) else {
            return;
        };
        let has_capsule = h
            .durable
            .as_ref()
            .is_some_and(|s| s.state().capsules.contains_key(&id.0));
        if h.durable.is_none() {
            return;
        }
        let value = {
            let Some(agent) = h.active.get(&id) else {
                return;
            };
            if matches!(agent.durable_policy(), DurablePolicy::Deltas) && has_capsule {
                return;
            }
            let capsule = AgentCapsule::capture(id, agent.as_ref(), home, permit);
            serde_json::to_value(&capsule).unwrap_or(serde_json::Value::Null)
        };
        if let Some(store) = h.durable.as_mut() {
            let _ = store.put_capsule(id.0, value, true);
        }
        self.drain_durable_counters(host);
    }

    /// Journal the removal of an agent's capsule from a host's durable
    /// store (departure or disposal — a crash deliberately does not).
    fn journal_capsule_gone(&mut self, host: HostId, id: AgentId) {
        if let Some(store) = self.hosts.get_mut(&host).and_then(|h| h.durable.as_mut()) {
            let _ = store.remove_capsule(id.0);
            self.drain_durable_counters(host);
        }
    }

    /// Run until no events remain. If request tracing recorded any spans,
    /// quiescence closes them all ([`Telemetry::finalize`]): every request
    /// whose work drained is complete by definition.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
        self.finalize_telemetry();
    }

    /// Close any open request spans at the current instant. Called by
    /// quiescence in [`SimWorld::run_until_idle`] and by the shard
    /// coordinator once the whole sharded world has drained.
    pub(crate) fn finalize_telemetry(&mut self) {
        if !self.telemetry.spans().is_empty() {
            let now = self.now;
            self.telemetry.finalize(now);
        }
    }

    /// Run until the clock reaches `deadline` or the queue drains.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.at > deadline {
                break;
            }
            if !self.step() {
                break;
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run for `span` of simulated time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The labelled event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access (e.g. to clear between bench iterations).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The telemetry sink: request span trees and the metrics registry.
    /// Disabled by default; see [`SimWorld::enable_telemetry`].
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable telemetry access (enable, set sampling, read registries).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Turn on request tracing: every subsequent
    /// [`SimWorld::send_external`] mints a root span that follows the
    /// request through messages, handlers, migrations and timers.
    pub fn enable_telemetry(&mut self) {
        self.telemetry.enable();
    }

    /// Where `agent` currently is, if the world knows it.
    pub fn location(&self, agent: AgentId) -> Option<Location> {
        self.locations.get(&agent).copied()
    }

    /// Home host of `agent` (where it was created).
    pub fn home_of(&self, agent: AgentId) -> Option<HostId> {
        self.homes.get(&agent).copied()
    }

    /// Ids of agents active on `host`, sorted for determinism.
    pub fn agents_on(&self, host: HostId) -> Vec<AgentId> {
        let Some(h) = self.hosts.get(&host) else {
            return Vec::new();
        };
        let mut ids: Vec<AgentId> = h.active.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of active agents on `host`.
    pub fn active_count(&self, host: HostId) -> usize {
        self.hosts.get(&host).map(|h| h.active.len()).unwrap_or(0)
    }

    /// Bytes of deactivated capsules in `host`'s stable store.
    pub fn stored_bytes(&self, host: HostId) -> usize {
        self.hosts
            .get(&host)
            .map(|h| h.store.stored_bytes())
            .unwrap_or(0)
    }

    /// Number of deactivated agents stored on `host`.
    pub fn stored_count(&self, host: HostId) -> usize {
        self.hosts.get(&host).map(|h| h.store.len()).unwrap_or(0)
    }

    /// Host display name.
    pub fn host_name(&self, host: HostId) -> Option<&str> {
        self.hosts.get(&host).map(|h| h.name.as_str())
    }

    /// All host ids, in creation order.
    pub fn hosts(&self) -> Vec<HostId> {
        self.hosts.keys().copied().collect()
    }

    /// Count of failed return-authentications on `host`.
    pub fn auth_rejections(&self, host: HostId) -> u64 {
        self.hosts
            .get(&host)
            .map(|h| h.auth.rejections())
            .unwrap_or(0)
    }

    /// Snapshot of an *active* agent's state, for inspection in tests.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownAgent`] if the agent is not active anywhere.
    pub fn snapshot_of(&self, agent: AgentId) -> Result<serde_json::Value> {
        let Some(Location::Active(host)) = self.locations.get(&agent).copied() else {
            return Err(PlatformError::UnknownAgent(agent));
        };
        let h = self
            .hosts
            .get(&host)
            .ok_or(PlatformError::UnknownHost(host))?;
        let a = h
            .active
            .get(&agent)
            .ok_or(PlatformError::UnknownAgent(agent))?;
        Ok(a.snapshot())
    }

    /// Administratively deactivate an active agent (tests / operators).
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownAgent`] if not active.
    pub fn deactivate_agent(&mut self, agent: AgentId) -> Result<()> {
        match self.locations.get(&agent).copied() {
            Some(Location::Active(host)) => {
                self.do_deactivate(host, agent);
                Ok(())
            }
            Some(Location::Deactivated(_)) => Err(PlatformError::AgentDeactivated(agent)),
            _ => Err(PlatformError::UnknownAgent(agent)),
        }
    }

    /// Administratively activate a deactivated agent.
    ///
    /// # Errors
    ///
    /// [`PlatformError::AgentAlreadyActive`] if active;
    /// [`PlatformError::UnknownAgent`] if unknown.
    pub fn activate_agent(&mut self, agent: AgentId) -> Result<()> {
        match self.locations.get(&agent).copied() {
            Some(Location::Deactivated(host)) => self.do_activate(host, agent),
            Some(Location::Active(_)) => Err(PlatformError::AgentAlreadyActive(agent)),
            _ => Err(PlatformError::UnknownAgent(agent)),
        }
    }

    /// Install `plan` into the world: its faults are scheduled as ordinary
    /// events (apply at `at`, heal at `at + heal_after`) and the message
    /// duplication/reordering knobs take effect immediately. All chaos
    /// randomness is drawn from the world's own RNG, so an execution
    /// reproduces exactly from `(world seed, plan)`.
    pub fn install_chaos(&mut self, plan: &ChaosPlan) {
        for (index, ev) in plan.events.iter().enumerate() {
            self.schedule_at(ev.at(), EventKind::Chaos { index, heal: false });
            self.schedule_at(ev.heals_at(), EventKind::Chaos { index, heal: true });
        }
        self.chaos = Some(ChaosState {
            dup_probability: plan.dup_probability,
            reorder_probability: plan.reorder_probability,
            max_jitter_us: plan.max_jitter_us,
            events: plan.events.clone(),
            fifo: HashMap::new(),
            delivered: HashSet::new(),
        });
        self.trace.record(
            self.now,
            None,
            format!(
                "chaos: plan installed (seed {}, {} events)",
                plan.seed,
                plan.events.len()
            ),
        );
    }

    /// Crash `host`: every active agent and deactivated capsule on it is
    /// lost (the registry reconciles — their locations are forgotten), and
    /// the host refuses deliveries, arrivals and dispatches until
    /// [`SimWorld::restart_host`]. The authenticator survives, modelling
    /// secrets kept on stable storage.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownHost`] if the host does not exist.
    pub fn crash_host(&mut self, host: HostId) -> Result<()> {
        let h = self
            .hosts
            .get_mut(&host)
            .ok_or(PlatformError::UnknownHost(host))?;
        if h.crashed {
            return Ok(());
        }
        h.crashed = true;
        let mut lost: Vec<AgentId> = h.active.keys().copied().collect();
        h.active.clear();
        lost.extend(h.store.drain());
        h.pending.clear();
        // A crash while hung loses the stall buffers with the host.
        h.hung = false;
        let stalled_lost = h.stalled.len() as u64;
        h.stalled.clear();
        h.stalled_timers.clear();
        if let Some(store) = h.durable.as_mut() {
            // Stable storage survives the crash, minus the unsynced WAL
            // tail. The agents still count as lost here; the recovery
            // pass on restart is what brings them back.
            let _ = store.crash();
        }
        for id in &lost {
            self.locations.remove(id);
            self.permits.remove(id);
            if let Some(mb) = &mut self.mailbox {
                mb.forget(*id);
            }
        }
        self.metrics.host_crashes += 1;
        self.metrics.agents_lost_in_crash += lost.len() as u64;
        self.metrics.messages_lost += stalled_lost;
        self.trace.record(
            self.now,
            None,
            format!("chaos: {host} crashed ({} agents lost)", lost.len()),
        );
        let now_us = self.now.as_micros();
        if let Some(state) = self.supervision.as_mut() {
            state.supervisor.observe_hang_cleared(host);
            state.supervisor.observe_crash(host, now_us);
        }
        self.arm_supervision();
        Ok(())
    }

    /// Bring a crashed host back up (empty, but reachable again). With
    /// durability enabled the restart also runs the recovery pass:
    /// replay the WAL over the last snapshot, restore deactivated
    /// capsules into the host's store, rehydrate journalled active
    /// agents, and hand each its logged profile deltas via
    /// [`Agent::on_recovered`].
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownHost`] if the host does not exist.
    pub fn restart_host(&mut self, host: HostId) -> Result<()> {
        let h = self
            .hosts
            .get_mut(&host)
            .ok_or(PlatformError::UnknownHost(host))?;
        if h.crashed {
            h.crashed = false;
            let durable = h.durable.is_some();
            self.trace
                .record(self.now, None, format!("chaos: {host} restarted"));
            if durable {
                self.recover_host(host);
            }
            // A scripted/chaos heal cancels any pending automatic failover.
            if let Some(state) = self.supervision.as_mut() {
                state.supervisor.observe_restart(host);
            }
        }
        Ok(())
    }

    /// Replay a restarted host's durable store and restore its agents.
    fn recover_host(&mut self, host: HostId) {
        let recovered = match self
            .hosts
            .get(&host)
            .and_then(|h| h.durable.as_ref())
            .map(DurableStore::recover)
        {
            Some(Ok(r)) => r,
            Some(Err(e)) => {
                self.trace
                    .record(self.now, None, format!("recovery: {host} failed: {e}"));
                return;
            }
            None => return,
        };
        self.metrics.hosts_recovered += 1;
        self.metrics.wal_records_replayed += recovered.replayed as u64;
        let mut restored_active: Vec<AgentId> = Vec::new();
        let mut restored = 0u64;
        for (raw, rec) in &recovered.state.capsules {
            let id = AgentId(*raw);
            // Poison protection: an agent that keeps crash-looping through
            // recovery passes is quarantined to dead-letters instead of
            // being restored yet again.
            let decision = self
                .supervision
                .as_mut()
                .map(|s| s.supervisor.note_restore(id));
            if matches!(decision, Some(RestoreDecision::Quarantine)) {
                self.metrics.agents_quarantined += 1;
                self.trace.record(
                    self.now,
                    Some(id),
                    format!("supervisor: {id} quarantined (restart budget exhausted)"),
                );
                continue;
            }
            let capsule: AgentCapsule = match serde_json::from_value(rec.capsule.clone()) {
                Ok(c) => c,
                Err(e) => {
                    self.trace.record(
                        self.now,
                        None,
                        format!("recovery: {host} capsule for {id} unreadable: {e}"),
                    );
                    continue;
                }
            };
            let home = capsule.home;
            let permit = capsule.permit;
            if rec.active {
                match self.registry.rehydrate(&capsule) {
                    Ok(agent) => {
                        if let Some(h) = self.hosts.get_mut(&host) {
                            h.active.insert(id, agent);
                        }
                        self.locations.insert(id, Location::Active(host));
                        self.homes.insert(id, home);
                        if let Some(p) = permit {
                            self.permits.insert(id, p);
                        }
                        restored_active.push(id);
                        restored += 1;
                    }
                    Err(e) => {
                        self.trace.record(
                            self.now,
                            None,
                            format!("recovery: {host} cannot rehydrate {id}: {e}"),
                        );
                    }
                }
            } else {
                if let Some(h) = self.hosts.get_mut(&host) {
                    h.store.store(capsule);
                }
                self.locations.insert(id, Location::Deactivated(host));
                self.homes.insert(id, home);
                restored += 1;
            }
        }
        self.metrics.agents_recovered += restored;
        self.trace.record(
            self.now,
            None,
            format!(
                "recovery: {host} replayed {} wal records, restored {restored} agents",
                recovered.replayed
            ),
        );
        restored_active.sort_unstable();
        for id in restored_active {
            let deltas = recovered.state.deltas_for(id.0);
            self.metrics.profile_deltas_replayed += deltas.len() as u64;
            self.run_callback(id, None, "on_recovered", move |agent, ctx| {
                agent.on_recovered(ctx, &deltas);
            });
        }
    }

    /// Whether `host` is currently crashed.
    pub fn host_crashed(&self, host: HostId) -> bool {
        self.hosts.get(&host).map(|h| h.crashed).unwrap_or(false)
    }

    /// Ensure a supervision detector tick is scheduled. The detector is
    /// dormant (zero events, zero cost) until an observation arms it.
    fn arm_supervision(&mut self) {
        let interval = match self.supervision.as_mut() {
            Some(state) if !state.armed => {
                state.armed = true;
                state.supervisor.config().lease_interval_us
            }
            _ => return,
        };
        self.schedule(
            SimDuration::from_micros(interval),
            EventKind::SupervisionTick,
        );
    }

    /// Run the failure detector and execute its verdicts, then reschedule
    /// the next tick while anything is still being watched.
    fn handle_supervision_tick(&mut self) {
        let now_us = self.now.as_micros();
        let (verdicts, interval) = match self.supervision.as_mut() {
            Some(state) => (
                state.supervisor.tick(now_us),
                state.supervisor.config().lease_interval_us,
            ),
            None => return,
        };
        for verdict in verdicts {
            match verdict {
                Verdict::Suspect(host) => {
                    self.metrics.hosts_suspected += 1;
                    self.trace.record(
                        self.now,
                        None,
                        format!("supervisor: {host} suspected (missed heartbeat lease)"),
                    );
                }
                Verdict::FailOver(host) => {
                    self.metrics.leases_expired += 1;
                    self.trace.record(
                        self.now,
                        None,
                        format!("supervisor: {host} lease expired, starting failover"),
                    );
                    self.failover_host(host);
                }
                Verdict::BounceHang(host) => {
                    self.metrics.hangs_detected += 1;
                    self.trace.record(
                        self.now,
                        None,
                        format!("supervisor: {host} hung past grace, bouncing"),
                    );
                    self.heal_hang(host, true);
                }
            }
        }
        let watching = self
            .supervision
            .as_ref()
            .is_some_and(|s| s.supervisor.watching());
        if watching {
            self.schedule(
                SimDuration::from_micros(interval),
                EventKind::SupervisionTick,
            );
        } else if let Some(state) = self.supervision.as_mut() {
            state.armed = false;
        }
    }

    /// Automatic host failover: stand up a standby host, move the dead
    /// host's durable store onto it, re-run the replay/rehydrate recovery
    /// pass there unprompted, and reclaim every agent homed on the dead
    /// host — restored agents and roamers are re-bound to the standby
    /// ([`Agent::on_rehomed`]); orphaned roamers with no restored owner
    /// are retired instead of leaking.
    fn failover_host(&mut self, dead: HostId) {
        if !self.host_crashed(dead) {
            return; // healed since the lease expired; nothing to do
        }
        let base_name = self
            .hosts
            .get(&dead)
            .map(|h| h.name.clone())
            .unwrap_or_else(|| format!("{dead}"));
        let standby = self.add_host(format!("{base_name}+failover"));
        // Move (not copy) the durable store: the dead host must not be
        // able to resurrect a second copy of these agents if a scripted
        // heal restarts it later.
        let moved = self.hosts.get_mut(&dead).and_then(|h| h.durable.take());
        if let Some(store) = moved {
            if let Some(s) = self.hosts.get_mut(&standby) {
                s.durable = Some(store);
            }
        }
        self.metrics.failovers += 1;
        self.trace.record(
            self.now,
            None,
            format!("supervisor: {dead} failed over to {standby} ({base_name}+failover)"),
        );
        self.recover_host(standby);
        let restored_any = self
            .hosts
            .get(&standby)
            .map(|h| !h.active.is_empty() || !h.store.is_empty())
            .unwrap_or(false);
        let mut orphans: Vec<AgentId> = self
            .homes
            .iter()
            .filter(|(_, home)| **home == dead)
            .map(|(id, _)| *id)
            .collect();
        orphans.sort_unstable();
        for id in orphans {
            match self.locations.get(&id).copied() {
                Some(Location::Active(at)) if at == standby => {
                    // Restored by the recovery pass above: re-bound
                    // silently as part of the failover itself.
                    self.homes.insert(id, standby);
                    if let Some(state) = self.supervision.as_mut() {
                        state.rehomed.insert(id, standby);
                    }
                    self.run_callback(id, None, "on_rehomed", move |agent, ctx| {
                        agent.on_rehomed(ctx, standby)
                    });
                }
                Some(_) if restored_any => {
                    // A roamer whose owner came back on the standby:
                    // re-bind its lease-stamped home. In-transit agents
                    // get their callback on arrival via the rehomed map.
                    self.homes.insert(id, standby);
                    if let Some(state) = self.supervision.as_mut() {
                        state.rehomed.insert(id, standby);
                    }
                    self.metrics.agents_rehomed += 1;
                    self.trace.record(
                        self.now,
                        Some(id),
                        format!("supervisor: roaming {id} re-bound to {standby}"),
                    );
                    self.run_callback(id, None, "on_rehomed", move |agent, ctx| {
                        agent.on_rehomed(ctx, standby)
                    });
                }
                Some(Location::Active(at)) | Some(Location::Deactivated(at)) => {
                    // No owner restored on the standby: retire the orphan
                    // rather than leak it.
                    self.metrics.agents_retired += 1;
                    self.trace.record(
                        self.now,
                        Some(id),
                        format!("supervisor: orphan {id} retired (home {dead} lost)"),
                    );
                    self.do_dispose(at, id);
                }
                Some(Location::InTransit) => {
                    // Cannot be disposed mid-flight: dropped on arrival.
                    if let Some(state) = self.supervision.as_mut() {
                        state.retired.insert(id);
                    }
                }
                None => {
                    // Lost in the crash and not restored: drop the stale
                    // home entry so a later failover won't re-process it.
                    self.homes.remove(&id);
                }
            }
        }
        if let Some(state) = self.supervision.as_mut() {
            state.failed_over.insert(dead, standby);
        }
    }

    /// Wedge `host` (chaos hang fault): arrivals still land, but
    /// deliveries and timer callbacks stall until the hang heals or the
    /// supervisor bounces the host.
    fn apply_hang(&mut self, host: HostId) {
        let Some(h) = self.hosts.get_mut(&host) else {
            return;
        };
        if h.crashed || h.hung {
            return;
        }
        h.hung = true;
        self.metrics.hangs_injected += 1;
        self.trace.record(
            self.now,
            None,
            format!("chaos: {host} hung (deliveries stalling)"),
        );
        let now_us = self.now.as_micros();
        if let Some(state) = self.supervision.as_mut() {
            state.supervisor.observe_hang(host, now_us);
        }
        self.arm_supervision();
    }

    /// Un-wedge `host` and replay everything that stalled. `bounced`
    /// marks a supervisor-driven bounce rather than a scripted chaos heal.
    fn heal_hang(&mut self, host: HostId, bounced: bool) {
        let (stalled, timers) = {
            let Some(h) = self.hosts.get_mut(&host) else {
                return;
            };
            if !h.hung {
                return;
            }
            h.hung = false;
            (
                std::mem::take(&mut h.stalled),
                std::mem::take(&mut h.stalled_timers),
            )
        };
        let label = if bounced {
            format!(
                "supervisor: {host} bounced ({} stalled deliveries replayed)",
                stalled.len()
            )
        } else {
            format!(
                "chaos: {host} unhung ({} stalled deliveries replayed)",
                stalled.len()
            )
        };
        self.trace.record(self.now, None, label);
        if let Some(state) = self.supervision.as_mut() {
            state.supervisor.observe_hang_cleared(host);
        }
        for msg in stalled {
            let at = self.now + self.topology.local_delay();
            self.enqueue_deliver(at, msg);
        }
        for (agent, tag, trace, deadline) in timers {
            self.schedule_at(
                self.now,
                EventKind::Timer {
                    agent,
                    tag,
                    trace,
                    deadline,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // shard boundary (driven by crate::shard::ShardedSimWorld)
    // ------------------------------------------------------------------

    /// Turn this world into shard `shard` of a multi-shard run. Non-zero
    /// shards get disjoint id bases so agent/message/host ids are globally
    /// unique; shard 0 keeps the default bases, which is what makes the
    /// 1-shard configuration byte-identical to an unsharded world.
    pub(crate) fn enable_boundary(&mut self, shard: u16, latency: SimDuration) {
        self.shard = shard;
        if shard > 0 {
            self.next_agent_id = ((shard as u64) << 40) | 1;
            self.next_msg_id = ((shard as u64) << 40) | 1;
            self.next_host_id = ((shard as u32) << 24) | 1;
        }
        self.boundary = Some(BoundaryState {
            latency,
            remote_agents: HashMap::new(),
            remote_hosts: HashSet::new(),
            remote_down: HashSet::new(),
            outbox: Vec::new(),
            announce: Vec::new(),
        });
    }

    /// Make a host owned by another shard addressable from this one.
    pub(crate) fn register_remote_host(&mut self, host: HostId) {
        if let Some(b) = &mut self.boundary {
            b.remote_hosts.insert(host);
        }
    }

    /// Record (or refresh) the shard-external location of an agent.
    pub(crate) fn register_remote_agent(&mut self, agent: AgentId, host: HostId) {
        if let Some(b) = &mut self.boundary {
            b.remote_agents.insert(agent, host);
        }
    }

    /// Mirror a remote host's crashed/restarted state.
    pub(crate) fn set_remote_host_down(&mut self, host: HostId, down: bool) {
        if let Some(b) = &mut self.boundary {
            if down {
                b.remote_down.insert(host);
            } else {
                b.remote_down.remove(&host);
            }
        }
    }

    /// Time of the earliest queued event, if any.
    pub(crate) fn next_event_at(&self) -> Option<SimTime> {
        self.events.peek().map(|Reverse(e)| e.at)
    }

    /// Process every event strictly before `end` (one conservative epoch).
    /// The clock is left at the last processed event, not advanced to
    /// `end`, so a 1-shard epoch loop replays `run_until_idle` exactly.
    pub(crate) fn run_window(&mut self, end: SimTime) {
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.at >= end {
                break;
            }
            if !self.step() {
                break;
            }
        }
    }

    /// Advance the clock to the epoch end without processing anything.
    /// Called on every shard (busy or idle) at the inter-epoch barrier so
    /// shard clocks stay in lockstep: if an idle shard's clock lagged (or
    /// ran ahead), a later boundary item could land in its past. With
    /// lockstep, every pending event and every outbox item is stamped at
    /// or after the epoch end, so `now <= end <=` all future work.
    pub(crate) fn sync_clock(&mut self, to: SimTime) {
        if self.now < to {
            self.now = to;
        }
    }

    /// Take the boundary items produced during the last window.
    pub(crate) fn drain_outbox(&mut self) -> Vec<BoundaryItem> {
        self.boundary
            .as_mut()
            .map(|b| std::mem::take(&mut b.outbox))
            .unwrap_or_default()
    }

    /// Take the agent announcements produced during the last window.
    pub(crate) fn drain_announcements(&mut self) -> Vec<(AgentId, HostId)> {
        self.boundary
            .as_mut()
            .map(|b| std::mem::take(&mut b.announce))
            .unwrap_or_default()
    }

    /// Accept a boundary item routed here by the coordinator. The item is
    /// enqueued under its origin `(at, shard, seq)` key, so the resulting
    /// heap order is independent of exchange iteration order.
    pub(crate) fn inject_boundary(&mut self, item: BoundaryItem) {
        debug_assert!(
            item.at >= self.now,
            "boundary item must not land in this shard's past"
        );
        let at = item.at.max(self.now);
        let (shard, seq) = (item.origin_shard, item.origin_seq);
        match item.payload {
            BoundaryPayload::Deliver(msg) => {
                self.metrics.boundary_messages += 1;
                self.enqueue_deliver_keyed(at, Some((shard, seq)), msg);
            }
            BoundaryPayload::Arrive { capsule, dest } => {
                self.metrics.boundary_migrations += 1;
                if let Some(b) = &mut self.boundary {
                    // The agent is ours from injection on.
                    b.remote_agents.remove(&capsule.id);
                }
                self.events.push(Reverse(QueuedEvent {
                    at,
                    shard,
                    seq,
                    kind: EventKind::Arrive { capsule, dest },
                }));
            }
        }
    }

    /// Push an announcement for the other shards, if this world is sharded.
    fn announce(&mut self, id: AgentId, host: HostId) {
        if let Some(b) = &mut self.boundary {
            b.announce.push((id, host));
        }
    }

    /// Host an agent is known to occupy on another shard, if any.
    fn remote_host_of(&self, agent: AgentId) -> Option<HostId> {
        self.boundary
            .as_ref()
            .and_then(|b| b.remote_agents.get(&agent).copied())
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn schedule(&mut self, delay: SimDuration, kind: EventKind) {
        let at = self.now + delay;
        self.schedule_at(at, kind);
    }

    /// Schedule at an absolute time (clamped to now, keeping the queue
    /// monotone).
    fn schedule_at(&mut self, at: SimTime, kind: EventKind) {
        let at = at.max(self.now);
        let shard = self.shard;
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(QueuedEvent {
            at,
            shard,
            seq,
            kind,
        }));
    }

    /// Apply or heal the installed plan's fault at `index`.
    fn handle_chaos(&mut self, index: usize, heal: bool) {
        let Some(ev) = self
            .chaos
            .as_ref()
            .and_then(|c| c.events.get(index))
            .copied()
        else {
            return;
        };
        let label = match (ev.fault, heal) {
            (Fault::Partition { a, b }, false) => {
                self.topology.partition(a, b);
                format!("chaos: partition {a}-{b}")
            }
            (Fault::Partition { a, b }, true) => {
                self.topology.heal_partition(a, b);
                format!("chaos: heal partition {a}-{b}")
            }
            (Fault::LinkLoss { a, b, loss }, false) => {
                self.topology.set_fault_loss(a, b, loss);
                format!("chaos: link {a}-{b} loss {loss:.2}")
            }
            (Fault::LinkLoss { a, b, .. }, true) => {
                self.topology.clear_fault_loss(a, b);
                format!("chaos: heal link {a}-{b} loss")
            }
            (Fault::SlowLink { a, b, factor }, false) => {
                self.topology.set_slowdown(a, b, factor);
                format!("chaos: link {a}-{b} slowed {factor:.1}x")
            }
            (Fault::SlowLink { a, b, .. }, true) => {
                self.topology.clear_slowdown(a, b);
                format!("chaos: heal link {a}-{b} slowdown")
            }
            (Fault::CrashHost { host }, false) => {
                if self.hosts.contains_key(&host) {
                    let _ = self.crash_host(host);
                } else {
                    // Another shard owns the host; mirror its state so
                    // remote dispatches are refused while it is down.
                    self.set_remote_host_down(host, true);
                }
                return; // crash_host traces for itself
            }
            (Fault::CrashHost { host }, true) => {
                if self.hosts.contains_key(&host) {
                    let _ = self.restart_host(host);
                } else {
                    self.set_remote_host_down(host, false);
                }
                return; // restart_host traces for itself
            }
            (Fault::Hang { host }, false) => {
                // Stalling is enforced at the shard that owns the host;
                // other shards see nothing (the hung host still accepts
                // traffic, so there is no routing state to mirror).
                if self.hosts.contains_key(&host) {
                    self.apply_hang(host);
                }
                return; // apply_hang traces for itself
            }
            (Fault::Hang { host }, true) => {
                if self.hosts.contains_key(&host) {
                    self.heal_hang(host, false);
                }
                return; // heal_hang traces for itself
            }
        };
        self.trace.record(self.now, None, label);
    }

    fn install_agent(&mut self, host: HostId, id: AgentId, agent: Box<dyn Agent>, fresh: bool) {
        let h = self.hosts.get_mut(&host).expect("install on known host");
        h.active.insert(id, agent);
        self.locations.insert(id, Location::Active(host));
        if fresh {
            self.homes.insert(id, host);
            self.metrics.agents_created += 1;
            self.announce(id, host);
            self.run_callback(id, None, "on_creation", |agent, ctx| agent.on_creation(ctx));
        }
    }

    /// Run `f` against the (active) agent, then apply the actions it
    /// queued. When the triggering hop carries a trace context (`parent`),
    /// the callback runs under a fresh handler span named `name`, which
    /// becomes the parent of every hop the callback causes.
    fn run_callback<F>(&mut self, id: AgentId, parent: Option<TraceCtx>, name: &str, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut Ctx<'_>),
    {
        let Some(Location::Active(host)) = self.locations.get(&id).copied() else {
            return;
        };
        let Some(mut agent) = self.hosts.get_mut(&host).and_then(|h| h.active.remove(&id)) else {
            return;
        };
        let handler = parent.map(|p| {
            self.telemetry.child(
                p,
                HopKind::Handler,
                InternedStr::new(name),
                Some(id),
                Some(host),
                self.now,
            )
        });
        let saved = std::mem::replace(&mut self.current_trace, handler);
        // Nested callbacks (on_creation from a Create action, etc.) inherit
        // the caller's ambient deadline; event handlers overwrite it from
        // the carried value before calling in.
        let saved_deadline = self.current_deadline;
        let mut actions = Vec::new();
        {
            let mut ctx = Ctx::new(
                id,
                host,
                self.now,
                &mut self.rng,
                &mut actions,
                &mut self.next_agent_id,
            )
            .with_trace(handler)
            .with_deadline(self.current_deadline);
            f(agent.as_mut(), &mut ctx);
        }
        // Reinsert before applying actions so that actions targeting the
        // agent itself (deactivate_self, dispose_self, dispatch_self) see a
        // consistent world.
        if let Some(h) = self.hosts.get_mut(&host) {
            h.active.insert(id, agent);
        }
        self.apply_actions(id, host, actions);
        // Callback boundary = journaling boundary: if the agent is still
        // active here on a durable host, capture its (possibly mutated)
        // capsule so a crash replays it at this point.
        if self.durability.is_some() && self.locations.get(&id) == Some(&Location::Active(host)) {
            self.journal_live_capsule(host, id);
        }
        if let Some(h) = handler {
            let now = self.now;
            self.telemetry.end(h.span_id, now);
            if let Some(wall) = self
                .telemetry
                .span(h.span_id)
                .and_then(|s| s.wall_end_ns.map(|e| e.saturating_sub(s.wall_start_ns)))
            {
                self.telemetry
                    .registry_mut()
                    .observe("stage.handler_wall_ns", wall);
            }
        }
        self.current_trace = saved;
        self.current_deadline = saved_deadline;
    }

    fn apply_actions(&mut self, actor: AgentId, host: HostId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => self.do_send(host, to, msg),
                Action::Create { id, agent } => {
                    let h = self.hosts.get_mut(&host).expect("actor host exists");
                    h.active.insert(id, agent);
                    self.locations.insert(id, Location::Active(host));
                    self.homes.insert(id, host);
                    self.metrics.agents_created += 1;
                    self.announce(id, host);
                    let parent = self.current_trace;
                    self.run_callback(id, parent, "on_creation", |agent, ctx| {
                        agent.on_creation(ctx)
                    });
                }
                Action::CreateOfType {
                    id,
                    agent_type,
                    state,
                } => {
                    let capsule = AgentCapsule {
                        id,
                        agent_type,
                        state,
                        home: host,
                        permit: None,
                        trace: None,
                        deadline: None,
                    };
                    match self.registry.rehydrate(&capsule) {
                        Ok(agent) => {
                            let h = self.hosts.get_mut(&host).expect("actor host exists");
                            h.active.insert(id, agent);
                            self.locations.insert(id, Location::Active(host));
                            self.homes.insert(id, host);
                            self.metrics.agents_created += 1;
                            self.announce(id, host);
                            let parent = self.current_trace;
                            self.run_callback(id, parent, "on_creation", |agent, ctx| {
                                agent.on_creation(ctx)
                            });
                        }
                        Err(e) => {
                            self.trace.record(
                                self.now,
                                Some(actor),
                                format!("create-of-type failed for {id}: {e}"),
                            );
                        }
                    }
                }
                Action::DispatchSelf { dest } => self.do_dispatch(host, actor, dest),
                Action::CloneSelf { id } => self.do_clone(host, actor, id),
                Action::Retract { id, to } => match self.locations.get(&id).copied() {
                    Some(Location::Active(at)) => {
                        if at == to {
                            self.trace.record(
                                self.now,
                                Some(actor),
                                format!("retract ignored: {id} already at {to}"),
                            );
                        } else {
                            self.do_dispatch(at, id, to);
                        }
                    }
                    other => {
                        self.trace.record(
                            self.now,
                            Some(actor),
                            format!("retract failed: {id} not active ({other:?})"),
                        );
                    }
                },
                Action::Deactivate { id } => {
                    if self.locations.get(&id) == Some(&Location::Active(host)) {
                        self.do_deactivate(host, id);
                    } else {
                        self.trace.record(
                            self.now,
                            Some(actor),
                            format!("deactivate ignored: {id} not active on {host}"),
                        );
                    }
                }
                Action::Activate { id } => {
                    if self.locations.get(&id) == Some(&Location::Deactivated(host)) {
                        let _ = self.do_activate(host, id);
                    } else {
                        self.trace.record(
                            self.now,
                            Some(actor),
                            format!("activate ignored: {id} not stored on {host}"),
                        );
                    }
                }
                Action::Dispose { id } => self.do_dispose(host, id),
                Action::SetTimer { id, delay, tag } => {
                    // A pending timer is a hop of the request that armed
                    // it: span opens at arm, closes at fire.
                    let trace = self.current_trace.map(|p| {
                        self.telemetry.child(
                            p,
                            HopKind::Timer,
                            InternedStr::new("timer"),
                            Some(id),
                            Some(host),
                            self.now,
                        )
                    });
                    let deadline = self.current_deadline;
                    self.schedule(
                        delay,
                        EventKind::Timer {
                            agent: id,
                            tag,
                            trace,
                            deadline,
                        },
                    );
                }
                Action::SetDeadline { deadline } => self.current_deadline = deadline,
                Action::Note { label } => {
                    if let Some(tc) = self.current_trace {
                        self.telemetry.event(
                            tc.span_id,
                            SpanEventKind::Note,
                            label.clone(),
                            self.now,
                        );
                    }
                    self.trace.record(self.now, Some(actor), label);
                }
                Action::CountFault { counter } => {
                    let (kind, label) = match counter {
                        FaultCounter::Retry => {
                            self.metrics.retries += 1;
                            (SpanEventKind::Retry, "retry attempt")
                        }
                        FaultCounter::DegradedReply => {
                            self.metrics.degraded_replies += 1;
                            (SpanEventKind::Degraded, "degraded reply")
                        }
                        FaultCounter::Shed => {
                            self.metrics.requests_shed += 1;
                            (SpanEventKind::Shed, "request shed")
                        }
                        FaultCounter::BreakerRejection => {
                            self.metrics.breaker_rejections += 1;
                            (SpanEventKind::Breaker, "dispatch suppressed: circuit open")
                        }
                        FaultCounter::LedgerResolution => {
                            self.metrics.intents_resolved_by_ledger += 1;
                            (
                                SpanEventKind::Note,
                                "purchase resolved from marketplace ledger",
                            )
                        }
                    };
                    if let Some(tc) = self.current_trace {
                        self.telemetry.event(tc.span_id, kind, label, self.now);
                    }
                }
                Action::Observe { name, value } => {
                    if self.telemetry.is_enabled() {
                        self.telemetry.registry_mut().observe(name.as_str(), value);
                    }
                }
                Action::IncCounter { name, by } => {
                    if self.telemetry.is_enabled() {
                        self.telemetry.registry_mut().inc(name.as_str(), by);
                    }
                }
                Action::JournalIntent { intent, detail } => {
                    if let Some(store) = self.hosts.get_mut(&host).and_then(|h| h.durable.as_mut())
                    {
                        let _ = store.log_intent(intent, detail);
                        self.drain_durable_counters(host);
                    }
                }
                Action::JournalCommit { intent, detail } => {
                    if let Some(store) = self.hosts.get_mut(&host).and_then(|h| h.durable.as_mut())
                    {
                        let _ = store.log_commit(intent, detail);
                        self.drain_durable_counters(host);
                    }
                }
                Action::JournalAbort { intent, reason } => {
                    if let Some(store) = self.hosts.get_mut(&host).and_then(|h| h.durable.as_mut())
                    {
                        let _ = store.log_abort(intent, reason);
                        self.drain_durable_counters(host);
                    }
                }
                Action::JournalDelta { id, delta } => {
                    if let Some(store) = self.hosts.get_mut(&host).and_then(|h| h.durable.as_mut())
                    {
                        let _ = store.log_delta(id.0, delta);
                        self.drain_durable_counters(host);
                    }
                }
            }
        }
    }

    fn do_send(&mut self, from_host: HostId, to: AgentId, mut msg: Message) {
        msg.id = MessageId(self.next_msg_id);
        self.next_msg_id += 1;
        msg.deadline = self.current_deadline;
        // Every send is a fresh hop: any context the message already
        // carried names a hop that ended at its delivery (forwarded or
        // re-sent messages must not reuse a closed span).
        msg.trace = self.current_trace.map(|p| {
            self.telemetry.child(
                p,
                HopKind::Message,
                msg.kind.clone(),
                msg.from,
                Some(from_host),
                self.now,
            )
        });
        let to_host = match self.locations.get(&to) {
            Some(Location::Active(h)) | Some(Location::Deactivated(h)) => *h,
            Some(Location::InTransit) | None => {
                if let Some(remote) = self.remote_host_of(to) {
                    self.send_boundary_message(from_host, remote, msg);
                    return;
                }
                self.metrics.messages_dead_lettered += 1;
                self.telemetry.registry_mut().dead_letter(msg.kind.as_str());
                if let Some(tc) = msg.trace {
                    self.telemetry.event(
                        tc.span_id,
                        SpanEventKind::DeadLetter,
                        format!("{} to {} (unreachable)", msg.kind, to),
                        self.now,
                    );
                    self.telemetry.end(tc.span_id, self.now);
                }
                self.trace.record(
                    self.now,
                    msg.from,
                    format!("dead-letter: {} to {} (unreachable)", msg.kind, to),
                );
                return;
            }
        };
        let bytes = msg.wire_size();
        let loss = self.topology.loss(from_host, to_host);
        if loss > 0.0 && self.rng.gen::<f64>() < loss {
            self.metrics.messages_lost += 1;
            let chaos_fault = self.topology.fault_active(from_host, to_host);
            if chaos_fault {
                self.metrics.chaos_drops += 1;
            }
            if let Some(tc) = msg.trace {
                let label = if chaos_fault {
                    "dropped: chaos fault on link"
                } else {
                    "dropped: link loss"
                };
                self.telemetry
                    .event(tc.span_id, SpanEventKind::Chaos, label, self.now);
                self.telemetry.end(tc.span_id, self.now);
            }
            return;
        }
        if from_host != to_host {
            self.metrics.remote_message_bytes += bytes as u64;
        }
        let mut delay = self.topology.delivery_time(from_host, to_host, bytes);
        if self.chaos.is_none() {
            let at = self.now + delay;
            self.enqueue_deliver(at, msg);
            return;
        }
        let chaos = self.chaos.as_mut().expect("checked above");
        // Bounded reordering: extra jitter on some deliveries, clamped so
        // per-(sender, receiver)-pair FIFO order is preserved (TCP-like;
        // only cross-pair interleavings change).
        let mut jittered = false;
        if chaos.reorder_probability > 0.0 && self.rng.gen::<f64>() < chaos.reorder_probability {
            delay = delay + SimDuration(self.rng.gen_range(0..=chaos.max_jitter_us));
            self.metrics.chaos_delays += 1;
            jittered = true;
        }
        let key = (msg.from, msg.to);
        let mut at = self.now + delay;
        if let Some(&last) = chaos.fifo.get(&key) {
            at = at.max(last);
        }
        // Duplication: a second copy with the *same* message id, scheduled
        // at or after the original; the receiver suppresses it.
        let dup_at = if chaos.dup_probability > 0.0 && self.rng.gen::<f64>() < chaos.dup_probability
        {
            self.metrics.chaos_dupes += 1;
            Some(at + SimDuration(self.rng.gen_range(0..=chaos.max_jitter_us.max(1))))
        } else {
            None
        };
        chaos.fifo.insert(key, dup_at.unwrap_or(at));
        if let Some(tc) = msg.trace {
            if jittered {
                self.telemetry.event(
                    tc.span_id,
                    SpanEventKind::Chaos,
                    "reorder jitter injected",
                    self.now,
                );
            }
            if dup_at.is_some() {
                self.telemetry.event(
                    tc.span_id,
                    SpanEventKind::Chaos,
                    "duplicated by chaos",
                    self.now,
                );
            }
        }
        if let Some(dup_at) = dup_at {
            self.enqueue_deliver(dup_at, msg.clone());
        }
        self.enqueue_deliver(at, msg);
    }

    /// Hand a message to an agent owned by another shard: faults on the
    /// cross-shard link are rolled on the sending side (which owns the
    /// topology overlay for the pair), the hop span is ended here (span
    /// ids do not cross the boundary), and the item joins the outbox with
    /// a delivery time no earlier than the epoch end.
    fn send_boundary_message(&mut self, from_host: HostId, to_host: HostId, mut msg: Message) {
        let bytes = msg.wire_size();
        let loss = self.topology.loss(from_host, to_host);
        if loss > 0.0 && self.rng.gen::<f64>() < loss {
            self.metrics.messages_lost += 1;
            let chaos_fault = self.topology.fault_active(from_host, to_host);
            if chaos_fault {
                self.metrics.chaos_drops += 1;
            }
            if let Some(tc) = msg.trace {
                let label = if chaos_fault {
                    "dropped: chaos fault on link"
                } else {
                    "dropped: link loss"
                };
                self.telemetry
                    .event(tc.span_id, SpanEventKind::Chaos, label, self.now);
                self.telemetry.end(tc.span_id, self.now);
            }
            return;
        }
        self.metrics.remote_message_bytes += bytes as u64;
        if let Some(tc) = msg.strip_trace() {
            self.telemetry.event(
                tc.span_id,
                SpanEventKind::Boundary,
                format!("{} to {} crossed shard boundary", msg.kind, msg.to),
                self.now,
            );
            self.telemetry.end(tc.span_id, self.now);
        }
        let latency = self
            .boundary
            .as_ref()
            .map(|b| b.latency)
            .unwrap_or_default();
        let delay = self
            .topology
            .delivery_time(from_host, to_host, bytes)
            .max(latency);
        let at = self.now + delay;
        let seq = self.seq;
        self.seq += 1;
        let origin_shard = self.shard;
        if let Some(b) = &mut self.boundary {
            b.outbox.push(BoundaryItem {
                at,
                origin_shard,
                origin_seq: seq,
                payload: BoundaryPayload::Deliver(msg),
            });
        }
    }

    /// Dispatch an agent to a host owned by another shard. Mirrors the
    /// local [`SimWorld::do_dispatch`] step for step — refusal on
    /// partition/remote crash, `on_dispatch`, permit issue, loss roll —
    /// then ships the capsule through the outbox instead of the local
    /// event queue. The agent leaves this shard's directory eagerly so
    /// follow-up messages forward across the boundary.
    fn dispatch_boundary(&mut self, host: HostId, id: AgentId, dest: HostId) {
        if self.locations.get(&id) != Some(&Location::Active(host)) {
            return; // already departed or disposed this round
        }
        let down = self
            .boundary
            .as_ref()
            .is_some_and(|b| b.remote_down.contains(&dest));
        if self.topology.is_partitioned(host, dest) || down {
            self.metrics.chaos_drops += 1;
            if let Some(tc) = self.current_trace {
                self.telemetry.event(
                    tc.span_id,
                    SpanEventKind::Chaos,
                    format!("dispatch refused: {dest} unreachable"),
                    self.now,
                );
            }
            self.trace.record(
                self.now,
                Some(id),
                format!("dispatch refused: {dest} unreachable"),
            );
            let parent = self.current_trace;
            self.run_callback(id, parent, "on_dispatch_failed", move |agent, ctx| {
                agent.on_dispatch_failed(ctx, dest)
            });
            return;
        }
        let parent = self.current_trace;
        self.run_callback(id, parent, "on_dispatch", |agent, ctx| {
            agent.on_dispatch(ctx)
        });
        if self.locations.get(&id) != Some(&Location::Active(host)) {
            return;
        }
        let Some(agent) = self.hosts.get_mut(&host).and_then(|h| h.active.remove(&id)) else {
            return;
        };
        let home = self.homes.get(&id).copied().unwrap_or(host);
        let permit = if host == home {
            let h = self.hosts.get_mut(&host).expect("home host exists");
            let p = h.auth.issue(id);
            self.permits.insert(id, p);
            Some(p)
        } else {
            self.permits.get(&id).copied()
        };
        let mut capsule = AgentCapsule::capture(id, agent.as_ref(), home, permit);
        drop(agent);
        capsule.deadline = self.current_deadline;
        capsule.trace = self.current_trace.map(|p| {
            self.telemetry.child(
                p,
                HopKind::Migration,
                capsule.agent_type.clone(),
                Some(id),
                Some(host),
                self.now,
            )
        });
        self.journal_capsule_gone(host, id);
        // The migration hop ends at the boundary: span ids are shard-local.
        if let Some(tc) = capsule.strip_trace() {
            self.telemetry.event(
                tc.span_id,
                SpanEventKind::Boundary,
                format!("{id} crossed shard boundary to {dest}"),
                self.now,
            );
            self.telemetry.end(tc.span_id, self.now);
        }
        let bytes = capsule.wire_size();
        let loss = self.topology.loss(host, dest);
        if loss > 0.0 && self.rng.gen::<f64>() < loss {
            self.locations.remove(&id);
            self.permits.remove(&id);
            self.metrics.messages_lost += 1;
            if self.topology.fault_active(host, dest) {
                self.metrics.chaos_drops += 1;
            }
            self.trace.record(
                self.now,
                Some(id),
                format!("agent lost in transit to {dest}"),
            );
            return;
        }
        self.metrics.migration_bytes += bytes as u64;
        let latency = self
            .boundary
            .as_ref()
            .map(|b| b.latency)
            .unwrap_or_default();
        let delay = self.topology.delivery_time(host, dest, bytes).max(latency);
        let at = self.now + delay;
        // Departed for good as far as this shard is concerned: directory
        // entries move to the remote side so follow-up sends forward.
        self.locations.remove(&id);
        self.permits.remove(&id);
        self.register_remote_agent(id, dest);
        let seq = self.seq;
        self.seq += 1;
        let origin_shard = self.shard;
        if let Some(b) = &mut self.boundary {
            b.outbox.push(BoundaryItem {
                at,
                origin_shard,
                origin_seq: seq,
                payload: BoundaryPayload::Arrive { capsule, dest },
            });
        }
    }

    /// Schedule a delivery, consulting the bounded mailbox (if one is
    /// configured) for an admission verdict first. The mailbox is the
    /// single choke point for every path that ends in
    /// [`EventKind::Deliver`]: agent sends, external ingress, chaos
    /// duplicates, activation replays and boundary injections.
    fn enqueue_deliver(&mut self, at: SimTime, msg: Message) {
        self.enqueue_deliver_keyed(at, None, msg);
    }

    /// [`SimWorld::enqueue_deliver`] with an optional explicit ordering
    /// key. `None` mints a local `(shard, seq)` key lazily — only if the
    /// verdict actually schedules, preserving the unsharded sequence
    /// stream byte for byte. `Some` pins the origin key of a boundary
    /// item so injected deliveries keep their global total order.
    fn enqueue_deliver_keyed(&mut self, at: SimTime, key: Option<(u16, u64)>, msg: Message) {
        if self.mailbox.is_none() {
            self.schedule_deliver(at, key, msg);
            return;
        }
        let verdict = self
            .mailbox
            .as_mut()
            .expect("checked above")
            .on_enqueue(msg.to, msg.id);
        match verdict {
            EnqueueVerdict::Admit => self.schedule_deliver(at, key, msg),
            EnqueueVerdict::AdmitEvictingOldest => {
                self.metrics.mailbox_rejections += 1;
                self.trace.record(
                    self.now,
                    msg.from,
                    format!("mailbox full at {}: oldest queued message evicted", msg.to),
                );
                self.schedule_deliver(at, key, msg);
            }
            EnqueueVerdict::Reject => {
                self.metrics.mailbox_rejections += 1;
                if let Some(tc) = msg.trace {
                    self.telemetry.event(
                        tc.span_id,
                        SpanEventKind::Shed,
                        format!("shed: mailbox full at {}", msg.to),
                        self.now,
                    );
                    self.telemetry.end(tc.span_id, self.now);
                }
                self.trace.record(
                    self.now,
                    msg.from,
                    format!("mailbox full at {}: {} rejected", msg.to, msg.kind),
                );
            }
            EnqueueVerdict::Defer => {
                if let Some(tc) = msg.trace {
                    self.telemetry.event(
                        tc.span_id,
                        SpanEventKind::Note,
                        format!("mailbox full at {}: delivery deferred", msg.to),
                        self.now,
                    );
                }
                let mailbox = self.mailbox.as_mut().expect("mailbox present");
                mailbox.defer(msg);
            }
        }
        let max_depth = self
            .mailbox
            .as_ref()
            .map_or(0, MailboxState::max_depth_seen);
        if self.telemetry.is_enabled() {
            self.telemetry
                .registry_mut()
                .set_gauge("overload.mailbox_depth_max", max_depth as f64);
        }
    }

    /// Push an admitted delivery onto the heap, under the given origin key
    /// or a freshly minted local one.
    fn schedule_deliver(&mut self, at: SimTime, key: Option<(u16, u64)>, msg: Message) {
        match key {
            None => self.schedule_at(at, EventKind::Deliver(msg)),
            Some((shard, seq)) => {
                let at = at.max(self.now);
                self.events.push(Reverse(QueuedEvent {
                    at,
                    shard,
                    seq,
                    kind: EventKind::Deliver(msg),
                }));
            }
        }
    }

    fn handle_deliver(&mut self, mut msg: Message) {
        let to = msg.to;
        if let Some(mailbox) = &mut self.mailbox {
            let outcome = mailbox.on_consume(to, msg.id);
            if let Some(released) = outcome.released {
                // A deferred (block policy) message takes the freed slot;
                // it was already admitted, so schedule it directly.
                let at = self.now;
                self.schedule_at(at, EventKind::Deliver(released));
            }
            if outcome.tombstoned {
                if let Some(tc) = msg.trace {
                    self.telemetry.event(
                        tc.span_id,
                        SpanEventKind::Shed,
                        "evicted: mailbox overflow (reject-oldest)",
                        self.now,
                    );
                    self.telemetry.end(tc.span_id, self.now);
                }
                self.trace.record(
                    self.now,
                    msg.from,
                    format!("evicted from {}'s mailbox: {}", to, msg.kind),
                );
                return;
            }
        }
        if deadline_expired(msg.deadline, self.now) {
            self.metrics.deadline_drops += 1;
            if let Some(tc) = msg.trace {
                self.telemetry.event(
                    tc.span_id,
                    SpanEventKind::DeadlineExceeded,
                    format!("dropped: deadline passed before {} delivery", msg.kind),
                    self.now,
                );
                self.telemetry.end(tc.span_id, self.now);
            }
            self.trace.record(
                self.now,
                msg.from,
                format!("deadline exceeded: {} to {} dropped", msg.kind, to),
            );
            return;
        }
        match self.locations.get(&to).copied() {
            Some(Location::Active(host)) => {
                // A hung host accepts the connection but never drains it:
                // the delivery stalls (before duplicate suppression, so
                // the replayed copy is not mistaken for a chaos dupe).
                if self.hosts.get(&host).is_some_and(|h| h.hung) {
                    if let Some(tc) = msg.trace {
                        self.telemetry.event(
                            tc.span_id,
                            SpanEventKind::Note,
                            format!("stalled: {host} hung"),
                            self.now,
                        );
                    }
                    if let Some(h) = self.hosts.get_mut(&host) {
                        h.stalled.push(msg);
                    }
                    return;
                }
                // Receiver-side duplicate suppression: a chaos-injected
                // copy carries the original's id and is dropped here.
                if let Some(chaos) = &mut self.chaos {
                    if !chaos.delivered.insert(msg.id) {
                        self.metrics.dupes_suppressed += 1;
                        if let Some(tc) = msg.trace {
                            self.telemetry.event(
                                tc.span_id,
                                SpanEventKind::Chaos,
                                "duplicate suppressed at receiver",
                                self.now,
                            );
                        }
                        return;
                    }
                }
                self.metrics.messages_delivered += 1;
                let _ = host;
                if let Some(tc) = msg.trace {
                    if let Some(dur) = self.telemetry.end(tc.span_id, self.now) {
                        let reg = self.telemetry.registry_mut();
                        reg.observe("stage.transfer_us", dur);
                        reg.observe(&format!("latency_us.{}", msg.kind), dur);
                        reg.inc(&format!("delivered.{}", msg.kind), 1);
                    }
                }
                let parent = msg.trace;
                let kind = msg.kind.clone();
                self.current_deadline = msg.deadline;
                self.run_callback(to, parent, kind.as_str(), move |agent, ctx| {
                    agent.on_message(ctx, msg)
                });
                self.current_deadline = None;
            }
            Some(Location::Deactivated(host)) => {
                // Held until the agent is activated, like a mailbox; the
                // hop span stays open until the replayed copy lands.
                if let Some(tc) = msg.trace {
                    self.telemetry.event(
                        tc.span_id,
                        SpanEventKind::Note,
                        "parked: recipient deactivated",
                        self.now,
                    );
                }
                if let Some(h) = self.hosts.get_mut(&host) {
                    h.pending.entry(to).or_default().push(msg);
                }
            }
            Some(Location::InTransit) | None => {
                if let Some(remote) = self.remote_host_of(to) {
                    // The recipient moved to another shard after this
                    // delivery was queued: forward across the boundary
                    // instead of dead-lettering.
                    if let Some(tc) = msg.strip_trace() {
                        self.telemetry.event(
                            tc.span_id,
                            SpanEventKind::Boundary,
                            format!("{} to {} forwarded across shard boundary", msg.kind, to),
                            self.now,
                        );
                        self.telemetry.end(tc.span_id, self.now);
                    }
                    let latency = self
                        .boundary
                        .as_ref()
                        .map(|b| b.latency)
                        .unwrap_or_default();
                    let at = self.now + latency;
                    let seq = self.seq;
                    self.seq += 1;
                    let origin_shard = self.shard;
                    let _ = remote;
                    if let Some(b) = &mut self.boundary {
                        b.outbox.push(BoundaryItem {
                            at,
                            origin_shard,
                            origin_seq: seq,
                            payload: BoundaryPayload::Deliver(msg),
                        });
                    }
                    return;
                }
                self.metrics.messages_dead_lettered += 1;
                self.telemetry.registry_mut().dead_letter(msg.kind.as_str());
                if let Some(tc) = msg.trace {
                    self.telemetry.event(
                        tc.span_id,
                        SpanEventKind::DeadLetter,
                        format!("{} to {} (gone at delivery)", msg.kind, to),
                        self.now,
                    );
                    self.telemetry.end(tc.span_id, self.now);
                }
                self.trace.record(
                    self.now,
                    msg.from,
                    format!("dead-letter: {} to {} (gone at delivery)", msg.kind, to),
                );
            }
        }
    }

    /// Clone `actor` (active on `host`) under the fresh id `clone_id`.
    fn do_clone(&mut self, host: HostId, actor: AgentId, clone_id: AgentId) {
        let capsule = {
            let Some(h) = self.hosts.get(&host) else {
                return;
            };
            let Some(agent) = h.active.get(&actor) else {
                return;
            };
            AgentCapsule::capture(clone_id, agent.as_ref(), host, None)
        };
        match self.registry.rehydrate(&capsule) {
            Ok(copy) => {
                let h = self.hosts.get_mut(&host).expect("actor host exists");
                h.active.insert(clone_id, copy);
                self.locations.insert(clone_id, Location::Active(host));
                self.homes.insert(clone_id, host);
                self.metrics.agents_created += 1;
                self.announce(clone_id, host);
                let parent = self.current_trace;
                self.run_callback(clone_id, parent, "on_clone", |agent, ctx| {
                    agent.on_clone(ctx)
                });
            }
            Err(e) => {
                self.trace.record(
                    self.now,
                    Some(actor),
                    format!("clone failed for {actor}: {e}"),
                );
            }
        }
    }

    /// Administratively recall an active agent to `to` (operator-side
    /// `retract`).
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownAgent`] if not active anywhere;
    /// [`PlatformError::UnknownHost`] if `to` does not exist.
    pub fn retract_agent(&mut self, agent: AgentId, to: HostId) -> Result<()> {
        if !self.hosts.contains_key(&to) {
            return Err(PlatformError::UnknownHost(to));
        }
        match self.locations.get(&agent).copied() {
            Some(Location::Active(at)) => {
                if at != to {
                    self.do_dispatch(at, agent, to);
                }
                Ok(())
            }
            _ => Err(PlatformError::UnknownAgent(agent)),
        }
    }

    fn do_dispatch(&mut self, host: HostId, id: AgentId, dest: HostId) {
        if !self.hosts.contains_key(&dest) {
            let is_remote = self
                .boundary
                .as_ref()
                .is_some_and(|b| b.remote_hosts.contains(&dest));
            if is_remote {
                self.dispatch_boundary(host, id, dest);
                return;
            }
            self.trace.record(
                self.now,
                Some(id),
                format!("dispatch failed: unknown {dest}"),
            );
            return;
        }
        if self.locations.get(&id) != Some(&Location::Active(host)) {
            return; // already departed or disposed this round
        }
        // A partitioned or crashed destination refuses the dispatch
        // synchronously: the agent stays put and may route around it.
        if self.topology.is_partitioned(host, dest) || self.host_crashed(dest) {
            self.metrics.chaos_drops += 1;
            if let Some(tc) = self.current_trace {
                self.telemetry.event(
                    tc.span_id,
                    SpanEventKind::Chaos,
                    format!("dispatch refused: {dest} unreachable"),
                    self.now,
                );
            }
            self.trace.record(
                self.now,
                Some(id),
                format!("dispatch refused: {dest} unreachable"),
            );
            let parent = self.current_trace;
            self.run_callback(id, parent, "on_dispatch_failed", move |agent, ctx| {
                agent.on_dispatch_failed(ctx, dest)
            });
            return;
        }
        // Lifecycle callback before departure; its actions execute on the
        // origin host.
        let parent = self.current_trace;
        self.run_callback(id, parent, "on_dispatch", |agent, ctx| {
            agent.on_dispatch(ctx)
        });
        // The callback may have disposed or deactivated the agent.
        if self.locations.get(&id) != Some(&Location::Active(host)) {
            return;
        }
        let Some(agent) = self.hosts.get_mut(&host).and_then(|h| h.active.remove(&id)) else {
            return;
        };
        let home = self.homes.get(&id).copied().unwrap_or(host);
        let permit = if host == home {
            let h = self.hosts.get_mut(&host).expect("home host exists");
            let p = h.auth.issue(id);
            self.permits.insert(id, p);
            Some(p)
        } else {
            self.permits.get(&id).copied()
        };
        let mut capsule = AgentCapsule::capture(id, agent.as_ref(), home, permit);
        drop(agent); // the live instance stays behind and is destroyed
        capsule.deadline = self.current_deadline;
        // The travelling capsule is a migration hop of the request that
        // asked for the dispatch.
        capsule.trace = self.current_trace.map(|p| {
            self.telemetry.child(
                p,
                HopKind::Migration,
                capsule.agent_type.clone(),
                Some(id),
                Some(host),
                self.now,
            )
        });
        self.locations.insert(id, Location::InTransit);
        // The agent has left: its capsule is no longer this host's to
        // restore. Journalled (forced) so a crash cannot resurrect a
        // second copy of an agent that already departed.
        self.journal_capsule_gone(host, id);
        let bytes = capsule.wire_size();
        let loss = self.topology.loss(host, dest);
        if loss > 0.0 && self.rng.gen::<f64>() < loss {
            // The capsule is lost in transit: the agent is gone.
            self.locations.remove(&id);
            self.permits.remove(&id);
            self.metrics.messages_lost += 1;
            if self.topology.fault_active(host, dest) {
                self.metrics.chaos_drops += 1;
            }
            if let Some(tc) = capsule.trace {
                self.telemetry.event(
                    tc.span_id,
                    SpanEventKind::Chaos,
                    format!("agent lost in transit to {dest}"),
                    self.now,
                );
                self.telemetry.end(tc.span_id, self.now);
            }
            self.trace.record(
                self.now,
                Some(id),
                format!("agent lost in transit to {dest}"),
            );
            return;
        }
        self.metrics.migration_bytes += bytes as u64;
        let delay = self.topology.delivery_time(host, dest, bytes);
        self.schedule(delay, EventKind::Arrive { capsule, dest });
    }

    fn handle_arrival(&mut self, capsule: AgentCapsule, dest: HostId) {
        let id = capsule.id;
        // A crash while the capsule was in flight loses the agent.
        if self.host_crashed(dest) {
            self.locations.remove(&id);
            self.permits.remove(&id);
            self.metrics.agents_lost_in_crash += 1;
            self.metrics.chaos_drops += 1;
            if let Some(tc) = capsule.trace {
                self.telemetry.event(
                    tc.span_id,
                    SpanEventKind::Chaos,
                    format!("arrival failed: {dest} crashed; agent lost"),
                    self.now,
                );
                self.telemetry.end(tc.span_id, self.now);
            }
            self.trace.record(
                self.now,
                Some(id),
                format!("arrival failed: {dest} crashed; {id} lost"),
            );
            return;
        }
        // An orphan marked for retirement while in transit (its home
        // failed over with no restored owner) is dropped here rather
        // than leaked.
        if self
            .supervision
            .as_ref()
            .is_some_and(|s| s.retired.contains(&id))
        {
            if let Some(state) = self.supervision.as_mut() {
                state.retired.remove(&id);
            }
            self.locations.remove(&id);
            self.permits.remove(&id);
            self.metrics.agents_retired += 1;
            if let Some(tc) = capsule.trace {
                self.telemetry.end(tc.span_id, self.now);
            }
            self.trace.record(
                self.now,
                Some(id),
                format!("supervisor: orphan {id} retired on arrival at {dest}"),
            );
            return;
        }
        // Work past its deadline is cancelled rather than landed: the
        // requester has already been answered (or timed out) by now.
        if deadline_expired(capsule.deadline, self.now) {
            self.locations.remove(&id);
            self.permits.remove(&id);
            self.metrics.deadline_drops += 1;
            if let Some(tc) = capsule.trace {
                self.telemetry.event(
                    tc.span_id,
                    SpanEventKind::DeadlineExceeded,
                    format!("cancelled: deadline passed before arrival at {dest}"),
                    self.now,
                );
                self.telemetry.end(tc.span_id, self.now);
            }
            self.trace.record(
                self.now,
                Some(id),
                format!("deadline exceeded: {id} cancelled before arrival at {dest}"),
            );
            return;
        }
        // Returning home: the paper demands authentication (§4.1 p.2).
        if dest == capsule.home {
            let expects = self
                .hosts
                .get(&dest)
                .map(|h| h.auth.expects(id))
                .unwrap_or(false);
            if expects {
                let ok = match capsule.permit {
                    Some(permit) => self
                        .hosts
                        .get_mut(&dest)
                        .map(|h| h.auth.verify(id, &permit))
                        .unwrap_or(false),
                    None => {
                        if let Some(h) = self.hosts.get_mut(&dest) {
                            // no permit presented: count as a rejection
                            let bogus = TravelPermit {
                                agent: id,
                                nonce: 0,
                                mac: 0,
                            };
                            h.auth.verify(id, &bogus);
                        }
                        false
                    }
                };
                if !ok {
                    self.metrics.migrations_rejected += 1;
                    self.locations.remove(&id);
                    self.permits.remove(&id);
                    if let Some(tc) = capsule.trace {
                        self.telemetry.event(
                            tc.span_id,
                            SpanEventKind::Note,
                            format!("arrival rejected at {dest}: authentication failed"),
                            self.now,
                        );
                        self.telemetry.end(tc.span_id, self.now);
                    }
                    self.trace.record(
                        self.now,
                        Some(id),
                        format!("arrival rejected at {dest}: authentication failed"),
                    );
                    return;
                }
                self.permits.remove(&id);
            }
        } else if let Some(p) = capsule.permit {
            // Keep carrying the home permit while visiting foreign hosts.
            self.permits.insert(id, p);
        }
        match self.registry.rehydrate(&capsule) {
            Ok(agent) => {
                self.metrics.migrations += 1;
                let h = self.hosts.get_mut(&dest).expect("arrival host exists");
                h.active.insert(id, agent);
                self.locations.insert(id, Location::Active(dest));
                // A no-op for local migrations (already set at creation);
                // records the true home of cross-shard arrivals so their
                // later dispatches carry the right permit expectations.
                self.homes.insert(id, capsule.home);
                // A capsule that left before its home failed over still
                // carries the dead home: re-bind it from the rehome map.
                let rehome = self
                    .supervision
                    .as_ref()
                    .and_then(|s| s.rehomed.get(&id).copied())
                    .filter(|new_home| *new_home != capsule.home);
                if let Some(new_home) = rehome {
                    self.homes.insert(id, new_home);
                    self.run_callback(id, None, "on_rehomed", move |agent, ctx| {
                        agent.on_rehomed(ctx, new_home)
                    });
                }
                self.announce(id, dest);
                if let Some(tc) = capsule.trace {
                    if let Some(dur) = self.telemetry.end(tc.span_id, self.now) {
                        self.telemetry
                            .registry_mut()
                            .observe("stage.migration_us", dur);
                    }
                }
                self.current_deadline = capsule.deadline;
                self.run_callback(id, capsule.trace, "on_arrival", |agent, ctx| {
                    agent.on_arrival(ctx)
                });
                self.current_deadline = None;
            }
            Err(e) => {
                self.metrics.migrations_rejected += 1;
                self.locations.remove(&id);
                self.permits.remove(&id);
                if let Some(tc) = capsule.trace {
                    self.telemetry.event(
                        tc.span_id,
                        SpanEventKind::Note,
                        format!("arrival rejected at {dest}: {e}"),
                        self.now,
                    );
                    self.telemetry.end(tc.span_id, self.now);
                }
                self.trace.record(
                    self.now,
                    Some(id),
                    format!("arrival rejected at {dest}: {e}"),
                );
            }
        }
    }

    fn do_deactivate(&mut self, host: HostId, id: AgentId) {
        let parent = self.current_trace;
        self.run_callback(id, parent, "on_deactivation", |agent, ctx| {
            agent.on_deactivation(ctx)
        });
        // The callback may itself have changed the agent's state.
        if self.locations.get(&id) != Some(&Location::Active(host)) {
            return;
        }
        let Some(agent) = self.hosts.get_mut(&host).and_then(|h| h.active.remove(&id)) else {
            return;
        };
        let home = self.homes.get(&id).copied().unwrap_or(host);
        let capsule = AgentCapsule::capture(id, agent.as_ref(), home, None);
        let journalled = serde_json::to_value(&capsule).ok();
        let h = self.hosts.get_mut(&host).expect("host exists");
        h.store.store(capsule);
        if let (Some(store), Some(value)) = (h.durable.as_mut(), journalled) {
            let _ = store.put_capsule(id.0, value, false);
        }
        self.drain_durable_counters(host);
        self.locations.insert(id, Location::Deactivated(host));
        self.metrics.deactivations += 1;
    }

    fn do_activate(&mut self, host: HostId, id: AgentId) -> Result<()> {
        let capsule = {
            let h = self
                .hosts
                .get_mut(&host)
                .ok_or(PlatformError::UnknownHost(host))?;
            h.store.load(id).ok_or(PlatformError::UnknownAgent(id))?
        };
        let agent = match self.registry.rehydrate(&capsule) {
            Ok(a) => a,
            Err(e) => {
                // Put the capsule back: activation failed but the agent is
                // not lost.
                if let Some(h) = self.hosts.get_mut(&host) {
                    h.store.store(capsule);
                }
                return Err(e);
            }
        };
        let h = self.hosts.get_mut(&host).expect("host exists");
        h.active.insert(id, agent);
        self.locations.insert(id, Location::Active(host));
        self.metrics.activations += 1;
        let parent = self.current_trace;
        self.run_callback(id, parent, "on_activation", |agent, ctx| {
            agent.on_activation(ctx)
        });
        // Replay messages that arrived while deactivated.
        let pending = self
            .hosts
            .get_mut(&host)
            .and_then(|h| h.pending.remove(&id))
            .unwrap_or_default();
        for msg in pending {
            let delay = self.topology.local_delay();
            let at = self.now + delay;
            self.enqueue_deliver(at, msg);
        }
        Ok(())
    }

    fn do_dispose(&mut self, host: HostId, id: AgentId) {
        match self.locations.get(&id).copied() {
            Some(Location::Active(h)) if h == host => {
                let parent = self.current_trace;
                self.run_callback(id, parent, "on_disposal", |agent, ctx| {
                    agent.on_disposal(ctx)
                });
                if let Some(hh) = self.hosts.get_mut(&host) {
                    hh.active.remove(&id);
                    hh.pending.remove(&id);
                }
                self.locations.remove(&id);
                self.permits.remove(&id);
                if let Some(mb) = &mut self.mailbox {
                    mb.forget(id);
                }
                self.journal_capsule_gone(host, id);
                self.metrics.agents_disposed += 1;
            }
            Some(Location::Deactivated(h)) if h == host => {
                if let Some(hh) = self.hosts.get_mut(&host) {
                    hh.store.load(id);
                    hh.pending.remove(&id);
                }
                self.locations.remove(&id);
                if let Some(mb) = &mut self.mailbox {
                    mb.forget(id);
                }
                self.journal_capsule_gone(host, id);
                self.metrics.agents_disposed += 1;
            }
            _ => {
                self.trace.record(
                    self.now,
                    Some(id),
                    format!("dispose ignored: {id} not on {host}"),
                );
            }
        }
    }

    fn handle_timer(
        &mut self,
        agent: AgentId,
        tag: u64,
        trace: Option<TraceCtx>,
        deadline: Option<SimTime>,
    ) {
        if let Some(Location::Active(host)) = self.locations.get(&agent).copied() {
            // Wedged scheduler: the callback only fires once the hang
            // clears (heal or supervisor bounce).
            if self.hosts.get(&host).is_some_and(|h| h.hung) {
                if let Some(h) = self.hosts.get_mut(&host) {
                    h.stalled_timers.push((agent, tag, trace, deadline));
                }
                return;
            }
            self.metrics.timers_fired += 1;
            if let Some(tc) = trace {
                if let Some(dur) = self.telemetry.end(tc.span_id, self.now) {
                    self.telemetry
                        .registry_mut()
                        .observe("stage.timer_wait_us", dur);
                }
            }
            // Timers fire even past the deadline: a watchdog is often the
            // very thing that turns an expired request into a reply.
            self.current_deadline = deadline;
            self.run_callback(agent, trace, "on_timer", move |a, ctx| a.on_timer(ctx, tag));
            self.current_deadline = None;
        } else if let Some(tc) = trace {
            // Agent gone (disposed, migrated, crashed): the pending-timer
            // hop still closes.
            self.telemetry.end(tc.span_id, self.now);
        }
    }
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorld")
            .field("now", &self.now)
            .field("hosts", &self.hosts.len())
            .field("agents", &self.locations.len())
            .field("queued_events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    /// Agent that counts messages and can be told to act via message kinds.
    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Worker {
        count: u32,
    }

    impl Agent for Worker {
        fn agent_type(&self) -> &'static str {
            "worker"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            self.count += 1;
            match msg.kind.as_str() {
                "go" => {
                    let dest: u32 = msg.payload_as().unwrap();
                    ctx.dispatch_self(HostId(dest));
                }
                "sleep" => ctx.deactivate_self(),
                "die" => ctx.dispose_self(),
                "spawn" => {
                    ctx.create_agent(Box::new(Worker::default()));
                }
                "clone" => {
                    ctx.clone_self();
                }
                "retract" => {
                    let (agent, to): (u64, u32) = msg.payload_as().unwrap();
                    ctx.retract(AgentId(agent), HostId(to));
                }
                "ping" => {
                    ctx.reply(&msg, Message::new("pong"));
                }
                "sendto" => {
                    let target: u64 = msg.payload_as().unwrap();
                    ctx.send(AgentId(target), Message::new("ping"));
                }
                _ => {}
            }
        }
        fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
            ctx.note(format!("arrived at {}", ctx.host()));
        }
    }

    fn world_with_two_hosts() -> (SimWorld, HostId, HostId) {
        let mut w = SimWorld::new(42);
        w.registry_mut().register_serde::<Worker>("worker");
        let a = w.add_host("a");
        let b = w.add_host("b");
        (w, a, b)
    }

    #[test]
    fn external_message_is_delivered() {
        let (mut w, a, _) = world_with_two_hosts();
        let id = w.create_agent(a, Box::new(Worker::default())).unwrap();
        w.send_external(id, Message::new("hello")).unwrap();
        w.run_until_idle();
        assert_eq!(w.metrics().messages_delivered, 1);
        assert_eq!(w.snapshot_of(id).unwrap()["count"], 1);
    }

    #[test]
    fn send_to_unknown_agent_errors() {
        let (mut w, _, _) = world_with_two_hosts();
        assert!(matches!(
            w.send_external(AgentId(999), Message::new("x")),
            Err(PlatformError::UnknownAgent(_))
        ));
    }

    #[test]
    fn migration_moves_state_across_hosts() {
        let (mut w, a, b) = world_with_two_hosts();
        let id = w.create_agent(a, Box::new(Worker { count: 10 })).unwrap();
        w.send_external(id, Message::new("go").with_payload(&b.0).unwrap())
            .unwrap();
        w.run_until_idle();
        assert_eq!(w.location(id), Some(Location::Active(b)));
        // count incremented by the "go" message, preserved across the hop
        assert_eq!(w.snapshot_of(id).unwrap()["count"], 11);
        assert_eq!(w.metrics().migrations, 1);
        assert!(w.metrics().migration_bytes > 0);
        assert!(w.trace().find(&format!("arrived at {b}")).is_some());
    }

    #[test]
    fn round_trip_home_passes_authentication() {
        let (mut w, a, b) = world_with_two_hosts();
        let id = w.create_agent(a, Box::new(Worker::default())).unwrap();
        w.send_external(id, Message::new("go").with_payload(&b.0).unwrap())
            .unwrap();
        w.run_until_idle();
        assert_eq!(w.location(id), Some(Location::Active(b)));
        w.send_external(id, Message::new("go").with_payload(&a.0).unwrap())
            .unwrap();
        w.run_until_idle();
        assert_eq!(w.location(id), Some(Location::Active(a)));
        assert_eq!(w.metrics().migrations, 2);
        assert_eq!(w.metrics().migrations_rejected, 0);
        assert_eq!(w.auth_rejections(a), 0);
    }

    #[test]
    fn deactivate_then_activate_preserves_state_and_replays_mail() {
        let (mut w, a, _) = world_with_two_hosts();
        let id = w.create_agent(a, Box::new(Worker { count: 3 })).unwrap();
        w.send_external(id, Message::new("sleep")).unwrap();
        w.run_until_idle();
        assert_eq!(w.location(id), Some(Location::Deactivated(a)));
        assert_eq!(w.active_count(a), 0);
        assert!(w.stored_bytes(a) > 0);

        // message while asleep is held, not dead-lettered
        w.send_external(id, Message::new("while-asleep")).unwrap();
        w.run_until_idle();
        assert_eq!(w.metrics().messages_dead_lettered, 0);

        w.activate_agent(id).unwrap();
        w.run_until_idle();
        assert_eq!(w.location(id), Some(Location::Active(a)));
        // count = 3 + sleep msg + replayed msg
        assert_eq!(w.snapshot_of(id).unwrap()["count"], 5);
        assert_eq!(w.metrics().deactivations, 1);
        assert_eq!(w.metrics().activations, 1);
    }

    #[test]
    fn dispose_removes_agent_and_dead_letters_messages() {
        let (mut w, a, _) = world_with_two_hosts();
        let id = w.create_agent(a, Box::new(Worker::default())).unwrap();
        w.send_external(id, Message::new("die")).unwrap();
        w.run_until_idle();
        assert_eq!(w.location(id), None);
        assert_eq!(w.metrics().agents_disposed, 1);
        // further sends fail fast
        assert!(w.send_external(id, Message::new("x")).is_err());
    }

    #[test]
    fn spawned_agents_run_on_creation_and_count() {
        let (mut w, a, _) = world_with_two_hosts();
        let id = w.create_agent(a, Box::new(Worker::default())).unwrap();
        w.send_external(id, Message::new("spawn")).unwrap();
        w.run_until_idle();
        assert_eq!(w.metrics().agents_created, 2);
        assert_eq!(w.active_count(a), 2);
    }

    #[test]
    fn dispatch_to_unknown_host_is_a_noop_with_trace() {
        let (mut w, a, _) = world_with_two_hosts();
        let id = w.create_agent(a, Box::new(Worker::default())).unwrap();
        w.send_external(id, Message::new("go").with_payload(&999u32).unwrap())
            .unwrap();
        w.run_until_idle();
        assert_eq!(w.location(id), Some(Location::Active(a)));
        assert!(w
            .trace()
            .events()
            .iter()
            .any(|e| e.label.contains("dispatch failed")));
    }

    #[test]
    fn unregistered_type_is_rejected_on_arrival() {
        let mut w = SimWorld::new(1);
        // no registration at all
        let a = w.add_host("a");
        let b = w.add_host("b");
        let id = w.create_agent(a, Box::new(Worker::default())).unwrap();
        w.send_external(id, Message::new("go").with_payload(&b.0).unwrap())
            .unwrap();
        w.run_until_idle();
        assert_eq!(w.metrics().migrations_rejected, 1);
        assert_eq!(w.location(id), None);
    }

    #[test]
    fn lossy_link_can_lose_the_agent() {
        let mut w = SimWorld::new(3);
        w.registry_mut().register_serde::<Worker>("worker");
        let a = w.add_host("a");
        let b = w.add_host("b");
        w.topology_mut()
            .set_link_symmetric(a, b, crate::net::LinkSpec::lan().lossy(1.0));
        let id = w.create_agent(a, Box::new(Worker::default())).unwrap();
        w.send_external(id, Message::new("go").with_payload(&b.0).unwrap())
            .unwrap();
        w.run_until_idle();
        assert_eq!(
            w.location(id),
            None,
            "agent must be lost on a fully lossy link"
        );
        assert!(w
            .trace()
            .events()
            .iter()
            .any(|e| e.label.contains("lost in transit")));
    }

    #[test]
    fn clone_copies_state_under_a_fresh_id() {
        let (mut w, a, _) = world_with_two_hosts();
        let id = w.create_agent(a, Box::new(Worker { count: 6 })).unwrap();
        w.send_external(id, Message::new("clone")).unwrap();
        w.run_until_idle();
        assert_eq!(w.active_count(a), 2);
        let ids = w.agents_on(a);
        let clone_id = *ids.iter().find(|i| **i != id).unwrap();
        // the clone carries the original's state *after* the message that
        // triggered the clone (count was already incremented to 7)
        assert_eq!(w.snapshot_of(clone_id).unwrap()["count"], 7);
        // and evolves independently afterwards
        w.send_external(clone_id, Message::new("noop")).unwrap();
        w.run_until_idle();
        assert_eq!(w.snapshot_of(clone_id).unwrap()["count"], 8);
        assert_eq!(w.snapshot_of(id).unwrap()["count"], 7);
        assert_eq!(w.metrics().agents_created, 2);
    }

    #[test]
    fn clone_of_unregistered_type_fails_with_note() {
        let mut w = SimWorld::new(2);
        let a = w.add_host("a");
        let id = w.create_agent(a, Box::new(Worker::default())).unwrap();
        w.send_external(id, Message::new("clone")).unwrap();
        w.run_until_idle();
        assert_eq!(w.active_count(a), 1);
        assert!(w
            .trace()
            .events()
            .iter()
            .any(|e| e.label.contains("clone failed")));
    }

    #[test]
    fn retract_pulls_an_agent_back() {
        let (mut w, a, b) = world_with_two_hosts();
        let roamer = w.create_agent(a, Box::new(Worker::default())).unwrap();
        let manager = w.create_agent(a, Box::new(Worker::default())).unwrap();
        w.send_external(roamer, Message::new("go").with_payload(&b.0).unwrap())
            .unwrap();
        w.run_until_idle();
        assert_eq!(w.location(roamer), Some(Location::Active(b)));
        // the manager retracts the roamer home
        w.send_external(
            manager,
            Message::new("retract")
                .with_payload(&(roamer.0, a.0))
                .unwrap(),
        )
        .unwrap();
        w.run_until_idle();
        assert_eq!(w.location(roamer), Some(Location::Active(a)));
        assert_eq!(w.metrics().migrations, 2);
        assert_eq!(
            w.metrics().migrations_rejected,
            0,
            "retracted return passes auth"
        );
    }

    #[test]
    fn admin_retract_api_works_and_validates() {
        let (mut w, a, b) = world_with_two_hosts();
        let roamer = w.create_agent(a, Box::new(Worker::default())).unwrap();
        w.send_external(roamer, Message::new("go").with_payload(&b.0).unwrap())
            .unwrap();
        w.run_until_idle();
        w.retract_agent(roamer, a).unwrap();
        w.run_until_idle();
        assert_eq!(w.location(roamer), Some(Location::Active(a)));
        assert!(matches!(
            w.retract_agent(AgentId(999), a),
            Err(PlatformError::UnknownAgent(_))
        ));
        assert!(matches!(
            w.retract_agent(roamer, HostId(99)),
            Err(PlatformError::UnknownHost(_))
        ));
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        fn run(seed: u64) -> (Vec<String>, u64) {
            let mut w = SimWorld::new(seed);
            w.registry_mut().register_serde::<Worker>("worker");
            let a = w.add_host("a");
            let b = w.add_host("b");
            let id = w.create_agent(a, Box::new(Worker::default())).unwrap();
            for _ in 0..5 {
                w.send_external(id, Message::new("ping")).unwrap();
            }
            w.send_external(id, Message::new("go").with_payload(&b.0).unwrap())
                .unwrap();
            w.run_until_idle();
            let labels = w.trace().labels().iter().map(|s| s.to_string()).collect();
            (labels, w.metrics().messages_delivered)
        }
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut w, a, _) = world_with_two_hosts();
        let id = w.create_agent(a, Box::new(Worker::default())).unwrap();
        w.send_external(id, Message::new("m")).unwrap();
        // local delay is 1us; deadline at 0 must not deliver
        w.run_until(SimTime(0));
        assert_eq!(w.metrics().messages_delivered, 0);
        w.run_until(SimTime(10));
        assert_eq!(w.metrics().messages_delivered, 1);
        assert_eq!(w.now(), SimTime(10));
    }

    #[test]
    fn timers_fire_in_order() {
        #[derive(Serialize, Deserialize)]
        struct Timed;
        impl Agent for Timed {
            fn agent_type(&self) -> &'static str {
                "timed"
            }
            fn on_creation(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_millis(5), 2);
                ctx.set_timer(SimDuration::from_millis(1), 1);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
                ctx.note(format!("timer {tag}"));
            }
        }
        let mut w = SimWorld::new(1);
        let a = w.add_host("a");
        w.create_agent(a, Box::new(Timed)).unwrap();
        w.run_until_idle();
        assert_eq!(w.trace().labels(), vec!["timer 1", "timer 2"]);
        assert_eq!(w.metrics().timers_fired, 2);
    }

    #[test]
    fn remote_messages_pay_link_latency() {
        let (mut w, a, b) = world_with_two_hosts();
        w.topology_mut().set_link_symmetric(
            a,
            b,
            crate::net::LinkSpec::with_latency(SimDuration::from_millis(10)),
        );
        let ida = w.create_agent(a, Box::new(Worker::default())).unwrap();
        let idb = w.create_agent(b, Box::new(Worker::default())).unwrap();
        let before = w.now();
        // b sends "ping" to a (one 10ms hop), a replies "pong" (another)
        w.send_external(idb, Message::new("sendto").with_payload(&ida.0).unwrap())
            .unwrap();
        w.run_until_idle();
        assert!(
            w.now().since(before) >= SimDuration::from_millis(20),
            "two remote hops must cost at least 20ms, took {}",
            w.now().since(before)
        );
        assert!(w.metrics().remote_message_bytes > 0);
    }

    /// Satellite regression: same-time events from different shards must
    /// pop in `(time, shard, seq)` order no matter which was pushed first.
    #[test]
    fn same_time_cross_shard_events_order_by_shard_then_seq() {
        fn drain(order: &[(u16, u64)]) -> Vec<(u16, u64)> {
            let mut heap: BinaryHeap<Reverse<QueuedEvent>> = BinaryHeap::new();
            let at = SimTime::ZERO + SimDuration::from_micros(100);
            for &(shard, seq) in order {
                heap.push(Reverse(QueuedEvent {
                    at,
                    shard,
                    seq,
                    kind: EventKind::Timer {
                        agent: AgentId(1),
                        tag: 0,
                        trace: None,
                        deadline: None,
                    },
                }));
            }
            let mut popped = Vec::new();
            while let Some(Reverse(ev)) = heap.pop() {
                popped.push((ev.shard, ev.seq));
            }
            popped
        }
        let forward = drain(&[(0, 5), (1, 2), (0, 7), (1, 1), (2, 0)]);
        let backward = drain(&[(2, 0), (1, 1), (0, 7), (1, 2), (0, 5)]);
        assert_eq!(
            forward, backward,
            "heap order must not depend on enqueue order"
        );
        assert_eq!(forward, vec![(0, 5), (0, 7), (1, 1), (1, 2), (2, 0)]);
    }

    /// Satellite regression: a timer and a delivery scheduled for the same
    /// instant resolve the race identically run to run — the trace from
    /// enqueuing (timer, message) matches (message, timer).
    #[test]
    fn same_time_timer_and_delivery_race_is_deterministic() {
        fn run(send_first: bool) -> Vec<String> {
            let mut w = SimWorld::new(4242);
            w.registry_mut().register_serde::<Worker>("worker");
            let a = w.add_host("a");
            let id = w.create_agent(a, Box::new(Worker::default())).unwrap();
            // A "ping" delivery lands after local_delay (1µs); a timer with
            // the same 1µs delay fires at the identical instant.
            if send_first {
                w.send_external(id, Message::new("ping")).unwrap();
                w.schedule(
                    SimDuration::from_micros(1),
                    EventKind::Timer {
                        agent: id,
                        tag: 9,
                        trace: None,
                        deadline: None,
                    },
                );
            } else {
                w.schedule(
                    SimDuration::from_micros(1),
                    EventKind::Timer {
                        agent: id,
                        tag: 9,
                        trace: None,
                        deadline: None,
                    },
                );
                w.send_external(id, Message::new("ping")).unwrap();
            }
            w.run_until_idle();
            w.trace().labels().iter().map(|s| s.to_string()).collect()
        }
        // Enqueue order differs, so seq differs and the winner flips — but
        // each ordering is fully deterministic under (time, shard, seq).
        assert_eq!(run(true), run(true));
        assert_eq!(run(false), run(false));
    }

    /// Boundary-enabled shards mint ids from disjoint bases, so a merged
    /// sharded world never collides agent, message or host ids.
    #[test]
    fn boundary_shards_use_disjoint_id_bases() {
        let mut s0 = SimWorld::new(1);
        let mut s1 = SimWorld::new(1);
        s0.enable_boundary(0, SimDuration::from_micros(200));
        s1.enable_boundary(1, SimDuration::from_micros(200));
        let h0 = s0.add_host("a");
        let h1 = s1.add_host("a");
        assert_ne!(h0, h1);
        assert_eq!(h1, HostId((1 << 24) | 1));
        let a0 = s0.create_agent(h0, Box::new(Worker::default())).unwrap();
        let a1 = s1.create_agent(h1, Box::new(Worker::default())).unwrap();
        assert_ne!(a0, a1);
        assert_eq!(a1, AgentId((1 << 40) | 1));
        // shard 0 keeps the legacy bases: byte-identity with unsharded runs
        assert_eq!(h0, HostId(1));
        assert_eq!(a0, AgentId(1));
    }
}
