//! Simulated time.
//!
//! The discrete-event world advances a virtual clock measured in
//! microseconds. [`SimTime`] is an instant; [`SimDuration`] a span. Both are
//! plain `u64` microsecond counts under the hood, cheap to copy and totally
//! ordered, which the event queue relies on for deterministic execution.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of simulated time, in microseconds since world start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The world-start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since world start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Time expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration scaled by a float factor, saturating at u64 bounds.
    ///
    /// Used by the network model to derive transfer time from bytes and
    /// bandwidth.
    pub fn mul_f64(self, factor: f64) -> Self {
        let v = (self.0 as f64 * factor).max(0.0);
        SimDuration(if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        })
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(t.as_micros(), 2_000);
    }

    #[test]
    fn since_is_saturating() {
        let a = SimTime(100);
        let b = SimTime(400);
        assert_eq!(b.since(a).as_micros(), 300);
        assert_eq!(a.since(b).as_micros(), 0);
    }

    #[test]
    fn sub_matches_since() {
        assert_eq!(SimTime(500) - SimTime(200), SimDuration(300));
    }

    #[test]
    fn conversions_scale_correctly() {
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert!((SimDuration::from_millis(1500).as_millis_f64() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn mul_f64_saturates_and_scales() {
        assert_eq!(SimDuration(100).mul_f64(2.5).as_micros(), 250);
        assert_eq!(SimDuration(u64::MAX).mul_f64(10.0).as_micros(), u64::MAX);
        assert_eq!(SimDuration(100).mul_f64(-1.0).as_micros(), 0);
    }

    #[test]
    fn ordering_is_total_on_time() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration(5) > SimDuration(4));
    }
}
