//! Identifier newtypes for hosts, agents and messages.
//!
//! Every entity in the platform is addressed by a small copyable id. Using
//! newtypes (rather than bare integers) prevents accidentally passing a host
//! id where an agent id is expected.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a host (an agent server / execution context) in the world.
///
/// Hosts model the paper's servers: the Coordinator Server, each
/// Marketplace, each Seller Server and the Buyer Agent Server are all hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host-{}", self.0)
    }
}

impl From<u32> for HostId {
    fn from(v: u32) -> Self {
        HostId(v)
    }
}

/// Identifier of an agent, unique across the whole world for its lifetime.
///
/// Ids are never reused, so a stale id reliably names a disposed agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentId(pub u64);

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent-{}", self.0)
    }
}

impl From<u64> for AgentId {
    fn from(v: u64) -> Self {
        AgentId(v)
    }
}

/// Identifier of a message, unique per world.
///
/// Replies carry the id of the message they answer in
/// [`crate::message::Message::in_reply_to`], which lets request/response
/// protocols correlate without a separate conversation abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg-{}", self.0)
    }
}

impl From<u64> for MessageId {
    fn from(v: u64) -> Self {
        MessageId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_forms_are_distinct_and_nonempty() {
        assert_eq!(HostId(3).to_string(), "host-3");
        assert_eq!(AgentId(9).to_string(), "agent-9");
        assert_eq!(MessageId(1).to_string(), "msg-1");
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        let mut set = HashSet::new();
        set.insert(AgentId(1));
        set.insert(AgentId(2));
        set.insert(AgentId(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ids_order_by_inner_value() {
        assert!(HostId(1) < HostId(2));
        assert!(AgentId(10) > AgentId(2));
    }

    #[test]
    fn ids_round_trip_serde() {
        let id = AgentId(42);
        let json = serde_json::to_string(&id).unwrap();
        let back: AgentId = serde_json::from_str(&json).unwrap();
        assert_eq!(id, back);
    }

    #[test]
    fn from_impls_construct_ids() {
        assert_eq!(HostId::from(7), HostId(7));
        assert_eq!(AgentId::from(7u64), AgentId(7));
        assert_eq!(MessageId::from(7u64), MessageId(7));
    }
}
