//! Identifier newtypes for hosts, agents and messages.
//!
//! Every entity in the platform is addressed by a small copyable id. Using
//! newtypes (rather than bare integers) prevents accidentally passing a host
//! id where an agent id is expected.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a host (an agent server / execution context) in the world.
///
/// Hosts model the paper's servers: the Coordinator Server, each
/// Marketplace, each Seller Server and the Buyer Agent Server are all hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host-{}", self.0)
    }
}

impl From<u32> for HostId {
    fn from(v: u32) -> Self {
        HostId(v)
    }
}

/// Identifier of an agent, unique across the whole world for its lifetime.
///
/// Ids are never reused, so a stale id reliably names a disposed agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentId(pub u64);

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent-{}", self.0)
    }
}

impl From<u64> for AgentId {
    fn from(v: u64) -> Self {
        AgentId(v)
    }
}

/// Identifier of a message, unique per world.
///
/// Replies carry the id of the message they answer in
/// [`crate::message::Message::in_reply_to`], which lets request/response
/// protocols correlate without a separate conversation abstraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg-{}", self.0)
    }
}

impl From<u64> for MessageId {
    fn from(v: u64) -> Self {
        MessageId(v)
    }
}

/// Finalizer of the splitmix64 generator: a cheap, well-mixed 64-bit hash.
///
/// Used for consistent shard/worker routing so that the same agent id always
/// lands on the same shard regardless of insertion order or map iteration.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Consistent shard assignment for an agent: stable hash of the id modulo
/// the shard count. With `shards == 1` every agent maps to shard 0.
pub fn shard_of(agent: AgentId, shards: usize) -> usize {
    if shards <= 1 {
        0
    } else {
        (splitmix64(agent.0) % shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_forms_are_distinct_and_nonempty() {
        assert_eq!(HostId(3).to_string(), "host-3");
        assert_eq!(AgentId(9).to_string(), "agent-9");
        assert_eq!(MessageId(1).to_string(), "msg-1");
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        let mut set = HashSet::new();
        set.insert(AgentId(1));
        set.insert(AgentId(2));
        set.insert(AgentId(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ids_order_by_inner_value() {
        assert!(HostId(1) < HostId(2));
        assert!(AgentId(10) > AgentId(2));
    }

    #[test]
    fn ids_round_trip_serde() {
        let id = AgentId(42);
        let json = serde_json::to_string(&id).unwrap();
        let back: AgentId = serde_json::from_str(&json).unwrap();
        assert_eq!(id, back);
    }

    #[test]
    fn from_impls_construct_ids() {
        assert_eq!(HostId::from(7), HostId(7));
        assert_eq!(AgentId::from(7u64), AgentId(7));
        assert_eq!(MessageId::from(7u64), MessageId(7));
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 8] {
            for raw in 0..256u64 {
                let s = shard_of(AgentId(raw), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(AgentId(raw), shards), "must be deterministic");
            }
        }
        assert_eq!(shard_of(AgentId(12345), 1), 0);
    }

    #[test]
    fn shard_assignment_spreads_across_shards() {
        let shards = 4;
        let mut hit = vec![0usize; shards];
        for raw in 0..1024u64 {
            hit[shard_of(AgentId(raw), shards)] += 1;
        }
        for (i, &n) in hit.iter().enumerate() {
            assert!(n > 128, "shard {i} underloaded: {n}/1024");
        }
    }
}
