//! The agent abstraction: lifecycle callbacks, the action context handed to
//! callbacks, and migration capsules.
//!
//! The lifecycle mirrors IBM Aglets (§2.1 of the paper): agents are
//! *created*, may be *cloned*, *dispatched* to another host (carrying their
//! state), *deactivated* into stable storage and later *activated*, and
//! finally *disposed*. State travels as an [`AgentCapsule`]; the receiving
//! host rehydrates it through an [`AgentRegistry`] keyed by
//! [`Agent::agent_type`], mirroring the "takes along its program code as
//! well as the states" behaviour of aglets.

use crate::clock::{SimDuration, SimTime};
use crate::error::{PlatformError, Result};
use crate::ids::{AgentId, HostId};
use crate::intern::InternedStr;
use crate::message::Message;
use crate::payload::Payload;
use crate::security::TravelPermit;
use crate::telemetry::TraceCtx;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Behaviour of an agent.
///
/// Implementations are plain state machines: every callback receives a
/// [`Ctx`] through which the agent reads the clock, sends messages, spawns
/// other agents, migrates, deactivates or disposes. Side effects requested
/// through the context are applied by the world *after* the callback
/// returns, so callbacks never observe a half-updated world.
///
/// State that must survive migration or deactivation is captured by
/// [`Agent::snapshot`] and restored by the factory registered in
/// [`AgentRegistry`].
pub trait Agent: Send {
    /// Stable type tag used to find the rehydration factory after
    /// migration. Conventionally a short kebab-case name like `"mba"`.
    fn agent_type(&self) -> &'static str;

    /// Serialize migratable state. Called on dispatch and deactivation.
    ///
    /// The default is suitable only for stateless agents.
    fn snapshot(&self) -> serde_json::Value {
        serde_json::Value::Null
    }

    /// Called once, on the host where the agent was created.
    fn on_creation(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called just before the agent's state is serialized for migration.
    fn on_dispatch(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called after the agent has been rehydrated on the destination host.
    fn on_arrival(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called on a fresh clone (the copy, not the original) right after
    /// it is installed.
    fn on_clone(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called when a deactivated agent is loaded back into memory.
    fn on_activation(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called just before the agent is serialized into stable storage.
    fn on_deactivation(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called just before the agent is destroyed.
    fn on_disposal(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called for each delivered message.
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _tag: u64) {}

    /// Called when a [`Ctx::dispatch_self`] to `dest` fails synchronously
    /// because the destination is unreachable (partitioned or crashed).
    /// The agent stays active on its current host and may pick an
    /// alternative destination. Default: no-op.
    fn on_dispatch_failed(&mut self, _ctx: &mut Ctx<'_>, _dest: HostId) {}

    /// How a durable host journals this agent: whole capsules at every
    /// callback boundary (the default — right for small protocol agents
    /// like the BRA), or incremental deltas the agent logs itself via
    /// [`Ctx::journal_delta`] (right for agents carrying large learned
    /// state, like the PA).
    fn durable_policy(&self) -> DurablePolicy {
        DurablePolicy::Capsule
    }

    /// Called once after the agent has been restored by a crash-recovery
    /// pass, with every [`Ctx::journal_delta`] payload logged since the
    /// capsule in the recovered state was taken (empty for capsule-policy
    /// agents). The agent re-applies its deltas and re-drives any
    /// in-flight protocol: re-send unanswered requests, re-arm watchdog
    /// timers. Default: no-op.
    fn on_recovered(&mut self, _ctx: &mut Ctx<'_>, _deltas: &[serde_json::Value]) {}

    /// Called when the supervisor moves the agent's home to `new_home`
    /// during an automatic host failover — either because the agent itself
    /// was restored onto the standby, or because it was roaming when its
    /// home host died and its lease-stamped ownership was re-bound. Agents
    /// that cache their home host (e.g. a mobile agent planning its return
    /// trip) update it here. Default: no-op.
    fn on_rehomed(&mut self, _ctx: &mut Ctx<'_>, _new_home: HostId) {}
}

/// Journaling strategy of an agent on a durable host (see
/// [`Agent::durable_policy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurablePolicy {
    /// The world write-ahead-logs the agent's whole capsule at every
    /// callback boundary.
    Capsule,
    /// The agent journals incremental deltas itself via
    /// [`Ctx::journal_delta`]; the world only captures its capsule at
    /// checkpoints, and recovery replays the deltas logged since.
    Deltas,
}

/// A fault-handling statistic bumped by an application agent via
/// [`Ctx::count_retry`] / [`Ctx::count_degraded_reply`] and accumulated
/// into [`crate::metrics::Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCounter {
    /// A retry attempt (re-dispatch, watchdog re-arm, backoff round).
    Retry,
    /// A degraded (partial or fallback) reply served to a consumer.
    DegradedReply,
    /// A request shed by admission control before any work was done.
    Shed,
    /// A dispatch suppressed by an open circuit breaker.
    BreakerRejection,
    /// An in-doubt purchase intent resolved by querying the marketplace
    /// ledger after a crash or loss.
    LedgerResolution,
}

/// Deferred side effect requested by an agent callback.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-describing; variants are documented
pub enum Action {
    /// Send `msg` to agent `to` (possibly on another host).
    Send { to: AgentId, msg: Message },
    /// Create a new agent on the local host with pre-allocated id.
    Create { id: AgentId, agent: Box<dyn Agent> },
    /// Create an agent on the local host by rehydrating `state` through
    /// the world's registry under `agent_type` (mobile-code style).
    CreateOfType {
        id: AgentId,
        agent_type: InternedStr,
        state: Payload,
    },
    /// Migrate the calling agent to `dest`.
    DispatchSelf { dest: HostId },
    /// Clone the calling agent on the local host under a fresh id
    /// (Aglets `clone()`; the copy gets `on_clone`).
    CloneSelf { id: AgentId },
    /// Forcibly recall agent `id` (wherever it is) to host `to`
    /// (Aglets `retract()`).
    Retract { id: AgentId, to: HostId },
    /// Serialize agent `id` (same host) into stable storage
    /// (`Aglet.deactivate()` in the paper).
    Deactivate { id: AgentId },
    /// Load agent `id` back from stable storage (`Aglet.activate()`).
    Activate { id: AgentId },
    /// Destroy agent `id` (same host).
    Dispose { id: AgentId },
    /// Deliver `on_timer(tag)` to the calling agent after `delay`.
    SetTimer {
        id: AgentId,
        delay: SimDuration,
        tag: u64,
    },
    /// Replace the running handler's ambient request deadline; subsequent
    /// sends, migrations and timers in the same action list carry it.
    SetDeadline { deadline: Option<SimTime> },
    /// Append a labelled event to the world trace.
    Note { label: String },
    /// Bump a fault-handling counter in the world metrics.
    CountFault { counter: FaultCounter },
    /// Record `value` into the telemetry histogram `name`.
    Observe { name: InternedStr, value: u64 },
    /// Add `by` to the telemetry counter `name`.
    IncCounter { name: InternedStr, by: u64 },
    /// Write-ahead-log a purchase intent on the local host's durable
    /// store before the purchase is attempted (forced to stable storage).
    JournalIntent {
        intent: u64,
        detail: serde_json::Value,
    },
    /// Log that the purchase identified by `intent` definitely happened.
    JournalCommit {
        intent: u64,
        detail: serde_json::Value,
    },
    /// Log that the purchase identified by `intent` was abandoned.
    JournalAbort { intent: u64, reason: String },
    /// Log an incremental state delta for the calling agent (delta-policy
    /// durability; replayed through `on_recovered` after a crash).
    JournalDelta {
        id: AgentId,
        delta: serde_json::Value,
    },
}

impl fmt::Debug for Box<dyn Agent> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Box<dyn Agent type={}>", self.agent_type())
    }
}

/// Execution context passed to every agent callback.
///
/// All world mutations requested through the context are queued as
/// [`Action`]s and applied after the callback returns.
pub struct Ctx<'a> {
    self_id: AgentId,
    host: HostId,
    now: SimTime,
    rng: &'a mut StdRng,
    actions: &'a mut Vec<Action>,
    next_agent_id: &'a mut u64,
    trace: Option<TraceCtx>,
    deadline: Option<SimTime>,
}

impl<'a> Ctx<'a> {
    /// Internal constructor used by world runtimes.
    #[doc(hidden)]
    pub fn new(
        self_id: AgentId,
        host: HostId,
        now: SimTime,
        rng: &'a mut StdRng,
        actions: &'a mut Vec<Action>,
        next_agent_id: &'a mut u64,
    ) -> Self {
        Ctx {
            self_id,
            host,
            now,
            rng,
            actions,
            next_agent_id,
            trace: None,
            deadline: None,
        }
    }

    /// Attach the telemetry context of the handler span this callback
    /// runs under. Used by world runtimes; `None` when tracing is off.
    #[doc(hidden)]
    pub fn with_trace(mut self, trace: Option<TraceCtx>) -> Self {
        self.trace = trace;
        self
    }

    /// Telemetry context of the running callback, if this request is
    /// being traced. Application agents rarely need this; the world
    /// propagates it automatically.
    pub fn trace(&self) -> Option<TraceCtx> {
        self.trace
    }

    /// Attach the ambient request deadline this callback runs under.
    /// Used by world runtimes; `None` when the request has no deadline.
    #[doc(hidden)]
    pub fn with_deadline(mut self, deadline: Option<SimTime>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Absolute deadline of the request this callback serves, if one was
    /// minted at ingress. Carried automatically on every message,
    /// migration and timer the callback causes.
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    /// Microseconds of deadline budget left: `None` when no deadline is
    /// set, saturating at zero once it has passed. Retry/backoff logic
    /// clamps its schedule to this.
    pub fn remaining_us(&self) -> Option<u64> {
        crate::overload::remaining_us(self.deadline, self.now)
    }

    /// Mint (or overwrite) the ambient request deadline. Subsequent sends,
    /// migrations and timers requested by this callback carry it; expired
    /// work is dropped by the world with a `deadline_exceeded` span event.
    pub fn set_deadline(&mut self, deadline: SimTime) {
        self.deadline = Some(deadline);
        self.actions.push(Action::SetDeadline {
            deadline: Some(deadline),
        });
    }

    /// Clear the ambient deadline: work requested after this (e.g. the
    /// final reply to the consumer) is never deadline-dropped.
    pub fn clear_deadline(&mut self) {
        self.deadline = None;
        self.actions.push(Action::SetDeadline { deadline: None });
    }

    /// Id of the agent whose callback is running.
    pub fn self_id(&self) -> AgentId {
        self.self_id
    }

    /// Host the agent is currently executing on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic world RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Send `msg` to `to`. The `from` field is stamped with the calling
    /// agent's id; the message id is assigned by the world at send time.
    pub fn send(&mut self, to: AgentId, mut msg: Message) {
        msg.from = Some(self.self_id);
        msg.to = to;
        self.actions.push(Action::Send { to, msg });
    }

    /// Send a reply to `original`, correlating via `in_reply_to`.
    ///
    /// The reply goes to the sender of `original`; if `original` came from
    /// outside the world (no sender) the reply is dropped with a trace note.
    pub fn reply(&mut self, original: &Message, msg: Message) {
        match original.from {
            Some(from) => self.send(from, msg.replying_to(original)),
            None => self.note("reply dropped: original message had no sender"),
        }
    }

    /// Create `agent` on the local host. Returns the new agent's id
    /// immediately; `on_creation` runs after this callback returns.
    pub fn create_agent(&mut self, agent: Box<dyn Agent>) -> AgentId {
        let id = AgentId(*self.next_agent_id);
        *self.next_agent_id += 1;
        self.actions.push(Action::Create { id, agent });
        id
    }

    /// Create an agent on the local host from a type tag and a state
    /// snapshot, resolved through the world's [`AgentRegistry`]. Returns
    /// the new agent's id immediately; if the type is unknown the creation
    /// is dropped with a trace note when the action is applied.
    ///
    /// This is how the paper's Coordinator Agent instantiates a BSMA whose
    /// concrete type it does not link against (Fig 4.1 step 2).
    pub fn create_agent_of_type(
        &mut self,
        agent_type: impl Into<InternedStr>,
        state: impl Into<Payload>,
    ) -> AgentId {
        let id = AgentId(*self.next_agent_id);
        *self.next_agent_id += 1;
        self.actions.push(Action::CreateOfType {
            id,
            agent_type: agent_type.into(),
            state: state.into(),
        });
        id
    }

    /// Migrate the calling agent to `dest`. After the current callback
    /// returns, `on_dispatch` fires, the agent is serialized and travels
    /// over the network; `on_arrival` fires at the destination.
    pub fn dispatch_self(&mut self, dest: HostId) {
        self.actions.push(Action::DispatchSelf { dest });
    }

    /// Clone the calling agent on the local host. The copy is built from
    /// the caller's snapshot through the world registry (so the type must
    /// be registered), gets the returned fresh id, and receives
    /// `on_clone` after installation. Mirrors the aglet `clone()`
    /// operation the platform layer advertises (§3.1 of the paper).
    pub fn clone_self(&mut self) -> AgentId {
        let id = AgentId(*self.next_agent_id);
        *self.next_agent_id += 1;
        self.actions.push(Action::CloneSelf { id });
        id
    }

    /// Forcibly recall agent `id` from wherever it currently is to host
    /// `to` (the aglet `retract()`). No-op with a trace note if the agent
    /// is not active.
    pub fn retract(&mut self, id: AgentId, to: HostId) {
        self.actions.push(Action::Retract { id, to });
    }

    /// Deactivate agent `id` (must be co-located): its state is snapshotted
    /// into the host's stable store and it stops receiving messages until
    /// activated. The paper's BSMA does this to the BRA while its MBA
    /// roams (§4.1 principle 3).
    pub fn deactivate(&mut self, id: AgentId) {
        self.actions.push(Action::Deactivate { id });
    }

    /// Deactivate the calling agent itself.
    pub fn deactivate_self(&mut self) {
        let id = self.self_id;
        self.deactivate(id);
    }

    /// Activate a previously deactivated co-located agent.
    pub fn activate(&mut self, id: AgentId) {
        self.actions.push(Action::Activate { id });
    }

    /// Dispose agent `id` (must be co-located). `on_disposal` fires first.
    pub fn dispose(&mut self, id: AgentId) {
        self.actions.push(Action::Dispose { id });
    }

    /// Dispose the calling agent.
    pub fn dispose_self(&mut self) {
        let id = self.self_id;
        self.dispose(id);
    }

    /// Ask the world to call `on_timer(tag)` on this agent after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(Action::SetTimer {
            id: self.self_id,
            delay,
            tag,
        });
    }

    /// Append a labelled event to the world trace. Workflow implementations
    /// use this to emit the paper's numbered figure steps.
    pub fn note(&mut self, label: impl Into<String>) {
        self.actions.push(Action::Note {
            label: label.into(),
        });
    }

    /// Record a retry attempt in [`crate::metrics::Metrics::retries`].
    pub fn count_retry(&mut self) {
        self.actions.push(Action::CountFault {
            counter: FaultCounter::Retry,
        });
    }

    /// Record a degraded reply in
    /// [`crate::metrics::Metrics::degraded_replies`].
    pub fn count_degraded_reply(&mut self) {
        self.actions.push(Action::CountFault {
            counter: FaultCounter::DegradedReply,
        });
    }

    /// Record a shed request in [`crate::metrics::Metrics::requests_shed`].
    pub fn count_shed(&mut self) {
        self.actions.push(Action::CountFault {
            counter: FaultCounter::Shed,
        });
    }

    /// Record a breaker-suppressed dispatch in
    /// [`crate::metrics::Metrics::breaker_rejections`].
    pub fn count_breaker_rejection(&mut self) {
        self.actions.push(Action::CountFault {
            counter: FaultCounter::BreakerRejection,
        });
    }

    /// Record an in-doubt purchase resolved by the marketplace ledger in
    /// [`crate::metrics::Metrics::intents_resolved_by_ledger`].
    pub fn count_ledger_resolution(&mut self) {
        self.actions.push(Action::CountFault {
            counter: FaultCounter::LedgerResolution,
        });
    }

    /// Record `value` into the telemetry histogram `name` (no-op when
    /// telemetry is disabled on the world).
    pub fn observe(&mut self, name: impl Into<InternedStr>, value: u64) {
        self.actions.push(Action::Observe {
            name: name.into(),
            value,
        });
    }

    /// Add `by` to the telemetry counter `name` (no-op when telemetry is
    /// disabled on the world).
    pub fn inc_counter(&mut self, name: impl Into<InternedStr>, by: u64) {
        self.actions.push(Action::IncCounter {
            name: name.into(),
            by,
        });
    }

    /// Write-ahead-log a purchase intent before dispatching the buyer
    /// toward the marketplace. Forced to stable storage immediately
    /// (fsync-on-intent); no-op when the local host is not durable.
    pub fn journal_intent(&mut self, intent: u64, detail: serde_json::Value) {
        self.actions.push(Action::JournalIntent { intent, detail });
    }

    /// Log that the purchase identified by `intent` definitely happened
    /// (the confirm/receipt reached the buyer). No-op on non-durable
    /// hosts.
    pub fn journal_commit(&mut self, intent: u64, detail: serde_json::Value) {
        self.actions.push(Action::JournalCommit { intent, detail });
    }

    /// Log that the purchase identified by `intent` was abandoned and the
    /// marketplace ledger confirms (or the protocol guarantees) it never
    /// happened. No-op on non-durable hosts.
    pub fn journal_abort(&mut self, intent: u64, reason: impl Into<String>) {
        self.actions.push(Action::JournalAbort {
            intent,
            reason: reason.into(),
        });
    }

    /// Log an incremental state delta for the calling agent. Only
    /// meaningful for agents whose [`Agent::durable_policy`] is
    /// [`DurablePolicy::Deltas`]; replayed through
    /// [`Agent::on_recovered`] after a crash. No-op on non-durable hosts.
    pub fn journal_delta(&mut self, delta: serde_json::Value) {
        self.actions.push(Action::JournalDelta {
            id: self.self_id,
            delta,
        });
    }
}

/// Serialized form of an agent in transit or in stable storage.
///
/// Mirrors an aglet on the wire: identity, a code tag (`agent_type`) and
/// the state snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentCapsule {
    /// The travelling agent's id (stable across migration).
    pub id: AgentId,
    /// Type tag resolved against the [`AgentRegistry`] on arrival.
    /// Interned: every capsule of a type shares one allocation.
    pub agent_type: InternedStr,
    /// Snapshotted state (shared, encode-once).
    pub state: Payload,
    /// Host the agent considers home (where it was created).
    pub home: HostId,
    /// Travel permit issued by the home host when the agent first left.
    /// Demanded (and burned) when the agent arrives back home.
    pub permit: Option<TravelPermit>,
    /// Telemetry context of the migration hop carrying this capsule.
    /// `None` when tracing is off; stamped by the world at dispatch.
    #[serde(default)]
    pub trace: Option<TraceCtx>,
    /// Absolute deadline of the request this migration serves, if any.
    /// Stamped by the world at dispatch from the ambient deadline; an
    /// expired capsule is cancelled at arrival. Excluded from
    /// [`AgentCapsule::wire_size`] (a few header bytes at most).
    #[serde(default)]
    pub deadline: Option<SimTime>,
}

impl AgentCapsule {
    /// Capture `agent` into a capsule: its type tag is interned and its
    /// snapshot wrapped into a shared [`Payload`]. Used by both runtimes
    /// for dispatch, clone and deactivation.
    pub fn capture(
        id: AgentId,
        agent: &dyn Agent,
        home: HostId,
        permit: Option<TravelPermit>,
    ) -> Self {
        AgentCapsule {
            id,
            agent_type: InternedStr::new(agent.agent_type()),
            state: Payload::from(agent.snapshot()),
            home,
            permit,
            trace: None,
            deadline: None,
        }
    }

    /// Approximate on-the-wire size in bytes (drives transfer time in the
    /// network model). The state's encoded length is computed once per
    /// capsule and cached — repeated calls (transfer, storage accounting,
    /// restore) do not re-serialize.
    pub fn wire_size(&self) -> usize {
        64 + self.agent_type.len() + self.state.encoded_len()
    }

    /// Detach the telemetry context, returning it.
    ///
    /// Span ids are scoped to one shard's `Telemetry` store; a capsule
    /// crossing a shard boundary has its migration hop ended on the origin
    /// shard and travels without a trace (see
    /// [`crate::message::Message::strip_trace`]).
    pub fn strip_trace(&mut self) -> Option<TraceCtx> {
        self.trace.take()
    }
}

/// Factory function rehydrating an agent from a reference to its
/// snapshotted state (no clone of the state tree).
pub type AgentFactory = Box<dyn Fn(&Payload) -> Result<Box<dyn Agent>> + Send + Sync>;

/// Registry of agent factories, shared by all hosts of a world.
///
/// Registering a type makes hosts able to rehydrate capsules of that type,
/// which models "the code is available at the destination". Dispatching an
/// agent whose type is not registered fails with
/// [`PlatformError::UnknownAgentType`] at arrival.
#[derive(Default)]
pub struct AgentRegistry {
    factories: HashMap<String, AgentFactory>,
}

impl AgentRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a factory for `agent_type`, replacing any previous one.
    pub fn register<F>(&mut self, agent_type: &str, factory: F)
    where
        F: Fn(&Payload) -> Result<Box<dyn Agent>> + Send + Sync + 'static,
    {
        self.factories
            .insert(agent_type.to_string(), Box::new(factory));
    }

    /// Convenience: register a factory for a serde-deserializable agent.
    pub fn register_serde<A>(&mut self, agent_type: &str)
    where
        A: Agent + serde::de::DeserializeOwned + 'static,
    {
        self.register(agent_type, |state| {
            let agent: A = state
                .typed()
                .map_err(|e| PlatformError::RestoreFailed(e.to_string()))?;
            Ok(Box::new(agent) as Box<dyn Agent>)
        });
    }

    /// Rehydrate `capsule` into a live agent. The capsule's state is handed
    /// to the factory by reference — restoring does not copy it.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownAgentType`] if no factory is registered;
    /// [`PlatformError::RestoreFailed`] if the snapshot does not parse.
    pub fn rehydrate(&self, capsule: &AgentCapsule) -> Result<Box<dyn Agent>> {
        let factory = self
            .factories
            .get(capsule.agent_type.as_str())
            .ok_or_else(|| PlatformError::UnknownAgentType(capsule.agent_type.to_string()))?;
        factory(&capsule.state)
    }

    /// Whether a factory exists for `agent_type`.
    pub fn knows(&self, agent_type: &str) -> bool {
        self.factories.contains_key(agent_type)
    }
}

impl fmt::Debug for AgentRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut types: Vec<&str> = self.factories.keys().map(|s| s.as_str()).collect();
        types.sort_unstable();
        f.debug_struct("AgentRegistry")
            .field("types", &types)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::panic)]

    use super::*;
    use rand::SeedableRng;

    #[derive(Debug, Serialize, Deserialize)]
    struct Counter {
        count: u32,
    }

    impl Agent for Counter {
        fn agent_type(&self) -> &'static str {
            "counter"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {
            self.count += 1;
        }
    }

    fn test_ctx_parts() -> (StdRng, Vec<Action>, u64) {
        (StdRng::seed_from_u64(1), Vec::new(), 100)
    }

    #[test]
    fn ctx_send_stamps_sender_and_destination() {
        let (mut rng, mut actions, mut next) = test_ctx_parts();
        let mut ctx = Ctx::new(
            AgentId(7),
            HostId(1),
            SimTime(5),
            &mut rng,
            &mut actions,
            &mut next,
        );
        ctx.send(AgentId(9), Message::new("hello"));
        match &actions[0] {
            Action::Send { to, msg } => {
                assert_eq!(*to, AgentId(9));
                assert_eq!(msg.from, Some(AgentId(7)));
                assert_eq!(msg.to, AgentId(9));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn ctx_create_agent_allocates_fresh_ids() {
        let (mut rng, mut actions, mut next) = test_ctx_parts();
        let mut ctx = Ctx::new(
            AgentId(1),
            HostId(1),
            SimTime(0),
            &mut rng,
            &mut actions,
            &mut next,
        );
        let a = ctx.create_agent(Box::new(Counter { count: 0 }));
        let b = ctx.create_agent(Box::new(Counter { count: 0 }));
        assert_eq!(a, AgentId(100));
        assert_eq!(b, AgentId(101));
        assert_eq!(actions.len(), 2);
    }

    #[test]
    fn ctx_reply_routes_to_original_sender() {
        let (mut rng, mut actions, mut next) = test_ctx_parts();
        let mut ctx = Ctx::new(
            AgentId(1),
            HostId(1),
            SimTime(0),
            &mut rng,
            &mut actions,
            &mut next,
        );
        let mut original = Message::new("ask");
        original.id = crate::ids::MessageId(55);
        original.from = Some(AgentId(3));
        ctx.reply(&original, Message::new("answer"));
        match &actions[0] {
            Action::Send { to, msg } => {
                assert_eq!(*to, AgentId(3));
                assert_eq!(msg.in_reply_to, Some(crate::ids::MessageId(55)));
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn ctx_reply_to_external_message_becomes_note() {
        let (mut rng, mut actions, mut next) = test_ctx_parts();
        let mut ctx = Ctx::new(
            AgentId(1),
            HostId(1),
            SimTime(0),
            &mut rng,
            &mut actions,
            &mut next,
        );
        let original = Message::new("external");
        ctx.reply(&original, Message::new("answer"));
        assert!(matches!(actions[0], Action::Note { .. }));
    }

    #[test]
    fn registry_rehydrates_serde_agents() {
        let mut reg = AgentRegistry::new();
        reg.register_serde::<Counter>("counter");
        let capsule = AgentCapsule {
            id: AgentId(1),
            agent_type: "counter".into(),
            state: serde_json::json!({"count": 41}).into(),
            home: HostId(0),
            permit: None,
            trace: None,
            deadline: None,
        };
        let agent = reg.rehydrate(&capsule).unwrap();
        assert_eq!(agent.agent_type(), "counter");
        assert_eq!(agent.snapshot(), serde_json::json!({"count": 41}));
    }

    #[test]
    fn registry_rejects_unknown_type() {
        let reg = AgentRegistry::new();
        let capsule = AgentCapsule {
            id: AgentId(1),
            agent_type: "ghost".into(),
            state: Payload::null(),
            home: HostId(0),
            permit: None,
            trace: None,
            deadline: None,
        };
        match reg.rehydrate(&capsule) {
            Err(PlatformError::UnknownAgentType(t)) => assert_eq!(t, "ghost"),
            other => panic!("expected UnknownAgentType, got {other:?}"),
        }
    }

    #[test]
    fn registry_rejects_malformed_state() {
        let mut reg = AgentRegistry::new();
        reg.register_serde::<Counter>("counter");
        let capsule = AgentCapsule {
            id: AgentId(1),
            agent_type: "counter".into(),
            state: serde_json::json!({"not_count": true}).into(),
            home: HostId(0),
            permit: None,
            trace: None,
            deadline: None,
        };
        assert!(matches!(
            reg.rehydrate(&capsule),
            Err(PlatformError::RestoreFailed(_))
        ));
    }

    #[test]
    fn capsule_wire_size_reflects_state_size() {
        let small = AgentCapsule {
            id: AgentId(1),
            agent_type: "a".into(),
            state: serde_json::json!(1).into(),
            home: HostId(0),
            permit: None,
            trace: None,
            deadline: None,
        };
        let big = AgentCapsule {
            id: AgentId(1),
            agent_type: "a".into(),
            state: serde_json::json!(vec![0; 512]).into(),
            home: HostId(0),
            permit: None,
            trace: None,
            deadline: None,
        };
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn capture_interns_type_and_wraps_snapshot() {
        let agent = Counter { count: 12 };
        let capsule = AgentCapsule::capture(AgentId(5), &agent, HostId(2), None);
        assert_eq!(capsule.agent_type, "counter");
        assert_eq!(*capsule.state, serde_json::json!({"count": 12}));
        assert_eq!(capsule.home, HostId(2));
    }

    #[test]
    fn capsule_wire_size_is_stable_and_matches_encoding() {
        let agent = Counter { count: 7_654_321 };
        let capsule = AgentCapsule::capture(AgentId(1), &agent, HostId(0), None);
        let encoded = serde_json::to_string(capsule.state.value()).unwrap();
        let expected = 64 + capsule.agent_type.len() + encoded.len();
        for _ in 0..3 {
            assert_eq!(capsule.wire_size(), expected);
        }
    }
}
