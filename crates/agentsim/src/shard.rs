//! Sharded discrete-event runtime: N [`SimWorld`] shards advancing in
//! conservative lock-step epochs.
//!
//! [`ShardedSimWorld`] partitions hosts (and with them, agents) across
//! shards. Each shard owns a private event heap and runs one epoch —
//! a half-open window `[min_next, min_next + window)` — on its own OS
//! thread; cross-shard sends and migrations are collected into per-shard
//! outboxes and exchanged at the barrier between epochs.
//!
//! # Determinism
//!
//! Same seed + same shard count ⇒ the identical execution, because:
//!
//! * every event is keyed `(time, shard, seq)` — a total order with no
//!   ties (each shard mints its own monotone `seq`);
//! * a boundary item is delayed by at least the epoch window, so it can
//!   never land inside any shard's past (each shard only processes events
//!   strictly before `min_next + window`, and items sent during that
//!   window carry `at ≥ now + window ≥ min_next + window`);
//! * items are injected under their origin `(time, shard, seq)` key, so
//!   heap order is independent of exchange iteration order.
//!
//! The 1-shard configuration never installs boundary state at all: it is
//! the unsharded [`SimWorld`] byte for byte.

use crate::agent::Agent;
use crate::chaos::ChaosPlan;
use crate::clock::{SimDuration, SimTime};
use crate::error::{PlatformError, Result};
use crate::ids::{AgentId, HostId, MessageId};
use crate::message::Message;
use crate::metrics::Metrics;
use crate::overload::MailboxConfig;
use crate::sim::{BoundaryItem, BoundaryPayload, Location, SimWorld};
use crate::trace::{Trace, TraceEvent};
use std::collections::HashMap;

/// Default epoch window (and minimum boundary latency): one LAN hop.
pub const DEFAULT_WINDOW: SimDuration = SimDuration(200);

// The epoch loop moves `&mut SimWorld` into scoped threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SimWorld>();
};

/// N conservative-time-window shards behind one world-like facade.
///
/// Hosts are placed on an explicit shard ([`ShardedSimWorld::add_host`]);
/// agents live on their host's shard and migrate between shards through
/// ordinary `dispatch` calls. Consumer-facing callers pick a shard with
/// [`crate::ids::shard_of`].
pub struct ShardedSimWorld {
    shards: Vec<SimWorld>,
    window: SimDuration,
    /// Owner shard of every agent the coordinator has seen.
    owners: HashMap<AgentId, usize>,
    /// Owner shard of every host.
    host_owners: HashMap<HostId, usize>,
}

impl ShardedSimWorld {
    /// `shards` lock-step worlds with the default epoch window. Shard 0
    /// is seeded exactly like `SimWorld::new(seed)`; other shards derive
    /// disjoint seeds deterministically.
    pub fn new(seed: u64, shards: usize) -> Self {
        Self::with_window(seed, shards, DEFAULT_WINDOW)
    }

    /// As [`ShardedSimWorld::new`] with an explicit epoch window (also the
    /// minimum cross-shard latency; see the module docs).
    pub fn with_window(seed: u64, shards: usize, window: SimDuration) -> Self {
        let shards = shards.max(1);
        let worlds = (0..shards)
            .map(|k| {
                let shard_seed = if k == 0 {
                    seed
                } else {
                    seed ^ crate::ids::splitmix64(k as u64)
                };
                let mut w = SimWorld::new(shard_seed);
                if shards > 1 {
                    w.enable_boundary(k as u16, window);
                }
                w
            })
            .collect();
        ShardedSimWorld {
            shards: worlds,
            window,
            owners: HashMap::new(),
            host_owners: HashMap::new(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shared access to one shard's world (inspect state, traces, hosts).
    pub fn shard(&self, k: usize) -> &SimWorld {
        &self.shards[k]
    }

    /// Mutable access to one shard's world (register agent types, tweak
    /// topology). Avoid driving a shard's clock directly — use the
    /// facade's run methods so the barrier stays consistent.
    pub fn shard_mut(&mut self, k: usize) -> &mut SimWorld {
        &mut self.shards[k]
    }

    /// Register a host on `shard` and make it addressable from every
    /// other shard. Host ids are globally unique (per-shard id bases).
    pub fn add_host(&mut self, shard: usize, name: impl Into<String>) -> HostId {
        let id = self.shards[shard].add_host(name);
        for (k, w) in self.shards.iter_mut().enumerate() {
            if k != shard {
                w.register_remote_host(id);
            }
        }
        self.host_owners.insert(id, shard);
        id
    }

    /// Owner shard of `host`, if known.
    pub fn shard_of_host(&self, host: HostId) -> Option<usize> {
        self.host_owners.get(&host).copied()
    }

    /// Owner shard of `agent`, if known to the coordinator.
    pub fn shard_of_agent(&self, agent: AgentId) -> Option<usize> {
        if let Some(&k) = self.owners.get(&agent) {
            return Some(k);
        }
        self.shards.iter().position(|s| s.location(agent).is_some())
    }

    /// Create `agent` on `host` (like [`SimWorld::create_agent`]) and
    /// announce it to every other shard immediately.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownHost`] if no shard owns `host`.
    pub fn create_agent(&mut self, host: HostId, agent: Box<dyn Agent>) -> Result<AgentId> {
        let shard = self
            .host_owners
            .get(&host)
            .copied()
            .ok_or(PlatformError::UnknownHost(host))?;
        let id = self.shards[shard].create_agent(host, agent)?;
        self.owners.insert(id, shard);
        for (k, w) in self.shards.iter_mut().enumerate() {
            if k != shard {
                w.register_remote_agent(id, host);
            }
        }
        Ok(id)
    }

    /// Inject a message from outside the world, routed to the recipient's
    /// owner shard.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownAgent`] if no shard knows `to`.
    pub fn send_external(&mut self, to: AgentId, msg: Message) -> Result<MessageId> {
        let shard = self
            .shard_of_agent(to)
            .ok_or(PlatformError::UnknownAgent(to))?;
        self.shards[shard].send_external(to, msg)
    }

    /// Run until every shard's queue and every outbox is empty, then
    /// close any open telemetry spans.
    pub fn run_until_idle(&mut self) {
        if self.shards.len() == 1 {
            self.shards[0].run_until_idle();
            return;
        }
        while let Some(next) = self.next_event_at() {
            let end = next + self.window;
            self.run_epoch(end);
        }
        for s in &mut self.shards {
            s.finalize_telemetry();
        }
    }

    /// Run until the (global) clock reaches `deadline` or the world
    /// drains; shard clocks are advanced to `deadline` either way.
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.shards.len() == 1 {
            self.shards[0].run_until(deadline);
            return;
        }
        while let Some(next) = self.next_event_at() {
            if next > deadline {
                break;
            }
            // Epochs never reach past the deadline: events *at* the
            // deadline still run (half-open window, hence the +1µs cap).
            let end = (next + self.window).min(deadline + SimDuration::from_micros(1));
            self.run_epoch(end);
        }
        for s in &mut self.shards {
            s.run_until(deadline);
        }
    }

    /// Run for `span` of simulated time past the most advanced shard.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now() + span;
        self.run_until(deadline);
    }

    /// Earliest queued event across all shards.
    fn next_event_at(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(SimWorld::next_event_at).min()
    }

    /// One epoch: every busy shard processes events strictly before
    /// `end` (in parallel when more than one shard has work), then the
    /// barrier exchanges boundary items and agent announcements.
    fn run_epoch(&mut self, end: SimTime) {
        let busy: Vec<bool> = self
            .shards
            .iter()
            .map(|s| s.next_event_at().is_some_and(|t| t < end))
            .collect();
        if busy.iter().filter(|b| **b).count() <= 1 {
            // A lone busy shard gains nothing from a thread spawn.
            for (s, &b) in self.shards.iter_mut().zip(&busy) {
                if b {
                    s.run_window(end);
                }
            }
        } else {
            std::thread::scope(|scope| {
                for (s, &b) in self.shards.iter_mut().zip(&busy) {
                    if b {
                        scope.spawn(move || s.run_window(end));
                    }
                }
            });
        }
        // Lockstep: every shard's clock advances to the epoch end, busy
        // or not. Outbox items are stamped `>= end` (latency >= window),
        // so after the sync no boundary item can land in any shard's
        // past — even a shard that sat idle for many epochs.
        for s in &mut self.shards {
            s.sync_clock(end);
        }
        self.exchange();
    }

    /// The inter-epoch barrier: propagate agent announcements, then route
    /// boundary items to their destination shards in global key order.
    fn exchange(&mut self) {
        // Announcements first, so items addressed to agents created this
        // epoch route correctly below.
        let mut announced: Vec<(usize, AgentId, HostId)> = Vec::new();
        for k in 0..self.shards.len() {
            for (id, host) in self.shards[k].drain_announcements() {
                announced.push((k, id, host));
            }
        }
        for (k, id, host) in announced {
            self.owners.insert(id, k);
            for (j, w) in self.shards.iter_mut().enumerate() {
                if j != k {
                    w.register_remote_agent(id, host);
                }
            }
        }
        let mut items: Vec<(usize, BoundaryItem)> = Vec::new();
        for k in 0..self.shards.len() {
            for item in self.shards[k].drain_outbox() {
                let dest_shard = match &item.payload {
                    BoundaryPayload::Deliver(msg) => {
                        // Unknown recipients route to shard 0, which
                        // dead-letters them like any unsharded world.
                        self.owners.get(&msg.to).copied().unwrap_or(0)
                    }
                    BoundaryPayload::Arrive { dest, .. } => {
                        self.host_owners.get(dest).copied().unwrap_or(0)
                    }
                };
                items.push((dest_shard, item));
            }
        }
        // Global total order; injection order then no longer matters, but
        // sorting keeps the coordinator itself deterministic too.
        items.sort_by_key(|(_, i)| (i.at, i.origin_shard, i.origin_seq));
        for (dest_shard, item) in items {
            if let BoundaryPayload::Arrive { capsule, dest } = &item.payload {
                let id = capsule.id;
                let dest = *dest;
                self.owners.insert(id, dest_shard);
                for (j, w) in self.shards.iter_mut().enumerate() {
                    if j != dest_shard {
                        w.register_remote_agent(id, dest);
                    }
                }
            }
            self.shards[dest_shard].inject_boundary(item);
        }
    }

    /// Most advanced shard clock.
    pub fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(SimWorld::now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Field-wise sum of every shard's counters.
    pub fn metrics(&self) -> Metrics {
        let mut merged = Metrics::new();
        for s in &self.shards {
            merged.merge(s.metrics());
        }
        merged
    }

    /// All shards' trace events, merged in time order (ties keep shard
    /// order — the merge is stable).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .shards
            .iter()
            .flat_map(|s| s.trace().events().iter().cloned())
            .collect();
        all.sort_by_key(|e| e.at);
        all
    }

    /// Labels of the merged trace, in time order.
    pub fn trace_labels(&self) -> Vec<String> {
        self.trace_events().into_iter().map(|e| e.label).collect()
    }

    /// All shards' events merged into one [`Trace`] in time order, for
    /// consumers (like workflow validators) that take a whole trace.
    pub fn merged_trace(&self) -> Trace {
        let mut trace = Trace::new();
        for e in self.trace_events() {
            trace.record(e.at, e.agent, e.label);
        }
        trace
    }

    /// Enable request tracing on every shard.
    pub fn enable_telemetry(&mut self) {
        for s in &mut self.shards {
            s.enable_telemetry();
        }
    }

    /// Enable WAL-backed durability on every shard (see
    /// [`SimWorld::enable_durability`]); restarting a crashed host then
    /// runs the recovery pass on its owner shard.
    pub fn enable_durability(&mut self, cfg: crate::durable::DurabilityConfig) {
        for s in &mut self.shards {
            s.enable_durability(cfg);
        }
    }

    /// Arm self-healing supervision on every shard (see
    /// [`SimWorld::enable_supervision`]); each shard's detector watches
    /// the hosts that shard owns.
    pub fn enable_supervision(&mut self, cfg: crate::supervise::SupervisionConfig) {
        for s in &mut self.shards {
            s.enable_supervision(cfg);
        }
    }

    /// Bound every shard's per-agent mailboxes (see
    /// [`SimWorld::set_mailbox`]).
    pub fn set_mailbox(&mut self, config: MailboxConfig) {
        for s in &mut self.shards {
            s.set_mailbox(config);
        }
    }

    /// Install the chaos plan on every shard: topology faults apply to
    /// each shard's own overlay; a host crash executes on the owner shard
    /// and mirrors into the others' remote-down sets.
    pub fn install_chaos(&mut self, plan: &ChaosPlan) {
        for s in &mut self.shards {
            s.install_chaos(plan);
        }
    }

    /// Partition a host pair on every shard's topology.
    pub fn partition(&mut self, a: HostId, b: HostId) {
        for s in &mut self.shards {
            s.topology_mut().partition(a, b);
        }
    }

    /// Heal a partition on every shard's topology.
    pub fn heal_partition(&mut self, a: HostId, b: HostId) {
        for s in &mut self.shards {
            s.topology_mut().heal_partition(a, b);
        }
    }

    /// Crash `host` on its owner shard and mirror the outage everywhere.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownHost`] if no shard owns `host`.
    pub fn crash_host(&mut self, host: HostId) -> Result<()> {
        let owner = self
            .host_owners
            .get(&host)
            .copied()
            .ok_or(PlatformError::UnknownHost(host))?;
        self.shards[owner].crash_host(host)?;
        for (k, w) in self.shards.iter_mut().enumerate() {
            if k != owner {
                w.set_remote_host_down(host, true);
            }
        }
        Ok(())
    }

    /// Restart a crashed host and clear the mirrored outage.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownHost`] if no shard owns `host`.
    pub fn restart_host(&mut self, host: HostId) -> Result<()> {
        let owner = self
            .host_owners
            .get(&host)
            .copied()
            .ok_or(PlatformError::UnknownHost(host))?;
        self.shards[owner].restart_host(host)?;
        for (k, w) in self.shards.iter_mut().enumerate() {
            if k != owner {
                w.set_remote_host_down(host, false);
            }
        }
        Ok(())
    }

    /// Where `agent` currently is, asking its owner shard.
    pub fn location(&self, agent: AgentId) -> Option<Location> {
        self.shards.iter().find_map(|s| s.location(agent))
    }
}

impl std::fmt::Debug for ShardedSimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimWorld")
            .field("shards", &self.shards.len())
            .field("window", &self.window)
            .field("agents", &self.owners.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, Ctx};
    use crate::message::Message;
    use serde::{Deserialize, Serialize};

    /// Ping-pong agent: replies "pong" to "ping", counts what it saw.
    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Ponger {
        pings: u64,
        pongs: u64,
    }

    impl Agent for Ponger {
        fn agent_type(&self) -> &'static str {
            "ponger"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if msg.is("ping") {
                self.pings += 1;
                ctx.reply(&msg, Message::new("pong"));
            } else if msg.is("pong") {
                self.pongs += 1;
            } else if msg.is("ping-to") {
                let raw: u64 = msg.payload_as().expect("agent id");
                ctx.send(AgentId(raw), Message::new("ping"));
            }
        }
    }

    /// Mobile agent that hops to a host named in a "visit" message and
    /// notes its arrival.
    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Rover;

    impl Agent for Rover {
        fn agent_type(&self) -> &'static str {
            "rover"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::json!(null)
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if msg.is("visit") {
                let dest: u32 = msg.payload_as().expect("host id");
                ctx.dispatch_self(HostId(dest));
            }
        }
        fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
            ctx.note("rover arrived");
        }
    }

    fn two_shard_pingpong(shards: usize) -> ShardedSimWorld {
        let mut world = ShardedSimWorld::new(7, shards);
        for k in 0..world.shard_count() {
            world
                .shard_mut(k)
                .registry_mut()
                .register_serde::<Ponger>("ponger");
            world
                .shard_mut(k)
                .registry_mut()
                .register_serde::<Rover>("rover");
        }
        world
    }

    #[test]
    fn cross_shard_messages_deliver_and_reply() {
        let mut world = two_shard_pingpong(2);
        let h0 = world.add_host(0, "left");
        let h1 = world.add_host(1, "right");
        let a = world.create_agent(h0, Box::new(Ponger::default())).unwrap();
        let b = world.create_agent(h1, Box::new(Ponger::default())).unwrap();
        world
            .send_external(a, Message::new("ping-to").with_payload(&b.0).unwrap())
            .unwrap();
        world.run_until_idle();
        let m = world.metrics();
        assert!(m.boundary_messages >= 2, "ping and pong must cross: {m:?}");
        assert_eq!(m.messages_dead_lettered, 0);
        let b_state = world.shard(1).snapshot_of(b).unwrap();
        assert_eq!(b_state["pings"], 1);
        let a_state = world.shard(0).snapshot_of(a).unwrap();
        assert_eq!(a_state["pongs"], 1);
    }

    #[test]
    fn cross_shard_migration_round_trips_with_auth() {
        let mut world = two_shard_pingpong(2);
        let h0 = world.add_host(0, "home");
        let h1 = world.add_host(1, "away");
        let rover = world.create_agent(h0, Box::new(Rover)).unwrap();
        world
            .send_external(rover, Message::new("visit").with_payload(&h1.0).unwrap())
            .unwrap();
        world.run_until_idle();
        assert_eq!(world.location(rover), Some(Location::Active(h1)));
        assert_eq!(world.shard_of_agent(rover), Some(1));
        // ...and back home, which demands permit authentication.
        world
            .send_external(rover, Message::new("visit").with_payload(&h0.0).unwrap())
            .unwrap();
        world.run_until_idle();
        assert_eq!(world.location(rover), Some(Location::Active(h0)));
        let m = world.metrics();
        assert_eq!(m.boundary_migrations, 2);
        assert_eq!(m.migrations_rejected, 0);
        assert_eq!(
            world
                .trace_labels()
                .iter()
                .filter(|l| *l == "rover arrived")
                .count(),
            2
        );
    }

    #[test]
    fn same_seed_sharded_runs_reproduce_exactly() {
        fn run() -> (Vec<String>, Metrics) {
            let mut world = two_shard_pingpong(4);
            let hosts: Vec<HostId> = (0..4).map(|k| world.add_host(k, format!("h{k}"))).collect();
            let agents: Vec<AgentId> = hosts
                .iter()
                .map(|h| world.create_agent(*h, Box::new(Ponger::default())).unwrap())
                .collect();
            // Every agent pings its clockwise neighbour, all at t=0.
            for (i, a) in agents.iter().enumerate() {
                let peer = agents[(i + 1) % agents.len()];
                world
                    .send_external(*a, Message::new("ping-to").with_payload(&peer.0).unwrap())
                    .unwrap();
            }
            world.run_until_idle();
            (world.trace_labels(), world.metrics())
        }
        let (t1, m1) = run();
        let (t2, m2) = run();
        assert_eq!(t1, t2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn one_shard_facade_is_a_plain_simworld() {
        let mut sharded = ShardedSimWorld::new(7, 1);
        sharded
            .shard_mut(0)
            .registry_mut()
            .register_serde::<Ponger>("ponger");
        let h = sharded.add_host(0, "solo");
        let a = sharded
            .create_agent(h, Box::new(Ponger::default()))
            .unwrap();
        sharded.send_external(a, Message::new("ping")).unwrap();
        sharded.run_until_idle();

        let mut plain = SimWorld::new(7);
        plain.registry_mut().register_serde::<Ponger>("ponger");
        let ph = plain.add_host("solo");
        let pa = plain.create_agent(ph, Box::new(Ponger::default())).unwrap();
        plain.send_external(pa, Message::new("ping")).unwrap();
        plain.run_until_idle();

        assert_eq!((h, a), (ph, pa));
        assert_eq!(sharded.metrics(), plain.metrics().clone());
        assert_eq!(
            sharded.trace_labels(),
            plain
                .trace()
                .labels()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn crashed_remote_host_refuses_boundary_dispatch() {
        let mut world = two_shard_pingpong(2);
        let h0 = world.add_host(0, "home");
        let h1 = world.add_host(1, "away");
        let rover = world.create_agent(h0, Box::new(Rover)).unwrap();
        world.crash_host(h1).unwrap();
        world
            .send_external(rover, Message::new("visit").with_payload(&h1.0).unwrap())
            .unwrap();
        world.run_until_idle();
        // Refused synchronously: the rover stays home instead of being lost.
        assert_eq!(world.location(rover), Some(Location::Active(h0)));
        assert!(world.metrics().chaos_drops >= 1);
        world.restart_host(h1).unwrap();
        world
            .send_external(rover, Message::new("visit").with_payload(&h1.0).unwrap())
            .unwrap();
        world.run_until_idle();
        assert_eq!(world.location(rover), Some(Location::Active(h1)));
    }
}
