//! End-to-end request tracing and latency telemetry.
//!
//! The paper's workflow is a multi-hop chain (HttpA → BSMA → BRA → MBA →
//! marketplaces → back, figs 4.1–4.3); flat counters cannot answer "where
//! did this request spend its time?" or "which hop did chaos break?".
//! This module adds the observability layer both runtimes share:
//!
//! * **Causal request tracing** — a [`TraceCtx`] is minted at request
//!   ingress ([`crate::sim::SimWorld::send_external`] /
//!   [`crate::thread_net::ThreadWorld::send_external`]) and propagated
//!   automatically through every message hop, migration, retry and timer
//!   re-arm, producing per-request [`Span`] trees with sim-time *and*
//!   wall-time bounds, agent, host and [`HopKind`].
//! * **A metrics [`Registry`]** — named counters, gauges and log-bucketed
//!   [`Histogram`]s (p50/p90/p99/max) for per-stage latencies, per-kind
//!   throughput and cache hit rates.
//! * **Chaos annotation** — every drop, partition refusal, crash, dup and
//!   backoff retry lands as a [`SpanEvent`] so degraded replies are
//!   explainable from the trace alone.
//! * **Exporters** — JSON snapshot, Prometheus text format, and Chrome
//!   `trace_event` JSON loadable in `chrome://tracing` / Perfetto.
//!
//! Telemetry is **off by default**: the runtimes check one `bool` before
//! doing any work, messages carry `trace: None`, and no RNG draw or event
//! reordering ever depends on tracing — figure traces stay byte-identical
//! whether tracing is on or off.

use crate::clock::SimTime;
use crate::ids::{AgentId, HostId};
use crate::intern::InternedStr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Causal trace context stamped on in-flight messages, capsules and
/// timers. `span_id` names the hop currently in flight; `parent` is the
/// span that caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCtx {
    /// Id of the root request span this hop belongs to.
    pub trace_id: u64,
    /// Id of the span this context names.
    pub span_id: u64,
    /// Id of the causing span, if any (roots have none).
    #[serde(default)]
    pub parent: Option<u64>,
}

/// What kind of hop a [`Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HopKind {
    /// A root span: one external request from ingress to quiescence.
    Request,
    /// A message in flight, from send to delivery (or loss).
    Message,
    /// An agent callback running (`on_message`, `on_timer`, lifecycle).
    Handler,
    /// An agent migration, from dispatch to arrival (or loss).
    Migration,
    /// A timer pending, from arm to fire.
    Timer,
}

impl HopKind {
    /// Stable lowercase label used by exporters and tree signatures.
    pub fn label(self) -> &'static str {
        match self {
            HopKind::Request => "request",
            HopKind::Message => "message",
            HopKind::Handler => "handler",
            HopKind::Migration => "migration",
            HopKind::Timer => "timer",
        }
    }
}

/// Classification of a point event attached to a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanEventKind {
    /// A fault injected by the chaos engine touched this hop (drop,
    /// dup, reorder jitter, partition refusal, crash, auth reject).
    Chaos,
    /// A retry attempt (re-dispatch, watchdog re-arm, backoff round).
    Retry,
    /// A degraded (partial or fallback) reply was served.
    Degraded,
    /// The message could not be delivered to any live agent.
    DeadLetter,
    /// An application note (includes the paper's figure-step labels).
    Note,
    /// A request shed by admission control or a full mailbox.
    Shed,
    /// A dispatch suppressed by an open circuit breaker.
    Breaker,
    /// Work dropped because its request deadline had already passed.
    DeadlineExceeded,
    /// The request crossed a shard boundary; the trace ends on the origin
    /// shard (span ids are shard-local) and this event records the handoff.
    Boundary,
}

impl SpanEventKind {
    /// Stable lowercase label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            SpanEventKind::Chaos => "chaos",
            SpanEventKind::Retry => "retry",
            SpanEventKind::Degraded => "degraded",
            SpanEventKind::DeadLetter => "dead_letter",
            SpanEventKind::Note => "note",
            SpanEventKind::Shed => "shed",
            SpanEventKind::Breaker => "breaker",
            SpanEventKind::DeadlineExceeded => "deadline_exceeded",
            SpanEventKind::Boundary => "boundary",
        }
    }
}

/// A labelled instant attached to a [`Span`].
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Sim time the event happened.
    pub at: SimTime,
    /// Event classification.
    pub kind: SpanEventKind,
    /// Human-readable detail.
    pub label: String,
}

/// One hop of one request: a node of the per-request span tree.
#[derive(Debug, Clone)]
pub struct Span {
    /// Root request span id this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique per [`Telemetry`], dense from 1).
    pub id: u64,
    /// Causing span id, if any.
    pub parent: Option<u64>,
    /// Hop classification.
    pub kind: HopKind,
    /// Name: message kind for message hops, agent type for migrations,
    /// callback name for handlers, request kind for roots.
    pub name: InternedStr,
    /// Agent executing or travelling, when known.
    pub agent: Option<AgentId>,
    /// Host the span is anchored on, when known.
    pub host: Option<HostId>,
    /// Sim time the span opened.
    pub start: SimTime,
    /// Sim time the span closed (`None` while open; finalize closes all).
    pub end: Option<SimTime>,
    /// Wall-clock nanoseconds since the telemetry epoch at open.
    pub wall_start_ns: u64,
    /// Wall-clock nanoseconds since the telemetry epoch at close.
    pub wall_end_ns: Option<u64>,
    /// Point events (chaos annotations, retries, notes, …).
    pub events: Vec<SpanEvent>,
}

impl Span {
    /// Sim-time duration, if closed.
    pub fn duration_us(&self) -> Option<u64> {
        self.end.map(|e| e.0.saturating_sub(self.start.0))
    }

    /// Whether any attached event has the given kind.
    pub fn has_event(&self, kind: SpanEventKind) -> bool {
        self.events.iter().any(|e| e.kind == kind)
    }
}

const HIST_BUCKETS: usize = 65;

/// Log2-bucketed histogram of `u64` samples with cheap quantiles.
///
/// Bucket `b` holds values whose bit length is `b` (bucket 0 holds the
/// value 0), so recording is a `leading_zeros` and quantiles are exact
/// to a factor of two — plenty for latency tables.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize;
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 < q <= 1.0`), clamped to the observed max. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if b == 0 { 0 } else { (1u64 << b) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }
}

/// Named counters, gauges, histograms, and the dead-letter breakdown.
///
/// Names are free-form dotted strings (`"stage.handler_wall_ns"`);
/// `BTreeMap` storage keeps every export deterministic.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    dead_letter_kinds: BTreeMap<String, u64>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to counter `name` (created at 0).
    pub fn inc(&mut self, name: &str, by: u64) {
        *ensure(&mut self.counters, name) += by;
    }

    /// Current value of counter `name` (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record `v` into histogram `name` (created empty).
    pub fn observe(&mut self, name: &str, v: u64) {
        ensure(&mut self.histograms, name).record(v);
    }

    /// Histogram `name`, if any sample was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Record a dead-lettered message of `kind`.
    pub fn dead_letter(&mut self, kind: &str) {
        *ensure(&mut self.dead_letter_kinds, kind) += 1;
        self.inc("dead_letters_total", 1);
    }

    /// Per-message-kind dead-letter breakdown.
    pub fn dead_letter_kinds(&self) -> &BTreeMap<String, u64> {
        &self.dead_letter_kinds
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }
}

fn ensure<'a, V: Default>(map: &'a mut BTreeMap<String, V>, name: &str) -> &'a mut V {
    if !map.contains_key(name) {
        map.insert(name.to_string(), V::default());
    }
    map.get_mut(name).expect("just inserted")
}

/// The per-world telemetry sink: span store, id allocator, registry and
/// exporters. Owned by [`crate::sim::SimWorld`] directly and by
/// [`crate::thread_net::ThreadWorld`] behind a mutex.
#[derive(Debug, Clone)]
pub struct Telemetry {
    enabled: bool,
    sample_every: u64,
    roots_seen: u64,
    next_id: u64,
    spans: Vec<Span>,
    registry: Registry,
    epoch: Instant,
    double_closes: u64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A disabled sink: minting returns `None`, nothing is recorded.
    pub fn new() -> Self {
        Telemetry {
            enabled: false,
            sample_every: 1,
            roots_seen: 0,
            next_id: 1,
            spans: Vec::new(),
            registry: Registry::new(),
            epoch: Instant::now(),
            double_closes: 0,
        }
    }

    /// Whether tracing is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turn tracing on (every request traced).
    pub fn enable(&mut self) {
        self.enabled = true;
        self.sample_every = 1;
    }

    /// Turn tracing off. Already-recorded spans are kept.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Turn tracing on, sampling one root request in `every` (`every`
    /// is clamped to at least 1). Untraced requests pay only one modulo.
    pub fn set_sampling(&mut self, every: u64) {
        self.enabled = true;
        self.sample_every = every.max(1);
    }

    /// Wall-clock nanoseconds since this sink was created.
    pub fn wall_now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    #[allow(clippy::too_many_arguments)]
    fn push_span(
        &mut self,
        trace_id: Option<u64>,
        parent: Option<u64>,
        kind: HopKind,
        name: InternedStr,
        agent: Option<AgentId>,
        host: Option<HostId>,
        at: SimTime,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let wall = self.wall_now_ns();
        self.spans.push(Span {
            trace_id: trace_id.unwrap_or(id),
            id,
            parent,
            kind,
            name,
            agent,
            host,
            start: at,
            end: None,
            wall_start_ns: wall,
            wall_end_ns: None,
            events: Vec::new(),
        });
        id
    }

    /// Mint a root [`HopKind::Request`] span for an ingress request, or
    /// `None` when tracing is off or this request is sampled out.
    pub fn mint_root(&mut self, name: &InternedStr, at: SimTime) -> Option<TraceCtx> {
        if !self.enabled {
            return None;
        }
        self.roots_seen += 1;
        if !(self.roots_seen - 1).is_multiple_of(self.sample_every) {
            return None;
        }
        let id = self.push_span(None, None, HopKind::Request, name.clone(), None, None, at);
        Some(TraceCtx {
            trace_id: id,
            span_id: id,
            parent: None,
        })
    }

    /// Open a child span of `parent` and return its context.
    pub fn child(
        &mut self,
        parent: TraceCtx,
        kind: HopKind,
        name: InternedStr,
        agent: Option<AgentId>,
        host: Option<HostId>,
        at: SimTime,
    ) -> TraceCtx {
        let id = self.push_span(
            Some(parent.trace_id),
            Some(parent.span_id),
            kind,
            name,
            agent,
            host,
            at,
        );
        TraceCtx {
            trace_id: parent.trace_id,
            span_id: id,
            parent: Some(parent.span_id),
        }
    }

    fn index(&self, span_id: u64) -> Option<usize> {
        if span_id == 0 || span_id >= self.next_id {
            return None;
        }
        Some(span_id as usize - 1)
    }

    /// Close span `span_id` at sim time `at`; returns the sim-time
    /// duration in µs. Closing an already-closed span is a counted no-op
    /// (see [`Telemetry::double_closes`]).
    pub fn end(&mut self, span_id: u64, at: SimTime) -> Option<u64> {
        let wall = self.wall_now_ns();
        let idx = self.index(span_id)?;
        let span = &mut self.spans[idx];
        if span.end.is_some() {
            self.double_closes += 1;
            return None;
        }
        span.end = Some(at);
        span.wall_end_ns = Some(wall);
        Some(at.0.saturating_sub(span.start.0))
    }

    /// Attach a point event to span `span_id` (no-op on unknown ids).
    pub fn event(
        &mut self,
        span_id: u64,
        kind: SpanEventKind,
        label: impl Into<String>,
        at: SimTime,
    ) {
        if let Some(idx) = self.index(span_id) {
            self.spans[idx].events.push(SpanEvent {
                at,
                kind,
                label: label.into(),
            });
        }
    }

    /// Close every still-open span at `at` and repair parent/child
    /// sim-time and wall-time containment bottom-up, so that afterwards
    /// every parent fully contains its children. Called by the runtimes
    /// at quiescence / shutdown; safe to call repeatedly.
    pub fn finalize(&mut self, at: SimTime) {
        let wall = self.wall_now_ns();
        for span in &mut self.spans {
            if span.end.is_none() {
                span.end = Some(at.max(span.start));
                span.wall_end_ns = Some(wall.max(span.wall_start_ns));
            }
        }
        // children have larger ids than parents, so one reverse pass
        // propagates the latest descendant end all the way up
        for i in (0..self.spans.len()).rev() {
            let (end, wall_end, parent) = {
                let s = &self.spans[i];
                (s.end, s.wall_end_ns, s.parent)
            };
            if let Some(idx) = parent.and_then(|p| self.index(p)) {
                let p = &mut self.spans[idx];
                if let (Some(pe), Some(ce)) = (p.end, end) {
                    if ce > pe {
                        p.end = Some(ce);
                    }
                }
                if let (Some(pw), Some(cw)) = (p.wall_end_ns, wall_end) {
                    if cw > pw {
                        p.wall_end_ns = Some(cw);
                    }
                }
            }
        }
    }

    /// How many times a span close was attempted after the span had
    /// already closed. 0 on a well-formed run.
    pub fn double_closes(&self) -> u64 {
        self.double_closes
    }

    /// All spans, in creation (= id) order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Span by id.
    pub fn span(&self, span_id: u64) -> Option<&Span> {
        self.index(span_id).map(|i| &self.spans[i])
    }

    /// All root (request) spans.
    pub fn roots(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// All spans of one trace, in id order.
    pub fn trace_spans(&self, trace_id: u64) -> Vec<&Span> {
        self.spans
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .collect()
    }

    /// Shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Shared metrics registry, mutable.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Canonical structural signature of one trace: each node renders as
    /// `kind:name` with its children sorted and parenthesised, so two
    /// trees compare equal iff they are isomorphic in (hop kind, name)
    /// structure — agent *ids* are excluded because the two runtimes
    /// allocate them differently.
    pub fn signature(&self, trace_id: u64) -> String {
        let spans = self.trace_spans(trace_id);
        let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
        let mut root: Option<&Span> = None;
        for s in &spans {
            match s.parent {
                Some(p) => children.entry(p).or_default().push(s),
                None => root = Some(s),
            }
        }
        fn render(span: &Span, children: &BTreeMap<u64, Vec<&Span>>) -> String {
            let mut kids: Vec<String> = children
                .get(&span.id)
                .map(|v| v.iter().map(|c| render(c, children)).collect())
                .unwrap_or_default();
            kids.sort();
            if kids.is_empty() {
                format!("{}:{}", span.kind.label(), span.name)
            } else {
                format!("{}:{}({})", span.kind.label(), span.name, kids.join(","))
            }
        }
        root.map(|r| render(r, &children)).unwrap_or_default()
    }

    /// JSON snapshot of every span and the registry (deterministic key
    /// order).
    pub fn snapshot_json(&self) -> serde_json::Value {
        let spans: Vec<serde_json::Value> = self
            .spans
            .iter()
            .map(|s| {
                serde_json::json!({
                    "trace_id": s.trace_id,
                    "id": s.id,
                    "parent": s.parent,
                    "kind": s.kind.label(),
                    "name": s.name.as_str(),
                    "agent": s.agent.map(|a| a.0),
                    "host": s.host.map(|h| h.0),
                    "start_us": s.start.0,
                    "end_us": s.end.map(|e| e.0),
                    "wall_start_ns": s.wall_start_ns,
                    "wall_end_ns": s.wall_end_ns,
                    "events": s.events.iter().map(|e| serde_json::json!({
                        "at_us": e.at.0,
                        "kind": e.kind.label(),
                        "label": e.label,
                    })).collect::<Vec<_>>(),
                })
            })
            .collect();
        let histograms: BTreeMap<&str, serde_json::Value> = self
            .registry
            .histograms()
            .iter()
            .map(|(name, h)| {
                (
                    name.as_str(),
                    serde_json::json!({
                        "count": h.count(),
                        "sum": h.sum(),
                        "mean": h.mean(),
                        "p50": h.quantile(0.50),
                        "p90": h.quantile(0.90),
                        "p99": h.quantile(0.99),
                        "max": h.max(),
                    }),
                )
            })
            .collect();
        serde_json::json!({
            "spans": spans,
            "counters": self.registry.counters(),
            "gauges": self.registry.gauges(),
            "histograms": histograms,
            "dead_letter_kinds": self.registry.dead_letter_kinds(),
            "double_closes": self.double_closes,
        })
    }

    /// Prometheus text exposition format: counters, gauges, histogram
    /// summaries (quantile labels) and the dead-letter breakdown.
    pub fn prometheus_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, v) in self.registry.counters() {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in self.registry.gauges() {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in self.registry.histograms() {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!("{n}{{quantile=\"{label}\"}} {}\n", h.quantile(q)));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum(), h.count()));
        }
        for (kind, v) in self.registry.dead_letter_kinds() {
            out.push_str(&format!("dead_letters{{kind=\"{kind}\"}} {v}\n"));
        }
        out
    }

    /// Chrome `trace_event` JSON (the object form with a `traceEvents`
    /// array), loadable in `chrome://tracing` and Perfetto. Spans become
    /// complete (`"ph":"X"`) events on `pid` = host, `tid` = agent (0
    /// when unknown); span events become instants (`"ph":"i"`).
    pub fn chrome_trace_json(&self) -> serde_json::Value {
        let mut events: Vec<serde_json::Value> = Vec::new();
        for s in &self.spans {
            let pid = s.host.map(|h| h.0 as u64).unwrap_or(0);
            let tid = s.agent.map(|a| a.0).unwrap_or(0);
            let dur = s.duration_us().unwrap_or(0).max(1);
            events.push(serde_json::json!({
                "name": format!("{}:{}", s.kind.label(), s.name),
                "cat": s.kind.label(),
                "ph": "X",
                "ts": s.start.0,
                "dur": dur,
                "pid": pid,
                "tid": tid,
                "args": {
                    "trace_id": s.trace_id,
                    "span_id": s.id,
                    "parent": s.parent,
                },
            }));
            for e in &s.events {
                events.push(serde_json::json!({
                    "name": format!("{}:{}", e.kind.label(), e.label),
                    "cat": e.kind.label(),
                    "ph": "i",
                    "ts": e.at.0,
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "args": { "span_id": s.id },
                }));
            }
        }
        serde_json::json!({
            "traceEvents": events,
            "displayTimeUnit": "ms",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> InternedStr {
        InternedStr::new(s)
    }

    #[test]
    fn disabled_sink_mints_nothing() {
        let mut t = Telemetry::new();
        assert!(t.mint_root(&name("req"), SimTime(0)).is_none());
        assert!(t.spans().is_empty());
    }

    #[test]
    fn sampling_traces_one_in_n() {
        let mut t = Telemetry::new();
        t.set_sampling(3);
        let minted: Vec<bool> = (0..9)
            .map(|i| t.mint_root(&name("req"), SimTime(i)).is_some())
            .collect();
        assert_eq!(minted.iter().filter(|&&m| m).count(), 3);
        assert!(minted[0] && minted[3] && minted[6]);
    }

    #[test]
    fn span_tree_builds_and_signature_is_order_insensitive() {
        let mut t = Telemetry::new();
        t.enable();
        let root = t.mint_root(&name("req"), SimTime(0)).unwrap();
        let a = t.child(root, HopKind::Message, name("b"), None, None, SimTime(1));
        let _a2 = t.child(a, HopKind::Handler, name("h"), None, None, SimTime(2));
        let _b = t.child(root, HopKind::Message, name("a"), None, None, SimTime(1));
        t.finalize(SimTime(10));
        assert_eq!(
            t.signature(root.trace_id),
            "request:req(message:a,message:b(handler:h))"
        );
    }

    #[test]
    fn double_close_is_counted_not_fatal() {
        let mut t = Telemetry::new();
        t.enable();
        let root = t.mint_root(&name("req"), SimTime(0)).unwrap();
        assert_eq!(t.end(root.span_id, SimTime(5)), Some(5));
        assert_eq!(t.end(root.span_id, SimTime(9)), None);
        assert_eq!(t.double_closes(), 1);
        assert_eq!(t.span(root.span_id).unwrap().end, Some(SimTime(5)));
    }

    #[test]
    fn finalize_closes_open_spans_and_repairs_containment() {
        let mut t = Telemetry::new();
        t.enable();
        let root = t.mint_root(&name("req"), SimTime(0)).unwrap();
        let h = t.child(root, HopKind::Handler, name("h"), None, None, SimTime(1));
        let m = t.child(h, HopKind::Message, name("m"), None, None, SimTime(1));
        // handler closes immediately, its message child lands later
        t.end(h.span_id, SimTime(1));
        t.end(m.span_id, SimTime(8));
        t.finalize(SimTime(8));
        let handler = t.span(h.span_id).unwrap();
        let msg = t.span(m.span_id).unwrap();
        let req = t.span(root.span_id).unwrap();
        assert_eq!(msg.end, Some(SimTime(8)));
        assert_eq!(handler.end, Some(SimTime(8)), "parent stretched over child");
        assert_eq!(req.end, Some(SimTime(8)), "root closed at finalize");
        for s in t.spans() {
            let parent = match s.parent {
                Some(p) => t.span(p).unwrap(),
                None => continue,
            };
            assert!(parent.start <= s.start && s.end.unwrap() <= parent.end.unwrap());
        }
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.5);
        assert!((511..=1000).contains(&p50), "p50={p50}");
        assert!(h.quantile(0.99) <= 1023);
        assert_eq!(h.quantile(1.0), 1000, "clamped to observed max");
        assert_eq!(Histogram::new().quantile(0.5), 0);
        let mut zero = Histogram::new();
        zero.record(0);
        assert_eq!(zero.quantile(0.5), 0);
    }

    #[test]
    fn registry_counts_and_dead_letters() {
        let mut r = Registry::new();
        r.inc("delivered.query", 2);
        r.inc("delivered.query", 1);
        assert_eq!(r.counter("delivered.query"), 3);
        r.dead_letter("mba-result");
        r.dead_letter("mba-result");
        r.dead_letter("login");
        assert_eq!(r.dead_letter_kinds().get("mba-result"), Some(&2));
        assert_eq!(r.counter("dead_letters_total"), 3);
        r.set_gauge("cache.hit_rate", 0.75);
        assert_eq!(r.gauge("cache.hit_rate"), Some(0.75));
    }

    #[test]
    fn exporters_cover_spans_and_registry() {
        let mut t = Telemetry::new();
        t.enable();
        let root = t.mint_root(&name("front-request"), SimTime(0)).unwrap();
        let m = t.child(
            root,
            HopKind::Message,
            name("login"),
            None,
            None,
            SimTime(1),
        );
        t.event(
            m.span_id,
            SpanEventKind::Chaos,
            "dropped: chaos",
            SimTime(2),
        );
        t.end(m.span_id, SimTime(2));
        t.registry_mut().observe("stage.transfer_us", 150);
        t.registry_mut().inc("delivered.login", 1);
        t.registry_mut().dead_letter("late-reply");
        t.finalize(SimTime(5));

        let snap = t.snapshot_json();
        assert_eq!(snap["spans"].as_array().unwrap().len(), 2);
        assert_eq!(snap["dead_letter_kinds"]["late-reply"], 1);
        assert_eq!(snap["histograms"]["stage.transfer_us"]["count"], 1);

        let prom = t.prometheus_text();
        assert!(prom.contains("# TYPE delivered_login counter"));
        assert!(prom.contains("stage_transfer_us{quantile=\"0.5\"}"));
        assert!(prom.contains("dead_letters{kind=\"late-reply\"} 1"));

        let chrome = t.chrome_trace_json();
        let events = chrome["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 3, "2 complete spans + 1 instant");
        for e in events {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(e.get(key).is_some(), "chrome event missing {key}");
            }
        }
        assert!(events.iter().any(|e| e["ph"] == "i" && e["cat"] == "chaos"));
    }
}
