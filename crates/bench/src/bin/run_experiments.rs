//! Regenerate every experiment table (E5, E6, E10 offline series) in one
//! shot, without Criterion timing overhead. The workflow / platform
//! series (E2–E4, E7–E9) print from their benches; this binary covers
//! the pure-algorithm tables so EXPERIMENTS.md can be refreshed quickly.
//!
//! ```bash
//! cargo run --release -p bench --bin run_experiments
//! ```

use eval::sweep::{
    ablation, alpha_convergence, cold_start_eval, prediction_accuracy, replicated_quality,
    sparsity_sweep, SweepSpec,
};

fn main() {
    let spec = SweepSpec {
        items: 100,
        consumers: 40,
        clusters: 3,
        ..SweepSpec::default()
    };
    println!(
        "workload: {} items, {} consumers, {} clusters, k={}\n",
        spec.items, spec.consumers, spec.clusters, spec.k
    );
    println!(
        "{}",
        alpha_convergence(&spec, &[0.05, 0.1, 0.3, 0.6, 1.0], 80)
    );
    println!("{}", sparsity_sweep(&spec, &[1, 3, 7, 15, 30]));
    println!("{}", cold_start_eval(&spec, 15));
    println!("{}", prediction_accuracy(&spec, &[3, 7, 15, 30]));
    println!("{}", ablation(&spec, 15));
    println!("{}", replicated_quality(&spec, &[11, 22, 33, 44, 55], 15));
    // E9 platform throughput at report scale (the 1k/10k series lives in
    // the platform_throughput bench)
    println!("{}", bench::throughput::table(&[1_000]));
}
