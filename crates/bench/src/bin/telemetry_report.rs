//! Telemetry report: build a tracing-enabled platform, drive the paper's
//! workflows (Fig 4.1 creation, login, Fig 4.2 query, Fig 4.3 purchase,
//! auction), and print the per-stage latency table from the telemetry
//! registry. Optionally export the run as Chrome `trace_event` JSON
//! (loadable in Perfetto / `chrome://tracing`) and self-validate it.
//!
//! ```bash
//! cargo run --release -p bench --bin telemetry_report -- [--quick] [--chrome-out PATH]
//! ```

use abcrm_core::agents::msg::{BuyMode, ResponseBody};
use abcrm_core::profile::ConsumerId;
use abcrm_core::server::{listing, Platform};
use abcrm_core::workflow;
use agentsim::clock::SimDuration;
use ecp::merchandise::{ItemId, Money};

fn build_platform() -> Platform {
    Platform::builder(42)
        .telemetry(true)
        .marketplaces(vec![
            vec![
                listing(
                    1,
                    "Rust in Action",
                    "books",
                    "programming",
                    35,
                    &[("rust", 1.0)],
                ),
                listing(2, "The Go Book", "books", "programming", 30, &[("go", 1.0)]),
                listing(
                    3,
                    "Sourdough Basics",
                    "books",
                    "cooking",
                    20,
                    &[("bread", 1.0)],
                ),
            ],
            vec![
                listing(
                    11,
                    "Systems Programming",
                    "books",
                    "programming",
                    40,
                    &[("rust", 0.8)],
                ),
                listing(12, "Kind of Blue LP", "music", "jazz", 25, &[("jazz", 1.0)]),
            ],
        ])
        .build()
}

/// Validate the structure of an exported Chrome `trace_event` document:
/// object form, a `traceEvents` array of events each carrying
/// `name`/`ph`/`ts`/`pid`/`tid`, phases limited to complete (`X`) and
/// instant (`i`) events, and positive durations on complete events.
fn validate_chrome_trace(doc: &serde_json::Value) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    for (i, ev) in events.iter().enumerate() {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if ev.get(key).is_none() {
                return Err(format!("event {i} missing {key}"));
            }
        }
        match ev["ph"].as_str() {
            Some("X") => {
                if ev.get("dur").and_then(|d| d.as_u64()).unwrap_or(0) == 0 {
                    return Err(format!("complete event {i} has zero duration"));
                }
            }
            Some("i") => {}
            other => return Err(format!("event {i} has unexpected phase {other:?}")),
        }
    }
    Ok(events.len())
}

fn print_latency_table(platform: &Platform) {
    let reg = platform.telemetry().registry();
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50", "p90", "p99", "max"
    );
    for (name, h) in reg.histograms() {
        println!(
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
            name,
            h.count(),
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
            h.max()
        );
    }
    let hits = reg.counter("cache.item_sim.hits");
    let misses = reg.counter("cache.item_sim.misses");
    println!(
        "\ncounters: {} similar requests, item-sim cache {hits} hits / {misses} misses",
        reg.counter("pa.similar_requests")
    );
    if !reg.dead_letter_kinds().is_empty() {
        println!("dead letters by kind: {:?}", reg.dead_letter_kinds());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let chrome_out = args
        .iter()
        .position(|a| a == "--chrome-out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut platform = build_platform();
    workflow::validate(platform.world().trace(), workflow::FIG_CREATION)
        .expect("fig 4.1 creation trace");

    let alice = ConsumerId(1);
    platform.login(alice);
    platform.query(alice, &["rust"], 5);
    workflow::validate(platform.world().trace(), workflow::FIG_QUERY).expect("fig 4.2 query trace");
    let receipts = platform.buy(
        alice,
        ItemId(1),
        0,
        BuyMode::Negotiate {
            budget: Money::from_units(32),
            opening_fraction: 0.6,
            raise: 0.1,
            max_rounds: 20,
        },
    );
    workflow::validate(platform.world().trace(), workflow::FIG_TRANSACT)
        .expect("fig 4.3 buy trace");
    assert!(
        receipts
            .iter()
            .any(|r| matches!(r, ResponseBody::Receipt { .. })),
        "negotiated purchase must produce a receipt"
    );
    if !quick {
        platform.open_auction(
            1,
            ItemId(12),
            Money::from_units(10),
            Money::from_units(1),
            SimDuration::from_millis(50),
        );
        platform.auction(alice, ItemId(12), 1, Money::from_units(30));
    }
    platform.logout(alice);

    let telemetry = platform.telemetry();
    let roots = telemetry.roots().count();
    let spans = telemetry.spans().len();
    println!(
        "telemetry: {roots} request traces, {spans} spans, {} double closes\n",
        telemetry.double_closes()
    );

    // Every numbered workflow step lands as a Note event on some span,
    // so the whole figure narrative is recoverable from the trace alone.
    for prefix in ["fig4.1/", "fig4.2/", "fig4.3/"] {
        let steps = telemetry
            .spans()
            .iter()
            .flat_map(|s| s.events.iter())
            .filter(|e| e.label.starts_with(prefix))
            .count();
        println!("span events covering {prefix}: {steps} steps");
    }
    println!();
    print_latency_table(&platform);

    let doc = telemetry.chrome_trace_json();
    match validate_chrome_trace(&doc) {
        Ok(n) => println!("\nchrome trace: {n} events, schema OK"),
        Err(e) => {
            eprintln!("chrome trace INVALID: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = chrome_out {
        let text = serde_json::to_string(&doc).expect("chrome trace serializes");
        std::fs::write(&path, text).expect("chrome trace written");
        println!("chrome trace written to {path} (load it in ui.perfetto.dev)");
    }
}
