//! Shared measurement core for the `platform_throughput` bench and the
//! `run_experiments` E9 table: wall-clock messages/sec, migrations/sec
//! and sessions/sec on the DES platform.
//!
//! Everything here intentionally sticks to the stable platform API
//! (`with_payload`, `payload_as`, `clone`, `dispatch_self`, `login`/
//! `logout`), so the same measurement runs unchanged against builds
//! before and after the zero-copy payload fast path — the numbers in
//! `BENCH_platform.json` are directly comparable.

use abcrm_core::profile::ConsumerId;
use agentsim::agent::{Agent, Ctx};
use agentsim::ids::HostId;
use agentsim::message::Message;
use agentsim::shard::ShardedSimWorld;
use agentsim::sim::SimWorld;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One row of a marketplace quote sheet (a payload-heavy message body).
#[derive(Debug, Serialize, Deserialize)]
pub struct QuoteRow {
    /// Item id.
    pub id: u64,
    /// Item name.
    pub name: String,
    /// Quoted price.
    pub price: f64,
    /// Descriptive terms.
    pub terms: Vec<String>,
}

/// The quote sheet fanned out to every consumer.
#[derive(Debug, Serialize, Deserialize)]
pub struct QuoteSheet {
    /// Originating marketplace.
    pub market: String,
    /// Quoted items.
    pub rows: Vec<QuoteRow>,
}

/// A quote sheet with `items` rows (~100 encoded bytes per row).
pub fn quote_sheet(items: usize) -> QuoteSheet {
    QuoteSheet {
        market: "m0".into(),
        rows: (0..items)
            .map(|i| QuoteRow {
                id: i as u64,
                name: format!("merchandise-{i}"),
                price: 10.25 + i as f64,
                terms: vec![format!("term{}", i % 7), "quality".into(), "fast".into()],
            })
            .collect(),
    }
}

/// Consumes fan-out quotes with a typed (hot-path) payload read.
#[derive(Debug, Default, Serialize, Deserialize)]
struct Reader {
    seen: u64,
    rows: u64,
}

impl Agent for Reader {
    fn agent_type(&self) -> &'static str {
        "reader"
    }
    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).unwrap()
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, msg: Message) {
        if msg.is("quote") {
            let sheet: QuoteSheet = msg.payload_as().expect("quote payload");
            self.seen += 1;
            self.rows += sheet.rows.len() as u64;
        }
    }
}

/// Migrating agent with configurable state ballast: one round trip per
/// "trip" message.
#[derive(Debug, Serialize, Deserialize)]
struct Carrier {
    home: HostId,
    away: HostId,
    ballast: Vec<u8>,
}

impl Agent for Carrier {
    fn agent_type(&self) -> &'static str {
        "carrier"
    }
    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).unwrap()
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if msg.is("trip") {
            ctx.dispatch_self(self.away);
        }
    }
    fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.host() != self.home {
            ctx.dispatch_self(self.home);
        }
    }
}

/// Fan one payload-heavy message out to `consumers` readers; returns
/// delivered messages per wall-clock second.
pub fn messages_per_sec(consumers: usize) -> f64 {
    fanout_messages_per_sec(consumers, false)
}

/// Same fan-out workload with request tracing enabled: every send mints
/// a root span, every delivery closes one and feeds the latency
/// histograms. Used to report the enabled-path telemetry cost.
pub fn messages_per_sec_traced(consumers: usize) -> f64 {
    fanout_messages_per_sec(consumers, true)
}

fn fanout_messages_per_sec(consumers: usize, traced: bool) -> f64 {
    let mut world = SimWorld::new(11);
    if traced {
        world.enable_telemetry();
    }
    world.registry_mut().register_serde::<Reader>("reader");
    let edge = world.add_host("edge");
    let readers: Vec<_> = (0..consumers)
        .map(|_| {
            world
                .create_agent(edge, Box::new(Reader::default()))
                .unwrap()
        })
        .collect();
    let template = Message::new("quote")
        .with_payload(&quote_sheet(40))
        .expect("quote serializes");
    let t0 = Instant::now();
    for reader in &readers {
        world.send_external(*reader, template.clone()).unwrap();
    }
    world.run_until_idle();
    consumers as f64 / t0.elapsed().as_secs_f64()
}

/// The same payload-heavy fan-out, but with the readers spread across
/// `shards` parallel DES shards (one edge host per shard, consumers
/// assigned round-robin). Every delivery stays shard-local, so this
/// measures how the epoch machinery scales the per-delivery work
/// (payload decode + handler) across cores. Returns delivered messages
/// per wall-clock second; `shards == 1` is the single-threaded baseline
/// (the sharded world degenerates to a plain [`SimWorld`]).
pub fn sharded_messages_per_sec(consumers: usize, shards: usize) -> f64 {
    let mut world = ShardedSimWorld::new(11, shards);
    for k in 0..shards {
        world
            .shard_mut(k)
            .registry_mut()
            .register_serde::<Reader>("reader");
    }
    let edges: Vec<HostId> = (0..shards)
        .map(|k| world.add_host(k, format!("edge-{k}")))
        .collect();
    let readers: Vec<_> = (0..consumers)
        .map(|i| {
            world
                .create_agent(edges[i % shards], Box::new(Reader::default()))
                .unwrap()
        })
        .collect();
    let template = Message::new("quote")
        .with_payload(&quote_sheet(40))
        .expect("quote serializes");
    let t0 = Instant::now();
    for reader in &readers {
        world.send_external(*reader, template.clone()).unwrap();
    }
    world.run_until_idle();
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(
        world.metrics().messages_delivered,
        consumers as u64,
        "every quote must be delivered"
    );
    consumers as f64 / elapsed
}

/// One row of the shard-scaling curve.
#[derive(Debug)]
pub struct ScalingRow {
    /// Shard count.
    pub shards: usize,
    /// Fan-out deliveries per second at this shard count.
    pub messages_per_sec: f64,
    /// Rate relative to the 1-shard baseline.
    pub speedup: f64,
}

/// Measure the fan-out workload at each shard count (first entry should
/// be 1, the baseline each row's speedup is computed against).
pub fn scaling_curve(consumers: usize, shard_counts: &[usize]) -> Vec<ScalingRow> {
    let mut rows: Vec<ScalingRow> = Vec::new();
    for &shards in shard_counts {
        let rate = sharded_messages_per_sec(consumers, shards);
        let baseline = rows.first().map_or(rate, |r| r.messages_per_sec);
        rows.push(ScalingRow {
            shards,
            messages_per_sec: rate,
            speedup: rate / baseline,
        });
    }
    rows
}

/// Render the shard-scaling table.
pub fn scaling_table(consumers: usize, shard_counts: &[usize]) -> String {
    let mut out = format!(
        "[E10] sharded fan-out scaling ({consumers} consumers)\n\
         shards     messages/s   speedup\n"
    );
    for row in scaling_curve(consumers, shard_counts) {
        out.push_str(&format!(
            "{:>6} {:>14.0} {:>8.2}x\n",
            row.shards, row.messages_per_sec, row.speedup
        ));
    }
    out
}

/// Send `agents` carriers (4 KB state each) on a round trip; returns
/// migrations (hops) per wall-clock second.
pub fn migrations_per_sec(agents: usize) -> f64 {
    let mut world = SimWorld::new(12);
    world.registry_mut().register_serde::<Carrier>("carrier");
    let home = world.add_host("home");
    let away = world.add_host("away");
    let carriers: Vec<_> = (0..agents)
        .map(|_| {
            world
                .create_agent(
                    home,
                    Box::new(Carrier {
                        home,
                        away,
                        ballast: vec![7; 4_000],
                    }),
                )
                .unwrap()
        })
        .collect();
    let t0 = Instant::now();
    for carrier in &carriers {
        world.send_external(*carrier, Message::new("trip")).unwrap();
    }
    world.run_until_idle();
    (2 * agents) as f64 / t0.elapsed().as_secs_f64()
}

/// Open and close a session for each of `consumers` users on a full
/// Buyer Agent Server; returns sessions per wall-clock second.
pub fn sessions_per_sec(consumers: usize) -> f64 {
    let mut platform = crate::bench_platform(50, 1, 13);
    let t0 = Instant::now();
    for c in 1..=consumers as u64 {
        platform.login(ConsumerId(c));
        platform.logout(ConsumerId(c));
    }
    consumers as f64 / t0.elapsed().as_secs_f64()
}

/// One measured row of the E9 table.
#[derive(Debug)]
pub struct ThroughputRow {
    /// Scale (consumers / carriers / sessions).
    pub consumers: usize,
    /// Payload-heavy fan-out deliveries per second.
    pub messages_per_sec: f64,
    /// Capsule hops per second.
    pub migrations_per_sec: f64,
    /// Login/logout cycles per second.
    pub sessions_per_sec: f64,
}

/// Measure all three rates at one scale.
pub fn measure(consumers: usize) -> ThroughputRow {
    ThroughputRow {
        consumers,
        messages_per_sec: messages_per_sec(consumers),
        migrations_per_sec: migrations_per_sec(consumers / 10),
        sessions_per_sec: sessions_per_sec(consumers / 10),
    }
}

/// Telemetry cost on the fan-out workload at one scale: returns
/// `(disabled_msgs_per_sec, enabled_msgs_per_sec, overhead_pct)`, where
/// the overhead is how much slower the traced run is than the default
/// untraced run. Each rate is the best of three runs, which keeps the
/// comparison stable against allocator and scheduler noise.
pub fn telemetry_overhead(consumers: usize) -> (f64, f64, f64) {
    let best = |f: &dyn Fn(usize) -> f64| (0..3).map(|_| f(consumers)).fold(0.0_f64, f64::max);
    let disabled = best(&messages_per_sec);
    let enabled = best(&messages_per_sec_traced);
    (disabled, enabled, (disabled / enabled - 1.0) * 100.0)
}

/// Render the E9 table at the given scales.
pub fn table(scales: &[usize]) -> String {
    let mut out = String::from(
        "[E9] platform throughput (wall clock)\n\
         consumers    messages/s  migrations/s   sessions/s\n",
    );
    for &scale in scales {
        let row = measure(scale);
        out.push_str(&format!(
            "{:>9} {:>13.0} {:>13.0} {:>12.0}\n",
            row.consumers, row.messages_per_sec, row.migrations_per_sec, row.sessions_per_sec
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_positive_at_small_scale() {
        let row = measure(50);
        assert!(row.messages_per_sec > 0.0);
        assert!(row.migrations_per_sec > 0.0);
        assert!(row.sessions_per_sec > 0.0);
    }

    #[test]
    fn table_renders_one_row_per_scale() {
        let t = table(&[20]);
        assert!(t.contains("messages/s"));
        assert!(t.lines().count() >= 3);
    }

    #[test]
    fn sharded_fanout_delivers_everything_at_every_shard_count() {
        for shards in [1, 2, 4] {
            let rate = sharded_messages_per_sec(120, shards);
            assert!(rate > 0.0, "{shards}-shard rate must be positive");
        }
    }

    #[test]
    fn scaling_curve_reports_speedup_against_first_row() {
        let rows = scaling_curve(60, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        assert!(rows[1].speedup > 0.0);
    }
}
