//! Shared fixtures for the benchmark suite (experiments E2–E10).
//!
//! Every bench prints its experiment's data series (the "figure" being
//! regenerated) once, then runs Criterion timings on the hot path. The
//! series land in `bench_output.txt` and are transcribed into
//! EXPERIMENTS.md.

pub mod throughput;

use abcrm_core::profile::ConsumerId;
use abcrm_core::server::Platform;
use ecp::protocol::Listing;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::catalog::{generate_listings, split_across_markets, CatalogSpec};
use workload::population::{Population, PopulationSpec};
use workload::taxonomy::{Taxonomy, TaxonomySpec};

/// Standard synthetic catalog for platform benches.
pub fn bench_listings(items: usize, seed: u64) -> Vec<Listing> {
    let taxonomy = Taxonomy::generate(TaxonomySpec::default());
    let mut rng = StdRng::seed_from_u64(seed);
    generate_listings(
        &taxonomy,
        &CatalogSpec {
            items,
            ..CatalogSpec::default()
        },
        1,
        &mut rng,
    )
}

/// Platform with `markets` marketplaces sharing a split of `items`
/// listings, plus a logged-in consumer 1.
pub fn bench_platform(items: usize, markets: usize, seed: u64) -> Platform {
    let listings = bench_listings(items, seed);
    let mut platform = Platform::builder(seed)
        .marketplaces(split_across_markets(listings, markets))
        .build();
    platform.login(ConsumerId(1));
    platform
}

/// Population over the given listings.
pub fn bench_population(listings: &[Listing], consumers: usize, seed: u64) -> Population {
    let mut rng = StdRng::seed_from_u64(seed);
    Population::generate(
        &PopulationSpec {
            consumers,
            clusters: 3,
            ..PopulationSpec::default()
        },
        listings,
        &mut rng,
    )
}

/// A keyword guaranteed to match at least one listing.
pub fn probe_keyword(listings: &[Listing]) -> String {
    listings[0].item.name.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let listings = bench_listings(10, 1);
        assert_eq!(listings.len(), 10);
        let platform = bench_platform(10, 2, 1);
        assert_eq!(platform.markets().len(), 2);
        let population = bench_population(&listings, 5, 1);
        assert_eq!(population.consumers.len(), 5);
        assert!(!probe_keyword(&listings).is_empty());
    }
}
