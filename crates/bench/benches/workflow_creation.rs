//! E2 — Fig 4.1: the mechanism-creation workflow.
//!
//! Series printed: simulated time to complete steps 1–6 vs number of
//! marketplaces in the domain. Criterion times the full platform build
//! (coordinator round trip + BSMA dispatch + PA/HttpA creation + DB
//! init).

use abcrm_core::server::Platform;
use abcrm_core::workflow::{self, FIG_CREATION};
use bench::bench_listings;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::catalog::split_across_markets;

fn creation_series() {
    println!("\n[E2] Fig 4.1 creation workflow: sim-time to ready vs marketplaces");
    println!(
        "{:>13} {:>16} {:>10}",
        "marketplaces", "sim-time (ms)", "steps"
    );
    for markets in [1usize, 2, 4, 8] {
        let listings = bench_listings(40, 11);
        let platform = Platform::builder(5)
            .marketplaces(split_across_markets(listings, markets))
            .build();
        workflow::validate(platform.world().trace(), FIG_CREATION).expect("fig 4.1");
        let times = workflow::step_times(platform.world().trace(), FIG_CREATION);
        let t1 = times[1].expect("step 1");
        let t6 = times[6].expect("step 6");
        println!(
            "{:>13} {:>16.3} {:>10}",
            markets,
            t6.since(t1).as_millis_f64(),
            workflow::steps_of(platform.world().trace(), FIG_CREATION).len()
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    creation_series();
    let mut group = c.benchmark_group("E2_creation");
    group.sample_size(10);
    for markets in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("build_platform", markets),
            &markets,
            |b, &markets| {
                b.iter(|| {
                    let listings = bench_listings(40, 11);
                    Platform::builder(5)
                        .marketplaces(split_across_markets(listings, markets))
                        .build()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
