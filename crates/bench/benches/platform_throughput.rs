//! E9 — platform throughput: the message/migration fast path under load.
//!
//! Series printed: wall-clock messages/sec (payload-heavy fan-out),
//! migrations/sec (4 KB capsule hops) and sessions/sec (login/logout
//! cycles on a full Buyer Agent Server) at 1k and 10k consumers. The
//! numbers are recorded before/after the zero-copy payload rework in
//! `BENCH_platform.json`.
//!
//! Criterion times the constituent hot paths: heavy fan-out delivery,
//! multi-hop relay forwarding (per-hop wire sizing), migration round
//! trips and session churn.
//!
//! `PLATFORM_BENCH_QUICK=1` shrinks the series scales for CI smoke runs.

use agentsim::agent::{Agent, Ctx};
use agentsim::ids::AgentId;
use agentsim::message::Message;
use agentsim::sim::SimWorld;
use bench::throughput::{self, quote_sheet};
use criterion::{criterion_group, criterion_main, Criterion};
use serde::{Deserialize, Serialize};

/// Forwards each "hop" message to the next agent in the chain; the tail
/// just counts. Exercises per-hop wire sizing of an unchanged payload.
#[derive(Debug, Serialize, Deserialize)]
struct Relay {
    next: Option<AgentId>,
    delivered: u64,
}

impl Agent for Relay {
    fn agent_type(&self) -> &'static str {
        "relay"
    }
    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).unwrap()
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if msg.is("hop") {
            match self.next {
                Some(next) => ctx.send(next, msg),
                None => self.delivered += 1,
            }
        }
    }
}

fn throughput_series() {
    let quick = std::env::var("PLATFORM_BENCH_QUICK").is_ok();
    let scales: &[usize] = if quick { &[200] } else { &[1_000, 10_000] };
    println!("{}", throughput::table(scales));

    // Telemetry cost on the fan-out path: the default (disabled) rate is
    // what the E9 series above measures; the traced rate shows what full
    // request tracing costs when switched on.
    let scale = if quick { 1_000 } else { 10_000 };
    let (disabled, enabled, overhead_pct) = throughput::telemetry_overhead(scale);
    println!(
        "telemetry fan-out @{scale}: disabled {disabled:.0} msg/s, traced {enabled:.0} msg/s \
         ({overhead_pct:.1}% tracing overhead)\n"
    );

    // E10: the same fan-out partitioned across parallel DES shards (one
    // worker thread per shard). Recorded as the platform_throughput
    // scaling curve in BENCH_platform.json.
    let shard_scale = if quick { 1_000 } else { 10_000 };
    println!("{}", throughput::scaling_table(shard_scale, &[1, 2, 4, 8]));
}

fn bench(c: &mut Criterion) {
    throughput_series();

    let mut group = c.benchmark_group("E9_throughput");
    group.bench_function("fanout_100_heavy", |b| {
        let mut world = SimWorld::new(21);
        #[derive(Debug, Default, Serialize, Deserialize)]
        struct Sink;
        impl Agent for Sink {
            fn agent_type(&self) -> &'static str {
                "sink"
            }
            fn snapshot(&self) -> serde_json::Value {
                serde_json::json!(null)
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
        }
        world.registry_mut().register_serde::<Sink>("sink");
        let host = world.add_host("edge");
        let sinks: Vec<_> = (0..100)
            .map(|_| world.create_agent(host, Box::new(Sink)).unwrap())
            .collect();
        let template = Message::new("quote")
            .with_payload(&quote_sheet(40))
            .unwrap();
        b.iter(|| {
            for sink in &sinks {
                world.send_external(*sink, template.clone()).unwrap();
            }
            world.run_until_idle();
        });
    });
    group.bench_function("relay_chain_16_hops_heavy", |b| {
        let mut world = SimWorld::new(22);
        world.registry_mut().register_serde::<Relay>("relay");
        let host = world.add_host("h");
        let mut next = None;
        let mut head = None;
        for _ in 0..16 {
            head = Some(
                world
                    .create_agent(host, Box::new(Relay { next, delivered: 0 }))
                    .unwrap(),
            );
            next = head;
        }
        let head = head.unwrap();
        let template = Message::new("hop").with_payload(&quote_sheet(40)).unwrap();
        b.iter(|| {
            world.send_external(head, template.clone()).unwrap();
            world.run_until_idle();
        });
    });
    group.bench_function("migrations_10_round_trips_4kb", |b| {
        b.iter(|| throughput::migrations_per_sec(10));
    });
    group.sample_size(10);
    group.bench_function("sessions_20_cycles", |b| {
        b.iter(|| throughput::sessions_per_sec(20));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
