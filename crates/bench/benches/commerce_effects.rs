//! E9 — the §2.3 commerce effects: browsers→buyers, cross-sell, loyalty.
//!
//! Series printed:
//! * one marketplace-day with vs without recommendations (conversion,
//!   order size, spend, recommendation-attributed purchases);
//! * a loyalty simulation: consumers return next round with probability
//!   `base + boost · satisfaction`, so better recommendations retain
//!   more consumers over time.
//!
//! Criterion times one full shopping session.

use abcrm_core::server::Platform;
use bench::{bench_listings, bench_population};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workload::catalog::split_across_markets;
use workload::population::Population;
use workload::session::{run_population_sessions, run_session, SessionConfig};

fn day_comparison() {
    println!("\n[E9] marketplace day: with vs without recommendations");
    println!(
        "{:>8} {:>11} {:>11} {:>10} {:>10} {:>13} {:>13}",
        "recs", "conversion", "order size", "bought", "via recs", "spend", "satisfaction"
    );
    let listings = bench_listings(60, 91);
    let population = bench_population(&listings, 10, 92);
    for use_recs in [false, true] {
        let mut platform = Platform::builder(93)
            .marketplaces(split_across_markets(listings.clone(), 2))
            .build();
        let mut rng = StdRng::seed_from_u64(94);
        let config = SessionConfig {
            use_recommendations: use_recs,
            ..SessionConfig::default()
        };
        let report = run_population_sessions(&mut platform, &population, &config, &mut rng);
        println!(
            "{:>8} {:>11.2} {:>11.2} {:>10} {:>10} {:>13} {:>13.2}",
            if use_recs { "on" } else { "off" },
            report.conversion_rate(),
            report.average_order_size(),
            report.purchases,
            report.recommended_purchases,
            report.spent.to_string(),
            report.mean_satisfaction
        );
    }
    println!();
}

fn loyalty_simulation() {
    println!("[E9] loyalty: active consumers per round (return prob = 0.2 + 0.75*satisfaction)");
    println!("{:>6} {:>14} {:>14}", "round", "with recs", "without recs");
    let listings = bench_listings(60, 95);
    let population = bench_population(&listings, 12, 96);
    let mut actives: Vec<Vec<usize>> = Vec::new();
    for use_recs in [true, false] {
        let mut platform = Platform::builder(97)
            .marketplaces(split_across_markets(listings.clone(), 2))
            .build();
        let mut rng = StdRng::seed_from_u64(98);
        let config = SessionConfig {
            queries: 2,
            use_recommendations: use_recs,
            ..SessionConfig::default()
        };
        let mut active: Vec<bool> = vec![true; population.consumers.len()];
        let mut counts = Vec::new();
        for _round in 0..5 {
            counts.push(active.iter().filter(|a| **a).count());
            let mut next = active.clone();
            for (i, truth) in population.consumers.iter().enumerate() {
                if !active[i] {
                    continue;
                }
                let outcome = run_session(&mut platform, truth, &config, &mut rng);
                let p_return = 0.2 + 0.75 * outcome.satisfaction();
                next[i] = rng.gen::<f64>() < p_return;
            }
            active = next;
        }
        actives.push(counts);
    }
    for (round, (with_recs, without)) in actives[0].iter().zip(actives[1].iter()).enumerate() {
        println!("{:>6} {:>14} {:>14}", round + 1, with_recs, without);
    }
    println!("(higher satisfaction with recommendations retains more consumers)\n");
}

fn bench(c: &mut Criterion) {
    day_comparison();
    loyalty_simulation();
    let listings = bench_listings(60, 99);
    let population = bench_population(&listings, 4, 100);
    let mut group = c.benchmark_group("E9_sessions");
    group.sample_size(10);
    group.bench_function("full_shopping_session", |b| {
        let mut platform = Platform::builder(101)
            .marketplaces(split_across_markets(listings.clone(), 2))
            .build();
        let mut rng = StdRng::seed_from_u64(102);
        let config = SessionConfig::default();
        let single = Population {
            consumers: vec![population.consumers[0].clone()],
        };
        b.iter(|| run_session(&mut platform, &single.consumers[0], &config, &mut rng));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
