//! E8 — platform microbenchmarks: the §1 mobile-agent claims.
//!
//! Series printed:
//! * migration round-trip sim-time vs agent payload size, LAN and WAN;
//! * mobile-agent vs RPC-style chatter under WAN latency ("overcome
//!   network latency", "reduce the network load");
//! * deactivation memory accounting ("BRA stored to mechanism storage").
//!
//! Criterion times: local/remote message delivery throughput in the DES,
//! capsule snapshot/rehydrate, deactivate/activate cycles, and the
//! threaded runtime's real message throughput.

use agentsim::agent::{Agent, Ctx};
use agentsim::clock::SimDuration;
use agentsim::ids::{AgentId, HostId};
use agentsim::message::Message;
use agentsim::net::{LinkSpec, Topology};
use agentsim::sim::SimWorld;
use agentsim::thread_net::ThreadWorldBuilder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Agent with a configurable payload that hops to a host and back.
#[derive(Debug, Serialize, Deserialize)]
struct Luggage {
    home: HostId,
    away: HostId,
    ballast: Vec<u8>,
    trips: u32,
}

impl Agent for Luggage {
    fn agent_type(&self) -> &'static str {
        "luggage"
    }
    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).unwrap()
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if msg.is("trip") {
            ctx.dispatch_self(self.away);
        }
    }
    fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.host() == self.home {
            self.trips += 1;
            ctx.note(format!("trip {} done", self.trips));
        } else {
            ctx.dispatch_self(self.home);
        }
    }
}

/// RPC-style requester: N sequential request/response round trips.
#[derive(Debug, Serialize, Deserialize)]
struct Requester {
    peer: AgentId,
    remaining: u32,
}

impl Agent for Requester {
    fn agent_type(&self) -> &'static str {
        "requester"
    }
    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).unwrap()
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        match msg.kind.as_str() {
            "start" | "pong" => {
                if msg.is("pong") {
                    self.remaining = self.remaining.saturating_sub(1);
                }
                if self.remaining > 0 {
                    ctx.send(self.peer, Message::new("ping"));
                } else {
                    ctx.note("rpc chatter done");
                }
            }
            _ => {}
        }
    }
}

/// Echo service (a marketplace stand-in).
#[derive(Debug, Serialize, Deserialize)]
struct Echo;

impl Agent for Echo {
    fn agent_type(&self) -> &'static str {
        "echo"
    }
    fn snapshot(&self) -> serde_json::Value {
        serde_json::json!(null)
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if msg.is("ping") {
            ctx.reply(&msg, Message::new("pong"));
        }
    }
}

/// Touring agent: migrates to the service, N local pings, returns.
#[derive(Debug, Serialize, Deserialize)]
struct Tourist {
    home: HostId,
    away: HostId,
    peer: AgentId,
    remaining: u32,
}

impl Agent for Tourist {
    fn agent_type(&self) -> &'static str {
        "tourist"
    }
    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).unwrap()
    }
    fn on_creation(&mut self, ctx: &mut Ctx<'_>) {
        ctx.dispatch_self(self.away);
    }
    fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.host() == self.home {
            ctx.note("agent chatter done");
        } else {
            ctx.send(self.peer, Message::new("ping"));
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        if msg.is("pong") {
            self.remaining = self.remaining.saturating_sub(1);
            if self.remaining > 0 {
                ctx.send(self.peer, Message::new("ping"));
            } else {
                ctx.dispatch_self(self.home);
            }
        }
    }
}

fn migration_series() {
    println!("\n[E8] migration round trip sim-time vs payload (LAN vs WAN)");
    println!(
        "{:>12} {:>14} {:>14}",
        "payload (B)", "LAN (ms)", "WAN (ms)"
    );
    for payload in [0usize, 1_000, 10_000, 100_000] {
        let mut row = Vec::new();
        for link in [LinkSpec::lan(), LinkSpec::wan()] {
            let mut world = SimWorld::with_topology(8, Topology::uniform(link));
            world.registry_mut().register_serde::<Luggage>("luggage");
            let home = world.add_host("home");
            let away = world.add_host("away");
            let agent = world
                .create_agent(
                    home,
                    Box::new(Luggage {
                        home,
                        away,
                        ballast: vec![7; payload],
                        trips: 0,
                    }),
                )
                .unwrap();
            world.send_external(agent, Message::new("trip")).unwrap();
            let t0 = world.now();
            world.run_until_idle();
            row.push(world.now().since(t0).as_millis_f64());
        }
        println!("{:>12} {:>14.3} {:>14.3}", payload, row[0], row[1]);
    }
    println!();
}

fn chatter_series() {
    println!("[E8] N-interaction conversation under WAN latency: RPC vs mobile agent");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "N", "rpc sim-ms", "agent sim-ms", "rpc B", "agent B"
    );
    for n in [1u32, 5, 20, 100] {
        // RPC
        let mut world = SimWorld::with_topology(9, Topology::uniform(LinkSpec::wan()));
        world
            .registry_mut()
            .register_serde::<Requester>("requester");
        world.registry_mut().register_serde::<Echo>("echo");
        let client_host = world.add_host("client");
        let server_host = world.add_host("server");
        let echo = world.create_agent(server_host, Box::new(Echo)).unwrap();
        let requester = world
            .create_agent(
                client_host,
                Box::new(Requester {
                    peer: echo,
                    remaining: n,
                }),
            )
            .unwrap();
        world
            .send_external(requester, Message::new("start"))
            .unwrap();
        let t0 = world.now();
        world.run_until_idle();
        let rpc_time = world.now().since(t0).as_millis_f64();
        let rpc_bytes = world.metrics().total_network_bytes();

        // mobile agent
        let mut world = SimWorld::with_topology(9, Topology::uniform(LinkSpec::wan()));
        world.registry_mut().register_serde::<Tourist>("tourist");
        world.registry_mut().register_serde::<Echo>("echo");
        let client_host = world.add_host("client");
        let server_host = world.add_host("server");
        let echo = world.create_agent(server_host, Box::new(Echo)).unwrap();
        let t0 = world.now();
        world
            .create_agent(
                client_host,
                Box::new(Tourist {
                    home: client_host,
                    away: server_host,
                    peer: echo,
                    remaining: n,
                }),
            )
            .unwrap();
        world.run_until_idle();
        let agent_time = world.now().since(t0).as_millis_f64();
        let agent_bytes = world.metrics().total_network_bytes();
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>14} {:>14}",
            n, rpc_time, agent_time, rpc_bytes, agent_bytes
        );
    }
    println!("(the crossover is where migrating once beats paying WAN latency per call)\n");
}

fn deactivation_series() {
    println!("[E8] deactivation frees memory: resident agents vs stored bytes");
    println!("{:>10} {:>14} {:>14}", "parked", "active", "stored B");
    let mut world = SimWorld::new(10);
    world.registry_mut().register_serde::<Luggage>("luggage");
    let host = world.add_host("buyer-server");
    let away = world.add_host("away");
    let mut agents = Vec::new();
    for _ in 0..64 {
        agents.push(
            world
                .create_agent(
                    host,
                    Box::new(Luggage {
                        home: host,
                        away,
                        ballast: vec![7; 2_000],
                        trips: 0,
                    }),
                )
                .unwrap(),
        );
    }
    for (i, agent) in agents.iter().enumerate() {
        if i % 16 == 0 {
            println!(
                "{:>10} {:>14} {:>14}",
                i,
                world.active_count(host),
                world.stored_bytes(host)
            );
        }
        world.deactivate_agent(*agent).unwrap();
    }
    println!(
        "{:>10} {:>14} {:>14}\n",
        agents.len(),
        world.active_count(host),
        world.stored_bytes(host)
    );
}

fn bench(c: &mut Criterion) {
    migration_series();
    chatter_series();
    deactivation_series();

    let mut group = c.benchmark_group("E8_platform");
    group.bench_function("des_local_message", |b| {
        let mut world = SimWorld::new(1);
        world.registry_mut().register_serde::<Echo>("echo");
        let host = world.add_host("h");
        let echo = world.create_agent(host, Box::new(Echo)).unwrap();
        b.iter(|| {
            world.send_external(echo, Message::new("noop")).unwrap();
            world.run_until_idle();
        });
    });
    group.bench_function("des_remote_ping_pong", |b| {
        let mut world = SimWorld::new(2);
        world
            .registry_mut()
            .register_serde::<Requester>("requester");
        world.registry_mut().register_serde::<Echo>("echo");
        let ch = world.add_host("c");
        let sh = world.add_host("s");
        let echo = world.create_agent(sh, Box::new(Echo)).unwrap();
        let req = world
            .create_agent(
                ch,
                Box::new(Requester {
                    peer: echo,
                    remaining: u32::MAX,
                }),
            )
            .unwrap();
        world.send_external(req, Message::new("start")).unwrap();
        b.iter(|| {
            for _ in 0..100 {
                world.step();
            }
        });
    });
    group.bench_function("migration_round_trip_1kb", |b| {
        let mut world = SimWorld::new(3);
        world.registry_mut().register_serde::<Luggage>("luggage");
        let home = world.add_host("home");
        let away = world.add_host("away");
        let agent = world
            .create_agent(
                home,
                Box::new(Luggage {
                    home,
                    away,
                    ballast: vec![7; 1_000],
                    trips: 0,
                }),
            )
            .unwrap();
        b.iter(|| {
            world.send_external(agent, Message::new("trip")).unwrap();
            world.run_until_idle();
        });
    });
    group.bench_function("deactivate_activate_cycle_2kb", |b| {
        let mut world = SimWorld::new(4);
        world.registry_mut().register_serde::<Luggage>("luggage");
        let host = world.add_host("h");
        let away = world.add_host("a");
        let agent = world
            .create_agent(
                host,
                Box::new(Luggage {
                    home: host,
                    away,
                    ballast: vec![7; 2_000],
                    trips: 0,
                }),
            )
            .unwrap();
        b.iter(|| {
            world.deactivate_agent(agent).unwrap();
            world.activate_agent(agent).unwrap();
            world.run_until_idle();
        });
    });
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("thread_world_messages", 1000),
        &1000u32,
        |b, &n| {
            b.iter(|| {
                let mut builder = ThreadWorldBuilder::new(5);
                builder.register_serde::<Echo>("echo");
                let h = builder.add_host("h");
                let world = builder.start();
                let echo = world.create_agent(h, Box::new(Echo)).unwrap();
                for _ in 0..n {
                    world.send_external(echo, Message::new("noop")).unwrap();
                }
                assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
                world.shutdown()
            });
        },
    );
    group.finish();
    let _ = SimDuration::ZERO; // keep the import exercised on all paths
}

criterion_group!(benches, bench);
criterion_main!(benches);
