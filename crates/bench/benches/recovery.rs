//! E14 — crash recovery cost vs WAL size, with and without checkpoints.
//!
//! The series drives a durable Buyer Agent Server through growing
//! workloads (queries with a buy sprinkled in every eighth task, so the
//! log mixes capsule journals, profile deltas and two-phase purchase
//! records), crashes the host, and wall-times the `restart_host`
//! recovery pass. Each workload size runs twice: `checkpoint_every: 0`
//! (the WAL grows without bound) and `checkpoint_every: 32` (snapshot +
//! truncate), demonstrating that checkpointing bounds replay cost while
//! the un-checkpointed replay grows linearly with the workload.
//!
//! Criterion times the pure replay function (`DurableStore::replay_bytes`)
//! on synthetic logs of 1k and 10k records, plus the checkpointed
//! equivalent (fat snapshot + short log) of the 10k workload.
//!
//! `RECOVERY_BENCH_QUICK=1` shrinks the series for CI smoke runs.

use abcrm_core::agents::msg::{BuyMode, ConsumerTask, ResponseBody};
use abcrm_core::profile::ConsumerId;
use abcrm_core::server::{listing, Platform};
use agentsim::clock::SimDuration;
use agentsim::durable::{DurabilityConfig, DurableStore};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn quick() -> bool {
    std::env::var("RECOVERY_BENCH_QUICK").is_ok()
}

fn build(seed: u64, checkpoint_every: usize) -> Platform {
    Platform::builder(seed)
        .marketplaces(vec![vec![
            listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
            listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
        ]])
        .mba_timeout_us(2_000_000)
        .durability(DurabilityConfig {
            checkpoint_every,
            sync_every: 1,
        })
        .build()
}

/// Drive `tasks` workflow tasks (a buy every eighth, queries otherwise)
/// and require every one of them to be answered.
fn drive(p: &mut Platform, consumers: u64, tasks: u64) {
    for i in 0..tasks {
        let consumer = ConsumerId(1 + i % consumers);
        if i % 8 == 7 {
            p.submit_task(
                consumer,
                ConsumerTask::Buy {
                    item: ecp::merchandise::ItemId(1 + (i % 2)),
                    market: p.markets()[0],
                    mode: BuyMode::Direct,
                },
            );
        } else {
            p.submit_task(
                consumer,
                ConsumerTask::Query {
                    keywords: vec!["rust".into()],
                    category: None,
                    max_results: 5,
                },
            );
        }
        let wave = p.run_and_drain();
        assert!(
            wave.iter()
                .all(|(_, r)| !matches!(r, ResponseBody::Error(_))),
            "workload task {i} failed: {wave:?}"
        );
    }
}

struct RunReport {
    wal_replayed: u64,
    checkpoints: u64,
    agents_recovered: u64,
    recovery_us: u64,
}

fn crash_and_recover(seed: u64, tasks: u64, checkpoint_every: usize) -> RunReport {
    let consumers = 4;
    let mut p = build(seed, checkpoint_every);
    for c in 1..=consumers {
        p.login(ConsumerId(c));
    }
    drive(&mut p, consumers, tasks);
    let host = p.buyer_host();
    p.world_mut().crash_host(host).unwrap();
    p.world_mut().run_for(SimDuration::from_micros(100));
    let started = Instant::now();
    p.world_mut().restart_host(host).unwrap();
    let recovery_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    p.world_mut().run_until_idle();
    // the recovered platform still serves
    let replies = p.query(ConsumerId(1), &["rust"], 5);
    assert!(
        replies
            .iter()
            .any(|r| matches!(r, ResponseBody::Recommendations { .. })),
        "recovered platform must serve: {replies:?}"
    );
    let m = p.world().metrics();
    RunReport {
        wal_replayed: m.wal_records_replayed,
        checkpoints: m.checkpoints,
        agents_recovered: m.agents_recovered,
        recovery_us,
    }
}

fn recovery_series() {
    let sizes: &[u64] = if quick() { &[8, 32] } else { &[8, 32, 128] };
    println!("E14 recovery: crash + restart after growing workloads, checkpoint_every 0 vs 32");
    let mut rows = Vec::new();
    for &tasks in sizes {
        for checkpoint_every in [0usize, 32] {
            let r = crash_and_recover(42, tasks, checkpoint_every);
            println!(
                "  tasks {tasks:>4}  checkpoint_every {checkpoint_every:>2}  \
                 replayed {:>5} records  checkpoints {:>3}  agents {:>2}  recovery {:>6}us",
                r.wal_replayed, r.checkpoints, r.agents_recovered, r.recovery_us
            );
            rows.push(serde_json::json!({
                "tasks": tasks,
                "checkpoint_every": checkpoint_every,
                "wal_records_replayed": r.wal_replayed,
                "checkpoints": r.checkpoints,
                "agents_recovered": r.agents_recovered,
                "recovery_wall_us": r.recovery_us,
            }));
        }
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::json!({ "series": rows })).unwrap()
    );
}

/// A synthetic store: `records` capsule/delta/purchase records over
/// `agents` agents, checkpointed every `checkpoint_every` records.
fn synthetic_store(records: u64, checkpoint_every: usize) -> DurableStore {
    let mut store = DurableStore::new(DurabilityConfig {
        checkpoint_every: 0,
        sync_every: 1,
    });
    let agents = 16;
    for i in 0..records {
        let agent = i % agents;
        match i % 5 {
            0 => store
                .put_capsule(
                    agent,
                    serde_json::json!({"id": agent, "state": {"seq": i, "interest": i as f64 / 7.0}}),
                    i % 2 == 0,
                )
                .unwrap(),
            1 => store
                .log_delta(agent, serde_json::json!({"term": format!("t{}", i % 50), "w": 0.3}))
                .unwrap(),
            // intent ids recycle like live BRA sequence numbers do, so
            // the intents table stays bounded the way a real host's is
            2 => store.log_intent(i % 64, serde_json::json!({"item": i % 4})).unwrap(),
            3 => store.log_commit((i - 1) % 64, serde_json::json!({"price": 30})).unwrap(),
            _ => store
                .put_capsule(agent, serde_json::json!({"id": agent, "state": {"seq": i}}), true)
                .unwrap(),
        }
        if checkpoint_every > 0 && (i + 1) % checkpoint_every as u64 == 0 {
            // the runtime hands checkpoint() the live capsules of every
            // delta-policy agent, absorbing their logged deltas
            let fresh = (0..agents)
                .map(|a| (a, serde_json::json!({"id": a, "state": {"seq": i}}), true))
                .collect();
            store.checkpoint(fresh).expect("in-memory checkpoint");
        }
    }
    store
}

fn bench(c: &mut Criterion) {
    recovery_series();

    let mut group = c.benchmark_group("E14_recovery");
    group.sample_size(20);
    for records in [1_000u64, 10_000] {
        let store = synthetic_store(records, 0);
        let (snapshot, wal) = (store.snapshot_bytes().to_vec(), store.wal_bytes());
        group.bench_function(format!("replay_{records}_records_no_checkpoint"), |b| {
            b.iter(|| {
                DurableStore::replay_bytes(&snapshot, &wal)
                    .unwrap()
                    .replayed
            });
        });
    }
    // same 10k-record workload, but checkpointed every 256: the replay
    // cost is the snapshot parse plus a short log tail
    let store = synthetic_store(10_000, 256);
    let (snapshot, wal) = (store.snapshot_bytes().to_vec(), store.wal_bytes());
    group.bench_function("replay_10000_records_checkpointed_256", |b| {
        b.iter(|| {
            DurableStore::replay_bytes(&snapshot, &wal)
                .unwrap()
                .replayed
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
