//! Query-serving hot path: indexed store vs the reference full scan.
//!
//! Builds synthetic stores at 1k / 10k / 100k consumers (50 taste
//! clusters, each with its own slice of the catalog, so posting-list
//! pruning has realistic selectivity) and times:
//!
//! * `HybridRecommender::recommend` (indexed) vs `recommend_naive`
//!   (full profile scan) — the acceptance metric;
//! * `RecommendStore::nearest_neighbours` vs the free-function scan;
//! * `ItemCfRecommender::recommend` (memoized cosines) vs
//!   `recommend_naive`.
//!
//! Naive variants are skipped at 100k consumers — a single full-scan
//! query at that size takes longer than the whole indexed series.

use abcrm_core::learning::BehaviorKind;
use abcrm_core::profile::ConsumerId;
use abcrm_core::recommend::{HybridRecommender, QueryContext, Recommender};
use abcrm_core::store::RecommendStore;
use abcrm_core::ItemCfRecommender;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecp::merchandise::{CategoryPath, ItemId, Merchandise, Money};
use ecp::terms::TermVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CLUSTERS: u64 = 50;
const ITEMS_PER_CLUSTER: u64 = 20;
const EVENTS_PER_USER: u32 = 6;

fn merch(cluster: u64, slot: u64) -> Merchandise {
    let id = cluster * ITEMS_PER_CLUSTER + slot + 1;
    Merchandise {
        id: ItemId(id),
        name: format!("c{cluster}i{slot}"),
        category: CategoryPath::new(format!("cat{}", cluster % 10), format!("sub{cluster}")),
        terms: TermVector::from_pairs([
            (format!("c{cluster}t{}", slot % 8), 1.0),
            (format!("c{cluster}common"), 0.4),
        ]),
        list_price: Money::from_units(10 + id % 50),
        seller: 1,
    }
}

fn build_store(users: u64) -> RecommendStore {
    let mut store = RecommendStore::new();
    for cluster in 0..CLUSTERS {
        for slot in 0..ITEMS_PER_CLUSTER {
            store.upsert_item(merch(cluster, slot));
        }
    }
    let mut rng = StdRng::seed_from_u64(42);
    let kinds = [
        BehaviorKind::Browse,
        BehaviorKind::Query,
        BehaviorKind::Purchase,
    ];
    for user in 1..=users {
        let cluster = user % CLUSTERS;
        for _ in 0..EVENTS_PER_USER {
            let slot = rng.gen_range(0..ITEMS_PER_CLUSTER);
            let item = ItemId(cluster * ITEMS_PER_CLUSTER + slot + 1);
            let kind = kinds[rng.gen_range(0..kinds.len())];
            store.record_event(ConsumerId(user), item, kind);
        }
    }
    store
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_hot_path");
    group.sample_size(10);
    let hybrid = HybridRecommender::default();
    let itemcf = ItemCfRecommender::default();
    let ctx = QueryContext::default();
    let probe = ConsumerId(1);

    for users in [1_000u64, 10_000, 100_000] {
        let store = build_store(users);
        let cfg = hybrid.similarity;
        group.bench_with_input(BenchmarkId::new("hybrid_indexed", users), &store, |b, s| {
            b.iter(|| hybrid.recommend(s, probe, &ctx, 10));
        });
        group.bench_with_input(BenchmarkId::new("nn_indexed", users), &store, |b, s| {
            b.iter(|| s.nearest_neighbours(probe, &cfg, 10));
        });
        group.bench_with_input(BenchmarkId::new("itemcf_cached", users), &store, |b, s| {
            b.iter(|| itemcf.recommend(s, probe, &ctx, 10));
        });
        if users <= 10_000 {
            group.bench_with_input(BenchmarkId::new("hybrid_naive", users), &store, |b, s| {
                b.iter(|| hybrid.recommend_naive(s, probe, &ctx, 10));
            });
            group.bench_with_input(BenchmarkId::new("nn_naive", users), &store, |b, s| {
                b.iter(|| s.nearest_neighbours_naive(probe, &cfg, 10));
            });
            group.bench_with_input(BenchmarkId::new("itemcf_naive", users), &store, |b, s| {
                b.iter(|| itemcf.recommend_naive(s, probe, &ctx, 10));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
