//! Query-serving hot path: indexed store vs the reference full scan,
//! and the ANN tier vs the exact posting-list scan along a users axis.
//!
//! **Micro section** — synthetic stores at 1k / 10k / 100k consumers
//! (50 taste clusters, each with its own slice of the catalog, so
//! posting-list pruning has realistic selectivity), timing:
//!
//! * `HybridRecommender::recommend` (indexed) vs `recommend_naive`
//!   (full profile scan) — the acceptance metric;
//! * `RecommendStore::nearest_neighbours` vs the free-function scan;
//! * `ItemCfRecommender::recommend` (memoized cosines) vs
//!   `recommend_naive`.
//!
//! Naive variants are skipped at 100k consumers — a single full-scan
//! query at that size takes longer than the whole indexed series.
//!
//! **Scaling section** — stores populated from a streaming
//! [`workload::PopulationStream`] (resident generator state stays
//! O(clusters), so the builder never holds a million ground truths),
//! timing exact vs ANN `nearest_neighbours` at 10^4 / 10^5 consumers —
//! plus 10^6 when `QUERY_BENCH_FULL=1` — and printing measured
//! recall@10 per size (the numbers recorded in `BENCH_query.json`).
//!
//! **Allocation gate** — the binary runs under a counting allocator and
//! asserts that a warm `ProfileIndex::candidates_into` performs zero
//! allocations (the reusable-scratch contract). Pass `--assert-no-alloc`
//! to run only this gate.

use abcrm_core::learning::BehaviorKind;
use abcrm_core::profile::ConsumerId;
use abcrm_core::recommend::{HybridRecommender, QueryContext, Recommender};
use abcrm_core::similarity::SimilarityConfig;
use abcrm_core::store::RecommendStore;
use abcrm_core::{AnnConfig, ItemCfRecommender, ProfileIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecp::merchandise::{CategoryPath, ItemId, Merchandise, Money};
use ecp::terms::TermVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use workload::taxonomy::{Taxonomy, TaxonomySpec};
use workload::{generate_listings, CatalogSpec, PopulationSpec, PopulationStream};

// --- counting allocator (the no-alloc gate) ----------------------------

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Warm `candidates_into` must be allocation-free: after one sizing
/// pass, a thousand repeats on the reused scratch buffer may not touch
/// the allocator at all.
fn assert_candidates_no_alloc(store: &RecommendStore) {
    let index = ProfileIndex::rebuild(store.profiles().map(|(c, p)| (c.0, p)));
    let target = index
        .flat(1)
        .expect("probe consumer indexed")
        .vector
        .clone();
    let mut scratch = Vec::new();
    index.candidates_into(&target, &mut scratch); // size the buffer once
    assert!(!scratch.is_empty(), "probe consumer has candidates");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        index.candidates_into(&target, &mut scratch);
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "warm candidates_into allocated {allocs} times over 1000 queries"
    );
    println!("no-alloc gate: 1000 warm candidates_into calls, 0 allocations");
}

// --- micro section: synthetic clustered store --------------------------

const CLUSTERS: u64 = 50;
const ITEMS_PER_CLUSTER: u64 = 20;
const EVENTS_PER_USER: u32 = 6;

fn merch(cluster: u64, slot: u64) -> Merchandise {
    let id = cluster * ITEMS_PER_CLUSTER + slot + 1;
    Merchandise {
        id: ItemId(id),
        name: format!("c{cluster}i{slot}"),
        category: CategoryPath::new(format!("cat{}", cluster % 10), format!("sub{cluster}")),
        terms: TermVector::from_pairs([
            (format!("c{cluster}t{}", slot % 8), 1.0),
            (format!("c{cluster}common"), 0.4),
        ]),
        list_price: Money::from_units(10 + id % 50),
        seller: 1,
    }
}

fn build_store(users: u64) -> RecommendStore {
    let mut store = RecommendStore::new();
    for cluster in 0..CLUSTERS {
        for slot in 0..ITEMS_PER_CLUSTER {
            store.upsert_item(merch(cluster, slot));
        }
    }
    let mut rng = StdRng::seed_from_u64(42);
    let kinds = [
        BehaviorKind::Browse,
        BehaviorKind::Query,
        BehaviorKind::Purchase,
    ];
    for user in 1..=users {
        let cluster = user % CLUSTERS;
        for _ in 0..EVENTS_PER_USER {
            let slot = rng.gen_range(0..ITEMS_PER_CLUSTER);
            let item = ItemId(cluster * ITEMS_PER_CLUSTER + slot + 1);
            let kind = kinds[rng.gen_range(0..kinds.len())];
            store.record_event(ConsumerId(user), item, kind);
        }
    }
    store
}

// --- scaling section: streamed population, exact vs ANN ----------------

/// Store populated from a [`PopulationStream`]: the generator derives
/// each consumer's events on demand, so builder memory beyond the store
/// itself stays O(clusters).
fn build_streamed_store(users: usize) -> RecommendStore {
    let taxonomy = Taxonomy::generate(TaxonomySpec {
        categories: 10,
        subs_per_category: 5,
        terms_per_sub: 12,
    });
    let mut rng = StdRng::seed_from_u64(7);
    let listings = generate_listings(
        &taxonomy,
        &CatalogSpec {
            items: 500,
            ..CatalogSpec::default()
        },
        1,
        &mut rng,
    );
    let spec = PopulationSpec {
        consumers: users,
        clusters: 50,
        leaves_per_cluster: 2,
        noise: 0.15,
    };
    let stream = PopulationStream::new(&spec, &listings, 0xCA7);
    let mut store = RecommendStore::new();
    for l in &listings {
        store.upsert_item(l.item.clone());
    }
    for i in 0..stream.len() {
        for (consumer, item, kind) in stream.events_of(i, 6) {
            store.record_event(consumer, item, kind);
        }
    }
    store
}

/// The graded ANN parameters: signature width grows with the
/// population (`bits = log2(users / 64)`, floor 8) so per-table buckets
/// hold ~64 consumers at every size — candidate volume, and therefore
/// query cost, stays roughly flat while the exact scan grows linearly.
/// Tables and probes match `tests/ann.rs`.
fn ann_config(users: usize) -> SimilarityConfig {
    let bits = ((users / 64).max(1).ilog2() as u8).max(8);
    SimilarityConfig {
        ann: Some(AnnConfig {
            bits,
            tables: 8,
            probes: 8,
            seed: 42,
        }),
        ..SimilarityConfig::default()
    }
}

/// Measured tie-tolerant recall@10 of the ANN path against the exact
/// scan over a 50-user sample.
fn measured_recall(store: &RecommendStore, users: usize) -> (f64, u64, u64) {
    let exact_cfg = SimilarityConfig::default();
    let ann_cfg = ann_config(users);
    let step = (users / 50).max(1);
    let (mut hit, mut total) = (0u64, 0u64);
    for user in (1..=users as u64).step_by(step) {
        let consumer = ConsumerId(user);
        let exact_top = store.nearest_neighbours(consumer, &exact_cfg, 10);
        let ann_top = store.nearest_neighbours(consumer, &ann_cfg, 10);
        total += exact_top.len() as u64;
        hit += exact_top
            .iter()
            .filter(|(c, s)| {
                ann_top
                    .iter()
                    .any(|(ac, asc)| ac == c || (asc - s).abs() < 1e-9)
            })
            .count() as u64;
    }
    (hit as f64 / total.max(1) as f64, hit, total)
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_scaling");
    group.sample_size(10);
    let exact_cfg = SimilarityConfig::default();
    let probe = ConsumerId(1);

    let mut sizes = vec![10_000usize, 100_000];
    if std::env::var("QUERY_BENCH_FULL").is_ok() {
        sizes.push(1_000_000);
    } else {
        println!("query_scaling: 10^6-consumer axis skipped (set QUERY_BENCH_FULL=1)");
    }
    for users in sizes {
        let ann_cfg = ann_config(users);
        let build_start = std::time::Instant::now();
        let store = build_streamed_store(users);
        let built = build_start.elapsed();
        let warm_start = std::time::Instant::now();
        store.warm_ann(&ann_cfg);
        let warmed = warm_start.elapsed();
        let bits = ann_cfg.ann.expect("ann configured").bits;
        println!(
            "query_scaling/{users}: store built in {built:.2?}, \
             ANN index ({bits} bits x 8 tables) built in {warmed:.2?}"
        );
        group.bench_with_input(BenchmarkId::new("nn_exact", users), &store, |b, s| {
            b.iter(|| s.nearest_neighbours(probe, &exact_cfg, 10));
        });
        group.bench_with_input(BenchmarkId::new("nn_ann", users), &store, |b, s| {
            b.iter(|| s.nearest_neighbours(probe, &ann_cfg, 10));
        });
        let (recall, hit, total) = measured_recall(&store, users);
        println!("query_scaling/{users}: recall@10 = {recall:.4} ({hit}/{total})");
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_hot_path");
    group.sample_size(10);
    let hybrid = HybridRecommender::default();
    let itemcf = ItemCfRecommender::default();
    let ctx = QueryContext::default();
    let probe = ConsumerId(1);

    for users in [1_000u64, 10_000, 100_000] {
        let store = build_store(users);
        if users == 10_000 {
            assert_candidates_no_alloc(&store);
        }
        let cfg = hybrid.similarity;
        group.bench_with_input(BenchmarkId::new("hybrid_indexed", users), &store, |b, s| {
            b.iter(|| hybrid.recommend(s, probe, &ctx, 10));
        });
        group.bench_with_input(BenchmarkId::new("nn_indexed", users), &store, |b, s| {
            b.iter(|| s.nearest_neighbours(probe, &cfg, 10));
        });
        group.bench_with_input(BenchmarkId::new("itemcf_cached", users), &store, |b, s| {
            b.iter(|| itemcf.recommend(s, probe, &ctx, 10));
        });
        if users <= 10_000 {
            group.bench_with_input(BenchmarkId::new("hybrid_naive", users), &store, |b, s| {
                b.iter(|| hybrid.recommend_naive(s, probe, &ctx, 10));
            });
            group.bench_with_input(BenchmarkId::new("nn_naive", users), &store, |b, s| {
                b.iter(|| s.nearest_neighbours_naive(probe, &cfg, 10));
            });
            group.bench_with_input(BenchmarkId::new("itemcf_naive", users), &store, |b, s| {
                b.iter(|| itemcf.recommend_naive(s, probe, &ctx, 10));
            });
        }
    }
    group.finish();
}

fn run(c: &mut Criterion) {
    if std::env::args().any(|a| a == "--assert-no-alloc") {
        assert_candidates_no_alloc(&build_store(10_000));
        return;
    }
    bench(c);
    bench_scaling(c);
}

criterion_group!(benches, run);
criterion_main!(benches);
