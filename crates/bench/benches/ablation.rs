//! E10 — ablations and the §5.2 future-work features.
//!
//! Series printed:
//! * the similarity-discard / collaborative-weight ablation table;
//! * the learning-rate α row of E5 for cross-reference;
//! * weekly-hottest and tied-sale demonstrations (future work 2);
//! * community graph statistics (future work 3).
//!
//! Criterion times the similarity kernel with and without the discard
//! rule, and community-graph construction.

use abcrm_core::extensions::{CommunityGraph, TiedSale, WeeklyHottest};
use abcrm_core::learning::BehaviorKind;
use abcrm_core::profile::ConsumerId;
use abcrm_core::similarity::{profile_similarity, SimilarityConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use ecp::merchandise::ItemId;
use eval::harness::build_store;
use eval::sweep::{ablation, make_workload, SweepSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ablation_tables() {
    let spec = SweepSpec {
        items: 100,
        consumers: 40,
        ..SweepSpec::default()
    };
    println!("\n[E10] {}", ablation(&spec, 15));
}

fn future_work_demos() {
    let spec = SweepSpec {
        items: 60,
        consumers: 24,
        ..SweepSpec::default()
    };
    let w = make_workload(&spec);
    let mut rng = StdRng::seed_from_u64(103);
    let history = w.population.sample_history(&w.listings, 15, &mut rng);
    let mut store = build_store(&w.listings, &history);

    // weekly hottest: feed the purchase stream with ticks
    let mut hottest = WeeklyHottest::new();
    let mut tick = 0u64;
    for (_, item, kind) in &history {
        if matches!(kind, BehaviorKind::Purchase) {
            tick += 1;
            hottest.record_sale(tick, item.id);
        }
    }
    println!("[E10] weekly hottest (window = last 50 sales vs all time)");
    println!("{:>14} {:>14}", "recent top", "all-time top");
    let recent = hottest.hottest(tick, 50, 3);
    let alltime = hottest.hottest(tick, u64::MAX, 3);
    for i in 0..3 {
        println!(
            "{:>14} {:>14}",
            recent
                .get(i)
                .map(|(x, n)| format!("{x}({n})"))
                .unwrap_or_default(),
            alltime
                .get(i)
                .map(|(x, n)| format!("{x}({n})"))
                .unwrap_or_default()
        );
    }

    // tied-sale: synthesize co-purchase baskets from each consumer's top
    // purchases
    for truth in &w.population.consumers {
        let owned: Vec<ItemId> = store.purchased_by(truth.id).into_iter().take(3).collect();
        if owned.len() >= 2 {
            store.record_basket(truth.id, &owned);
        }
    }
    let miner = TiedSale::new(2);
    let probe = store
        .top_sellers(1)
        .first()
        .map(|(i, _)| *i)
        .unwrap_or(ItemId(1));
    let companions = miner.companions(&store, probe, 3);
    println!("\n[E10] tied-sale companions of {probe}: {companions:?}");

    // community graph
    let graph = CommunityGraph::build(&store, &SimilarityConfig::default(), 0.3);
    let communities = graph.communities();
    println!(
        "[E10] community graph: {} connected consumers, {} communities, sizes {:?}",
        graph.len(),
        communities.len(),
        communities.iter().map(|c| c.len()).collect::<Vec<_>>()
    );
    println!();
}

fn negotiation_tactics() {
    use ecp::merchandise::Money;
    use ecp::negotiation::{negotiate, BuyerPolicy, ConcessionStrategy, SellerPolicy};
    println!(
        "[E10] seller concession tactics vs one buyer (list $100, reservation $50, budget $95)"
    );
    println!("{:>22} {:>12} {:>8}", "tactic", "deal price", "rounds");
    let base = SellerPolicy::with_margin(Money::from_units(100), 0.5, 0.1);
    let buyer = BuyerPolicy {
        budget: Money::from_units(95),
        opening_fraction: 0.4,
        raise: 0.15,
        max_rounds: 20,
    };
    let tactics: Vec<(&str, SellerPolicy)> = vec![
        ("proportional-0.10", base),
        (
            "boulware (e=4)",
            base.with_strategy(ConcessionStrategy::TimeDependent {
                deadline_rounds: 12,
                exponent: 4.0,
            }),
        ),
        (
            "linear (e=1)",
            base.with_strategy(ConcessionStrategy::TimeDependent {
                deadline_rounds: 12,
                exponent: 1.0,
            }),
        ),
        (
            "conceder (e=0.25)",
            base.with_strategy(ConcessionStrategy::TimeDependent {
                deadline_rounds: 12,
                exponent: 0.25,
            }),
        ),
    ];
    for (label, policy) in tactics {
        let outcome = negotiate(policy, buyer);
        match outcome {
            ecp::negotiation::Outcome::Deal { price, rounds } => {
                println!("{:>22} {:>12} {:>8}", label, price.to_string(), rounds);
            }
            ecp::negotiation::Outcome::NoDeal { rounds } => {
                println!("{:>22} {:>12} {:>8}", label, "no deal", rounds);
            }
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    ablation_tables();
    future_work_demos();
    negotiation_tactics();

    let spec = SweepSpec {
        items: 80,
        consumers: 30,
        ..SweepSpec::default()
    };
    let w = make_workload(&spec);
    let mut rng = StdRng::seed_from_u64(104);
    let history = w.population.sample_history(&w.listings, 15, &mut rng);
    let store = build_store(&w.listings, &history);
    let profiles: Vec<_> = store.profiles().map(|(_, p)| p.clone()).collect();

    let mut group = c.benchmark_group("E10_kernels");
    group.bench_function("similarity_with_discard", |b| {
        let cfg = SimilarityConfig::default();
        b.iter(|| profile_similarity(&profiles[0], &profiles[1], &cfg));
    });
    group.bench_function("similarity_without_discard", |b| {
        let cfg = SimilarityConfig {
            discard_threshold: None,
            ..SimilarityConfig::default()
        };
        b.iter(|| profile_similarity(&profiles[0], &profiles[1], &cfg));
    });
    group.bench_function("community_graph_30_users", |b| {
        let cfg = SimilarityConfig::default();
        b.iter(|| CommunityGraph::build(&store, &cfg, 0.3));
    });
    group.bench_function("neighbour_search_30_users", |b| {
        let cfg = SimilarityConfig::default();
        b.iter(|| {
            abcrm_core::similarity::nearest_neighbours(
                &profiles[0],
                store.profiles().filter(|(id, _)| *id != ConsumerId(1)),
                &cfg,
                10,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
