//! E15 — self-healing supervision cost: MTTR and detector overhead.
//!
//! Two questions, numbers recorded in `BENCH_resilience.json`:
//!
//! 1. **MTTR** — how much does *automatic* recovery cost over a scripted
//!    one? Both sides build the same durable Buyer Agent Server, drive
//!    the same workload, and crash the buyer host. The scripted baseline
//!    then calls `restart_host` by hand (the E14 pattern); the supervised
//!    run does nothing — the heartbeat lease expires and the supervisor
//!    fails the host over to a standby on its own. The repair work is
//!    wall-timed from the crash until the world drains, and the sim-time
//!    from crash to restored service is reported alongside (the
//!    supervised side pays the lease-expiry detection window there,
//!    which is a config knob, not work).
//!
//! 2. **Detector overhead** — what does an *armed-but-idle* supervisor
//!    cost a healthy run? Identical fault-free workloads on a plain
//!    durable platform vs a supervised one, wall-timed; the dormant
//!    detector schedules nothing, so the delta should vanish into noise
//!    (acceptance: ≤ 2%).
//!
//! Criterion times the detector micro-ops themselves: an idle
//! `Supervisor::tick`, a tick over 64 expiring leases, and the
//! `note_restore` budget bookkeeping.
//!
//! `RESILIENCE_BENCH_QUICK=1` shrinks the series for CI smoke runs.

use abcrm_core::agents::msg::{ConsumerTask, ResponseBody};
use abcrm_core::profile::ConsumerId;
use abcrm_core::server::{listing, Platform};
use agentsim::durable::DurabilityConfig;
use agentsim::ids::{AgentId, HostId};
use agentsim::supervise::{SupervisionConfig, Supervisor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn quick() -> bool {
    std::env::var("RESILIENCE_BENCH_QUICK").is_ok()
}

fn supervision() -> SupervisionConfig {
    SupervisionConfig {
        lease_interval_us: 100_000,
        lease_grace: 1,
        hang_grace_us: 200_000,
        restart_budget: 8,
        backoff_base_us: 50_000,
        backoff_max_us: 1_000_000,
    }
}

fn build(seed: u64, supervised: bool) -> Platform {
    let mut b = Platform::builder(seed)
        .marketplaces(vec![vec![
            listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
            listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
        ]])
        .mba_timeout_us(2_000_000)
        .durability(DurabilityConfig::default());
    if supervised {
        b = b.supervision(supervision());
    }
    b.build()
}

/// Drive `tasks` query tasks and require every one of them answered.
fn drive(p: &mut Platform, consumers: u64, tasks: u64) {
    for i in 0..tasks {
        let consumer = ConsumerId(1 + i % consumers);
        p.submit_task(
            consumer,
            ConsumerTask::Query {
                keywords: vec!["rust".into()],
                category: None,
                max_results: 5,
            },
        );
        let wave = p.run_and_drain();
        assert!(
            wave.iter()
                .all(|(_, r)| !matches!(r, ResponseBody::Error(_))),
            "workload task {i} failed: {wave:?}"
        );
    }
}

struct MttrReport {
    /// Wall time of the repair work: crash → world drained.
    repair_wall_us: u64,
    /// Sim time from the crash to the host being back in service.
    detect_and_repair_sim_us: u64,
    agents_recovered: u64,
}

/// Crash the buyer host after `tasks` workflow tasks and recover it —
/// by hand (`scripted = true`, the E14 `restart_host` pattern) or by
/// leaving the supervisor to notice the missed leases and fail over.
fn crash_and_recover(seed: u64, tasks: u64, scripted: bool) -> MttrReport {
    let consumers = 4;
    let mut p = build(seed, !scripted);
    for c in 1..=consumers {
        p.login(ConsumerId(c));
    }
    drive(&mut p, consumers, tasks);
    let host = p.buyer_host();
    let crashed_at = p.world().now();
    p.world_mut().crash_host(host).unwrap();
    let started = Instant::now();
    if scripted {
        p.world_mut().restart_host(host).unwrap();
    }
    p.world_mut().run_until_idle();
    let repair_wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    // recovered service answers from whichever host is live now
    let replies = p.query(ConsumerId(1), &["rust"], 5);
    assert!(
        replies
            .iter()
            .any(|r| matches!(r, ResponseBody::Recommendations { .. })),
        "recovered platform must serve: {replies:?}"
    );
    if !scripted {
        assert!(
            p.world().failover_of(host).is_some(),
            "supervisor must have failed the host over"
        );
    }
    // sim-time of the recovery completion: the restart trace for the
    // scripted path, the failover-complete bounce for the supervised one
    let marker = if scripted { "restarted" } else { "failover" };
    let recovered_at = p
        .world()
        .trace()
        .events()
        .iter()
        .filter(|e| e.at >= crashed_at)
        .find(|e| e.label.contains(marker))
        .map(|e| e.at)
        .unwrap_or(crashed_at);
    MttrReport {
        repair_wall_us,
        detect_and_repair_sim_us: recovered_at.as_micros() - crashed_at.as_micros(),
        agents_recovered: p.world().metrics().agents_recovered,
    }
}

/// Wall-time an identical fault-free workload, plain vs supervised.
/// Best-of-`reps` on each side squeezes out scheduler noise.
fn detector_overhead(tasks: u64, reps: u32) -> (u64, u64) {
    let mut best = [u64::MAX, u64::MAX];
    for rep in 0..reps {
        for (slot, supervised) in [(0usize, false), (1usize, true)] {
            let mut p = build(1000 + rep as u64, supervised);
            for c in 1..=4 {
                p.login(ConsumerId(c));
            }
            let started = Instant::now();
            drive(&mut p, 4, tasks);
            let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            best[slot] = best[slot].min(us);
            // the dormant detector never arms on a healthy run
            assert_eq!(p.world().metrics().hosts_suspected, 0);
            assert_eq!(p.world().metrics().failovers, 0);
        }
    }
    (best[0], best[1])
}

fn resilience_series() {
    let sizes: &[u64] = if quick() { &[8] } else { &[8, 32, 128] };
    println!("E15 resilience: auto-failover MTTR vs scripted restart, detector overhead");
    let mut rows = Vec::new();
    for &tasks in sizes {
        let scripted = crash_and_recover(42, tasks, true);
        let auto = crash_and_recover(42, tasks, false);
        let ratio = auto.repair_wall_us as f64 / scripted.repair_wall_us.max(1) as f64;
        println!(
            "  tasks {tasks:>4}  scripted repair {:>7}us  auto repair {:>7}us  (x{ratio:.2})  \
             auto detect+repair {:>7} sim-us  agents {:>2}",
            scripted.repair_wall_us,
            auto.repair_wall_us,
            auto.detect_and_repair_sim_us,
            auto.agents_recovered,
        );
        rows.push(serde_json::json!({
            "tasks": tasks,
            "scripted_repair_wall_us": scripted.repair_wall_us,
            "auto_repair_wall_us": auto.repair_wall_us,
            "auto_over_scripted": (ratio * 100.0).round() / 100.0,
            "scripted_detect_and_repair_sim_us": scripted.detect_and_repair_sim_us,
            "auto_detect_and_repair_sim_us": auto.detect_and_repair_sim_us,
            "agents_recovered": auto.agents_recovered,
        }));
    }
    let overhead_tasks = if quick() { 16 } else { 64 };
    let (plain_us, supervised_us) = detector_overhead(overhead_tasks, 3);
    let overhead_pct = (supervised_us as f64 - plain_us as f64) / plain_us.max(1) as f64 * 100.0;
    println!(
        "  detector overhead ({overhead_tasks} healthy tasks, best of 3): \
         plain {plain_us}us  supervised {supervised_us}us  ({overhead_pct:+.2}%)"
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::json!({
            "series": rows,
            "detector_overhead": {
                "tasks": overhead_tasks,
                "plain_wall_us": plain_us,
                "supervised_wall_us": supervised_us,
                "overhead_pct": (overhead_pct * 100.0).round() / 100.0,
            },
        }))
        .unwrap()
    );
}

fn bench(c: &mut Criterion) {
    resilience_series();

    let mut group = c.benchmark_group("E15_resilience");
    group.sample_size(20);
    // an idle tick: nothing tracked, the per-lease-interval fixed cost
    group.bench_function("detector_tick_idle", |b| {
        let mut sup = Supervisor::new(supervision());
        b.iter(|| sup.tick(0));
    });
    // a fully loaded tick: 64 crashed hosts whose leases all expire —
    // worst-case verdict fan-out per tick
    group.bench_function("detector_tick_64_expiring_leases", |b| {
        b.iter(|| {
            let mut sup = Supervisor::new(supervision());
            for h in 0..64u32 {
                sup.observe_crash(HostId(h), 0);
            }
            sup.tick(10_000_000).len()
        });
    });
    // budget bookkeeping on the recovery path: one decision per capsule
    group.bench_function("note_restore_64_agents", |b| {
        let mut sup = Supervisor::new(supervision());
        b.iter(|| (0..64u64).map(|a| sup.note_restore(AgentId(a))).count());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
