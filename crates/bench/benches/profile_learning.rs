//! E5 — Figs 4.4/4.5: profile representation and learning rule.
//!
//! Series printed: profile→truth cosine alignment after 25/50/75/100% of
//! a behaviour stream, per learning rate α. Criterion times a single
//! Fig 4.5 update and a full similarity computation.

use abcrm_core::learning::{BehaviorEvent, BehaviorKind, LearnerConfig, ProfileLearner};
use abcrm_core::profile::Profile;
use abcrm_core::similarity::{profile_similarity, SimilarityConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use ecp::merchandise::CategoryPath;
use ecp::terms::TermVector;
use eval::sweep::{alpha_convergence, SweepSpec};

fn convergence_table() {
    let spec = SweepSpec::default();
    println!(
        "\n[E5] {}",
        alpha_convergence(&spec, &[0.05, 0.1, 0.3, 0.6, 1.0], 80)
    );
}

fn sample_event(i: u64) -> BehaviorEvent {
    BehaviorEvent::new(
        BehaviorKind::Purchase,
        CategoryPath::new("books", "programming"),
        TermVector::from_pairs([
            (format!("t{}", i % 16), 1.0),
            (format!("t{}", (i + 3) % 16), 0.5),
        ]),
    )
}

fn rich_profile(n: usize) -> Profile {
    let learner = ProfileLearner::new(LearnerConfig::default());
    let mut p = Profile::new();
    for i in 0..n as u64 {
        learner.apply(&mut p, &sample_event(i));
    }
    p
}

fn bench(c: &mut Criterion) {
    convergence_table();
    let mut group = c.benchmark_group("E5_profile");
    group.bench_function("fig45_update_single_event", |b| {
        let learner = ProfileLearner::new(LearnerConfig::default());
        let mut p = rich_profile(100);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            learner.apply(&mut p, &sample_event(i));
        });
    });
    group.bench_function("profile_similarity_64_terms", |b| {
        let a = rich_profile(200);
        let q = rich_profile(150);
        let cfg = SimilarityConfig::default();
        b.iter(|| profile_similarity(&a, &q, &cfg));
    });
    group.bench_function("profile_flatten", |b| {
        let a = rich_profile(200);
        b.iter(|| a.flatten());
    });
    group.finish();
}

/// A feedback event on one of six categories, with terms drawn from a
/// 24-term vocabulary — builds profiles whose flattened vectors carry
/// a few dozen keys across categories.
fn spread_event(u: u64, j: u64) -> BehaviorEvent {
    BehaviorEvent::new(
        BehaviorKind::Purchase,
        CategoryPath::new(format!("cat{}", (u + j) % 6), format!("sub{}", j % 3)),
        TermVector::from_pairs([
            (format!("t{}", (u + 3 * j) % 24), 1.0),
            (format!("t{}", (u + 5 * j + 1) % 24), 0.5),
        ]),
    )
}

/// Incremental index maintenance at 10^5 resident consumers: one
/// feedback event folded in as a [`ProfileDelta`] (`apply_indexed` +
/// `apply_delta`, O(changed terms)) vs the wholesale re-flatten
/// (`apply` + `ProfileIndex::update`, O(profile)) vs rebuilding the
/// index outright (O(population) — printed once, not iterated).
fn bench_incremental(c: &mut Criterion) {
    const USERS: usize = 100_000;
    let learner = ProfileLearner::new(LearnerConfig::default());
    // rich profiles spanning several categories, so a wholesale
    // re-flatten touches an order of magnitude more terms than the one
    // category a single feedback event lands in
    let mut profiles: Vec<Profile> = (0..USERS as u64)
        .map(|u| {
            let mut p = Profile::new();
            for j in 0..10 {
                learner.apply(&mut p, &spread_event(u, j));
            }
            p
        })
        .collect();
    let mut index = abcrm_core::ProfileIndex::rebuild(
        profiles.iter().enumerate().map(|(i, p)| (i as u64 + 1, p)),
    );

    let start = std::time::Instant::now();
    let rebuilt = abcrm_core::ProfileIndex::rebuild(
        profiles.iter().enumerate().map(|(i, p)| (i as u64 + 1, p)),
    );
    println!(
        "\n[E5] full index rebuild over {USERS} consumers: {:.2?} ({} terms)",
        start.elapsed(),
        rebuilt.term_count()
    );
    drop(rebuilt);

    let mut group = c.benchmark_group("E5_incremental_index");
    group.sample_size(10);
    group.bench_function("feedback_delta_100k_users", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let user = (i.wrapping_mul(7919) % USERS as u64) as usize;
            let delta = learner.apply_indexed(&mut profiles[user], &spread_event(user as u64, i));
            index.apply_delta(user as u64 + 1, &delta);
        });
    });
    group.bench_function("feedback_full_update_100k_users", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let user = (i.wrapping_mul(7919) % USERS as u64) as usize;
            learner.apply(&mut profiles[user], &spread_event(user as u64, i));
            index.update(user as u64 + 1, &profiles[user]);
        });
    });
    group.finish();
}

criterion_group!(benches, bench, bench_incremental);
criterion_main!(benches);
