//! E5 — Figs 4.4/4.5: profile representation and learning rule.
//!
//! Series printed: profile→truth cosine alignment after 25/50/75/100% of
//! a behaviour stream, per learning rate α. Criterion times a single
//! Fig 4.5 update and a full similarity computation.

use abcrm_core::learning::{BehaviorEvent, BehaviorKind, LearnerConfig, ProfileLearner};
use abcrm_core::profile::Profile;
use abcrm_core::similarity::{profile_similarity, SimilarityConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use ecp::merchandise::CategoryPath;
use ecp::terms::TermVector;
use eval::sweep::{alpha_convergence, SweepSpec};

fn convergence_table() {
    let spec = SweepSpec::default();
    println!(
        "\n[E5] {}",
        alpha_convergence(&spec, &[0.05, 0.1, 0.3, 0.6, 1.0], 80)
    );
}

fn sample_event(i: u64) -> BehaviorEvent {
    BehaviorEvent::new(
        BehaviorKind::Purchase,
        CategoryPath::new("books", "programming"),
        TermVector::from_pairs([
            (format!("t{}", i % 16), 1.0),
            (format!("t{}", (i + 3) % 16), 0.5),
        ]),
    )
}

fn rich_profile(n: usize) -> Profile {
    let learner = ProfileLearner::new(LearnerConfig::default());
    let mut p = Profile::new();
    for i in 0..n as u64 {
        learner.apply(&mut p, &sample_event(i));
    }
    p
}

fn bench(c: &mut Criterion) {
    convergence_table();
    let mut group = c.benchmark_group("E5_profile");
    group.bench_function("fig45_update_single_event", |b| {
        let learner = ProfileLearner::new(LearnerConfig::default());
        let mut p = rich_profile(100);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            learner.apply(&mut p, &sample_event(i));
        });
    });
    group.bench_function("profile_similarity_64_terms", |b| {
        let a = rich_profile(200);
        let q = rich_profile(150);
        let cfg = SimilarityConfig::default();
        b.iter(|| profile_similarity(&a, &q, &cfg));
    });
    group.bench_function("profile_flatten", |b| {
        let a = rich_profile(200);
        b.iter(|| a.flatten());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
