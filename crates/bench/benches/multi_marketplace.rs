//! E7 — §5.1 claim 3: the MBA collects merchandise information across
//! two or more marketplaces.
//!
//! Series printed: offers found, best price and MBA tour sim-time vs
//! marketplace count (nested price-jittered replicas, so best price is
//! monotone in coverage). Criterion times the multi-market query.

use abcrm_core::agents::msg::ResponseBody;
use abcrm_core::profile::ConsumerId;
use abcrm_core::server::Platform;
use abcrm_core::workflow::{self, FIG_QUERY};
use bench::bench_listings;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::catalog::replicate_with_price_jitter;

fn discovery_series() {
    println!("\n[E7] price discovery vs marketplace count (±20% price jitter, LAN)");
    println!(
        "{:>8} {:>8} {:>12} {:>14} {:>12}",
        "markets", "offers", "best price", "tour sim-ms", "migrations"
    );
    let base = bench_listings(20, 71);
    let mut rng = StdRng::seed_from_u64(72);
    let all = replicate_with_price_jitter(&base, 8, 0.2, &mut rng);
    let keyword = base[0].item.name.clone();
    for n in [1usize, 2, 4, 6, 8] {
        let mut platform = Platform::builder(70 + n as u64)
            .marketplaces(all[..n].to_vec())
            .build();
        platform.login(ConsumerId(1));
        let migrations_before = platform.world().metrics().migrations;
        let responses = platform.query(ConsumerId(1), &[keyword.as_str()], 3);
        let times = workflow::step_times(platform.world().trace(), FIG_QUERY);
        let tour = times[15]
            .expect("step15")
            .since(times[1].expect("step1"))
            .as_millis_f64();
        for r in responses {
            if let ResponseBody::Recommendations { offers, .. } = r {
                let best = offers.iter().map(|o| o.price).min();
                println!(
                    "{:>8} {:>8} {:>12} {:>14.3} {:>12}",
                    n,
                    offers.len(),
                    best.map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
                    tour,
                    platform.world().metrics().migrations - migrations_before
                );
            }
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    discovery_series();
    let base = bench_listings(20, 73);
    let mut rng = StdRng::seed_from_u64(74);
    let all = replicate_with_price_jitter(&base, 8, 0.2, &mut rng);
    let keyword = base[0].item.name.clone();
    let mut group = c.benchmark_group("E7_multi_market_query");
    group.sample_size(10);
    for n in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("tour", n), &n, |b, &n| {
            let mut platform = Platform::builder(75 + n as u64)
                .marketplaces(all[..n].to_vec())
                .build();
            platform.login(ConsumerId(1));
            b.iter(|| platform.query(ConsumerId(1), &[keyword.as_str()], 3));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
