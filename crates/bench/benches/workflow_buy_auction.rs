//! E4 — Fig 4.3: the buy / auction workflow.
//!
//! Series printed: sim-time and message cost of direct buy vs negotiated
//! buy (by negotiation distance) vs auction. Criterion times each
//! variant end to end.

use abcrm_core::agents::msg::BuyMode;
use abcrm_core::profile::ConsumerId;
use abcrm_core::workflow::{self, FIG_TRANSACT};
use bench::bench_platform;
use criterion::{criterion_group, criterion_main, Criterion};
use ecp::merchandise::{ItemId, Money};

fn negotiate_mode(budget_units: u64) -> BuyMode {
    BuyMode::Negotiate {
        budget: Money::from_units(budget_units),
        opening_fraction: 0.5,
        raise: 0.1,
        max_rounds: 25,
    }
}

fn transact_series() {
    println!("\n[E4] Fig 4.3 trade variants: sim-time and messages (1 marketplace, LAN)");
    println!(
        "{:>22} {:>14} {:>10} {:>10}",
        "variant", "sim-ms", "messages", "outcome"
    );
    // catalog item 1 always exists; its price is seed-dependent, so use a
    // generous budget for the "easy" negotiation and a tiny one for the
    // walk-away
    let variants: Vec<(&str, BuyMode)> = vec![
        ("direct", BuyMode::Direct),
        ("negotiate-generous", negotiate_mode(100_000)),
        ("negotiate-hopeless", negotiate_mode(1)),
    ];
    for (label, mode) in variants {
        let mut platform = bench_platform(40, 1, 31);
        let before_msgs = platform.world().metrics().messages_delivered;
        let responses = platform.buy(ConsumerId(1), ItemId(1), 0, mode);
        let times = workflow::step_times(platform.world().trace(), FIG_TRANSACT);
        let (t1, t14) = (times[1].expect("step1"), times[14].expect("step14"));
        let outcome = match &responses[0] {
            abcrm_core::agents::msg::ResponseBody::Receipt { .. } => "bought",
            abcrm_core::agents::msg::ResponseBody::Error(_) => "no-deal",
            _ => "other",
        };
        println!(
            "{:>22} {:>14.3} {:>10} {:>10}",
            label,
            t14.since(t1).as_millis_f64(),
            platform.world().metrics().messages_delivered - before_msgs,
            outcome
        );
    }
    // auction variant
    let mut platform = bench_platform(40, 1, 31);
    platform.open_auction(
        0,
        ItemId(1),
        Money::from_units(5),
        Money::from_units(1),
        agentsim::clock::SimDuration::from_secs(10),
    );
    let before_msgs = platform.world().metrics().messages_delivered;
    let responses = platform.auction(ConsumerId(1), ItemId(1), 0, Money::from_units(100_000));
    let times = workflow::step_times(platform.world().trace(), FIG_TRANSACT);
    let (t1, t14) = (times[1].expect("step1"), times[14].expect("step14"));
    let outcome = match &responses[0] {
        abcrm_core::agents::msg::ResponseBody::AuctionResult { won: true, .. } => "won",
        _ => "other",
    };
    println!(
        "{:>22} {:>14.3} {:>10} {:>10}",
        "auction-solo",
        t14.since(t1).as_millis_f64(),
        platform.world().metrics().messages_delivered - before_msgs,
        outcome
    );
    println!("(auction sim-time is dominated by the 10s auction deadline)\n");
}

fn bench(c: &mut Criterion) {
    transact_series();
    let mut group = c.benchmark_group("E4_transact");
    group.sample_size(10);
    group.bench_function("direct_buy_workflow", |b| {
        let mut platform = bench_platform(40, 1, 32);
        b.iter(|| platform.buy(ConsumerId(1), ItemId(1), 0, BuyMode::Direct));
    });
    group.bench_function("negotiated_buy_workflow", |b| {
        let mut platform = bench_platform(40, 1, 33);
        b.iter(|| platform.buy(ConsumerId(1), ItemId(1), 0, negotiate_mode(100_000)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
