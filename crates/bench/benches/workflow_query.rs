//! E3 — Fig 4.2: the merchandise-query workflow.
//!
//! Series printed: (a) per-step simulated latency breakdown of one
//! 15-step query, (b) end-to-end query sim-time vs marketplace count.
//! Criterion times the full workflow (wall clock).

use abcrm_core::profile::ConsumerId;
use abcrm_core::workflow::{self, FIG_QUERY};
use bench::{bench_listings, bench_platform, probe_keyword};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn step_breakdown() {
    println!("\n[E3] Fig 4.2 per-step sim-time breakdown (2 marketplaces, LAN)");
    let mut platform = bench_platform(40, 2, 21);
    let listings = bench_listings(40, 21);
    let keyword = probe_keyword(&listings);
    platform.query(ConsumerId(1), &[keyword.as_str()], 5);
    let times = workflow::step_times(platform.world().trace(), FIG_QUERY);
    let t0 = times[1].expect("step 1");
    println!("{:>6} {:>14}", "step", "at +us");
    for (step, time) in times.iter().enumerate().skip(1) {
        if let Some(t) = time {
            println!("{:>6} {:>14}", step, t.since(t0).as_micros());
        }
    }
    println!();
}

fn tour_series() {
    println!("[E3] end-to-end query sim-time vs marketplaces (LAN)");
    println!(
        "{:>13} {:>16} {:>12}",
        "marketplaces", "sim-time (ms)", "migrations"
    );
    for markets in [1usize, 2, 4, 8] {
        let mut platform = bench_platform(40, markets, 22);
        let listings = bench_listings(40, 22);
        let keyword = probe_keyword(&listings);
        let migrations_before = platform.world().metrics().migrations;
        platform.query(ConsumerId(1), &[keyword.as_str()], 5);
        let times = workflow::step_times(platform.world().trace(), FIG_QUERY);
        let (t1, t15) = (times[1].expect("step1"), times[15].expect("step15"));
        println!(
            "{:>13} {:>16.3} {:>12}",
            markets,
            t15.since(t1).as_millis_f64(),
            platform.world().metrics().migrations - migrations_before
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    step_breakdown();
    tour_series();
    let mut group = c.benchmark_group("E3_query");
    group.sample_size(10);
    for markets in [1usize, 4] {
        let listings = bench_listings(40, 23);
        let keyword = probe_keyword(&listings);
        group.bench_with_input(
            BenchmarkId::new("full_query_workflow", markets),
            &markets,
            |b, &markets| {
                let mut platform = bench_platform(40, markets, 23);
                b.iter(|| platform.query(ConsumerId(1), &[keyword.as_str()], 5));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
