//! E6 — recommendation quality: the paper's hybrid vs the §2.3
//! baselines, across the sparsity axis and the cold-start scenarios.
//!
//! Series printed: the full sparsity sweep table and the cold-start
//! table (the data EXPERIMENTS.md reports). Criterion times one
//! `recommend()` call per strategy at a fixed store size.

use abcrm_core::profile::ConsumerId;
use abcrm_core::recommend::{
    CfRecommender, ContentRecommender, HybridRecommender, QueryContext, Recommender,
    TopSellerRecommender,
};
use criterion::{criterion_group, criterion_main, Criterion};
use eval::harness::build_store;
use eval::sweep::{cold_start_eval, make_workload, sparsity_sweep, SweepSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quality_tables() {
    let spec = SweepSpec {
        items: 100,
        consumers: 40,
        ..SweepSpec::default()
    };
    println!("\n[E6] {}", sparsity_sweep(&spec, &[1, 3, 7, 15, 30]));
    println!("[E6] {}", cold_start_eval(&spec, 15));
}

fn bench(c: &mut Criterion) {
    quality_tables();
    let spec = SweepSpec {
        items: 200,
        consumers: 60,
        ..SweepSpec::default()
    };
    let w = make_workload(&spec);
    let mut rng = StdRng::seed_from_u64(61);
    let history = w.population.sample_history(&w.listings, 20, &mut rng);
    let store = build_store(&w.listings, &history);
    let ctx = QueryContext::default();
    let user = ConsumerId(1);

    let mut group = c.benchmark_group("E6_recommend_latency");
    group.bench_function("hybrid", |b| {
        let rec = HybridRecommender::default();
        b.iter(|| rec.recommend(&store, user, &ctx, 10));
    });
    group.bench_function("cf_knn", |b| {
        let rec = CfRecommender::default();
        b.iter(|| rec.recommend(&store, user, &ctx, 10));
    });
    group.bench_function("content_if", |b| {
        b.iter(|| ContentRecommender.recommend(&store, user, &ctx, 10));
    });
    group.bench_function("top_seller", |b| {
        b.iter(|| TopSellerRecommender.recommend(&store, user, &ctx, 10));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
