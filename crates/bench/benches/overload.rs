//! E12 — overload protection under 10× admission-rate pressure.
//!
//! The series drives the full Buyer Agent Server at ten times the
//! admission bucket's sustained rate and compares an unprotected
//! platform against one with the whole protection stack switched on
//! (admission control, request deadlines, bounded mailboxes, breakers).
//! Reported per run: goodput (answered recommendations per second of
//! elapsed simulated time), shed rate (fraction of requests refused —
//! explicit `Overloaded` replies plus bounded-mailbox rejections), p99
//! end-to-end latency of accepted requests, and the deepest mailbox
//! observed. `errors` counts the BRA's per-consumer "busy with a
//! previous task" serialization, which is load-independent.
//!
//! Criterion times the two ingress paths the series exercises: a fully
//! served burst (unprotected) and a mostly-shed burst (protected with an
//! exhausted bucket) — the latter is the fast path that keeps an
//! overloaded server responsive.
//!
//! `OVERLOAD_BENCH_QUICK=1` shrinks the series for CI smoke runs.

use abcrm_core::admission::AdmissionConfig;
use abcrm_core::agents::msg::{ConsumerTask, ResponseBody};
use abcrm_core::breaker::BreakerConfig;
use abcrm_core::profile::ConsumerId;
use abcrm_core::server::{listing, Platform};
use agentsim::clock::SimDuration;
use agentsim::overload::{MailboxConfig, MailboxPolicy};
use criterion::{criterion_group, criterion_main, Criterion};

/// Sustained admission rate the protected run is provisioned for.
const RATE_PER_SEC: f64 = 50.0;
/// Token bucket depth.
const BURST: f64 = 16.0;
/// Requests arrive at 10× the sustained rate: one every 2 ms.
const ARRIVAL_GAP_US: u64 = 1_000_000 / (10 * RATE_PER_SEC as u64);
/// End-to-end deadline each admitted request runs under (protected run).
const DEADLINE_US: u64 = 100_000;

fn quick() -> bool {
    std::env::var("OVERLOAD_BENCH_QUICK").is_ok()
}

fn build(seed: u64, consumers: u64, protected: bool) -> Platform {
    let mut b = Platform::builder(seed)
        .telemetry(true)
        .marketplaces(vec![vec![
            listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
            listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
        ]])
        .mba_timeout_us(200_000);
    if protected {
        b = b
            .admission(AdmissionConfig {
                rate_per_sec: RATE_PER_SEC,
                burst: BURST,
                transaction_reserve: 0.125,
                query_reserve: 0.125,
            })
            .request_deadline_us(DEADLINE_US)
            .breaker(BreakerConfig {
                window: 8,
                failure_threshold: 0.5,
                min_samples: 4,
                cooldown_us: 1_000_000,
            })
            .mailbox(MailboxConfig::new(64, MailboxPolicy::RejectNewest));
    } else {
        // instrumentation-only: a bound this deep never rejects, it just
        // records how far the unprotected queue grows
        b = b.mailbox(MailboxConfig::new(1_000_000, MailboxPolicy::RejectNewest));
    }
    let mut p = b.build();
    for c in 1..=consumers {
        p.login(ConsumerId(c));
        // a paced login window so session setup is never what gets shed
        p.world_mut().run_for(SimDuration::from_micros(200_000));
    }
    p
}

#[derive(Clone, Copy, PartialEq)]
enum Arrival {
    /// One request every [`ARRIVAL_GAP_US`] — 10× the sustained rate.
    Paced,
    /// Every request injected at the same instant (thundering herd);
    /// this is what actually builds queue depth.
    Flood,
}

struct RunReport {
    answered: u64,
    shed: u64,
    mailbox_rejected: u64,
    errors: u64,
    goodput_per_sec: f64,
    shed_rate: f64,
    p99_accepted_us: Option<u64>,
    max_queue_depth: usize,
    deadline_drops: u64,
}

/// Offer `requests` queries under the given arrival pattern and account
/// for every reply.
fn drive(p: &mut Platform, consumers: u64, requests: u64, arrival: Arrival) -> RunReport {
    let rejected_before = p.world().metrics().mailbox_rejections;
    let started = p.world().now();
    for i in 0..requests {
        let consumer = ConsumerId(1 + (i % consumers));
        p.submit_task(
            consumer,
            ConsumerTask::Query {
                keywords: vec!["rust".into()],
                category: None,
                max_results: 5,
            },
        );
        if arrival == Arrival::Paced {
            p.world_mut()
                .run_for(SimDuration::from_micros(ARRIVAL_GAP_US));
        }
    }
    let replies = p.run_and_drain();
    let mut answered = 0u64;
    let mut shed = 0u64;
    let mut errors = 0u64;
    for (_, body) in &replies {
        match body {
            ResponseBody::Recommendations { .. } => answered += 1,
            ResponseBody::Overloaded { .. } => shed += 1,
            _ => errors += 1,
        }
    }
    let metrics = p.world().metrics();
    let mailbox_rejected = metrics.mailbox_rejections - rejected_before;
    let elapsed_s = (p.world().now().as_micros() - started.as_micros()) as f64 / 1_000_000.0;
    RunReport {
        answered,
        shed,
        mailbox_rejected,
        errors,
        goodput_per_sec: answered as f64 / elapsed_s.max(1e-6),
        shed_rate: (shed + mailbox_rejected) as f64 / requests as f64,
        p99_accepted_us: p
            .telemetry()
            .registry()
            .histogram("e2e.latency_us")
            .map(|h| h.quantile(0.99)),
        max_queue_depth: p.world().mailbox_max_depth(),
        deadline_drops: metrics.deadline_drops,
    }
}

fn report_json(label: &str, r: &RunReport) -> serde_json::Value {
    serde_json::json!({
        "run": label,
        "answered": r.answered,
        "shed_replies": r.shed,
        "mailbox_rejected": r.mailbox_rejected,
        "errors": r.errors,
        "goodput_per_sec": (r.goodput_per_sec * 10.0).round() / 10.0,
        "shed_rate": (r.shed_rate * 1000.0).round() / 1000.0,
        "p99_accepted_latency_us": r.p99_accepted_us,
        "max_queue_depth": r.max_queue_depth,
        "deadline_drops": r.deadline_drops,
    })
}

fn overload_series() {
    let consumers = 8;
    let requests: u64 = if quick() { 100 } else { 400 };
    println!(
        "E12 overload: {requests} queries at 10x the {RATE_PER_SEC}/s admission rate \
         ({consumers} consumers, one arrival per {ARRIVAL_GAP_US}us when paced)"
    );
    let mut rows = Vec::new();
    let runs = [
        ("paced-unprotected", Arrival::Paced, false),
        ("paced-protected", Arrival::Paced, true),
        ("flood-unprotected", Arrival::Flood, false),
        ("flood-protected", Arrival::Flood, true),
    ];
    for (label, arrival, protected) in runs {
        let mut p = build(42, consumers, protected);
        let r = drive(&mut p, consumers, requests, arrival);
        println!(
            "  {label:<18} answered {:>4}  shed {:>4}  mbox-rej {:>4}  errors {:>3}  \
             goodput {:>8.1}/s  shed-rate {:>5.1}%  p99 {:?}us  max-queue {}",
            r.answered,
            r.shed,
            r.mailbox_rejected,
            r.errors,
            r.goodput_per_sec,
            r.shed_rate * 100.0,
            r.p99_accepted_us,
            r.max_queue_depth,
        );
        rows.push(report_json(label, &r));
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&serde_json::json!({ "series": rows })).unwrap()
    );
}

fn bench(c: &mut Criterion) {
    overload_series();

    let burst: u64 = if quick() { 20 } else { 60 };
    let mut group = c.benchmark_group("E12_overload");
    group.sample_size(10);
    // the platforms live across iterations: the unprotected one keeps
    // serving, the protected one keeps shedding from an exhausted bucket
    let mut served = build(7, 4, false);
    group.bench_function("served_burst_unprotected", |b| {
        b.iter(|| drive(&mut served, 4, burst, Arrival::Paced).answered);
    });
    let mut shedding = build(7, 4, true);
    // exhaust the bucket first so the timed burst measures the shed
    // fast path an overloaded server lives on
    drive(&mut shedding, 4, BURST as u64 + 8, Arrival::Paced);
    group.bench_function("shed_fast_path_protected", |b| {
        b.iter(|| drive(&mut shedding, 4, burst, Arrival::Paced).shed);
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
