//! The Marketplace agent (MSA).
//!
//! Paper §3.2: *"Marketplace is a place that lets the Mobile Agent of the
//! Buyer and the Mobile Agent of the Seller trade with each other. And
//! provide kinds of trading services such as: information query,
//! negotiations, and auctions."*
//!
//! One [`MarketplaceAgent`] runs per marketplace host. Sellers push
//! listings via [`kinds::CATALOG_SYNC`]; visiting MBAs (or any agent)
//! query, buy, negotiate and bid via the [`crate::protocol`] messages. A
//! per-item sales ledger answers [`kinds::TOP_SELLERS`] — the
//! non-personalized baseline recommender of §2.3 ("top overall sellers on
//! a site") reads it.

use crate::auction::{AuctionOutcome, BidderId, DutchAuction, EnglishAuction, VickreyAuction};
use crate::merchandise::{ItemId, Merchandise};
use crate::negotiation::{SellerPolicy, SellerResponse, SellerSession};
use crate::protocol::{
    kinds, AuctionBid, AuctionClosed, AuctionJoin, AuctionOpen, AuctionStatus, BuyConfirm,
    BuyRequest, CatalogSync, DutchOpen, LedgerQuery, LedgerReply, Listing, NegotiateAccept,
    NegotiateCounter, NegotiateOffer, Offer, QueryRequest, QueryResponse, TopSellers,
    TopSellersList,
};
use agentsim::agent::{Agent, Ctx};
use agentsim::clock::SimDuration;
use agentsim::ids::AgentId;
use agentsim::message::Message;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Agent-type tag of [`MarketplaceAgent`].
pub const MARKETPLACE_TYPE: &str = "marketplace";

#[derive(Debug, Serialize, Deserialize)]
struct OpenNegotiation {
    buyer: AgentId,
    item: u64,
    session: SellerSession,
}

/// Either auction engine behind one listing.
#[derive(Debug, Serialize, Deserialize)]
enum AuctionEngine {
    /// Open ascending-price.
    English(EnglishAuction),
    /// Sealed-bid second-price.
    Sealed(VickreyAuction),
    /// Descending-price clock.
    Dutch(DutchAuction),
}

impl AuctionEngine {
    fn minimum_bid(&self) -> crate::merchandise::Money {
        match self {
            AuctionEngine::English(a) => a.minimum_bid(),
            AuctionEngine::Sealed(a) => a.reserve(),
            AuctionEngine::Dutch(a) => a.current_price(),
        }
    }

    fn leading_bid(&self) -> Option<crate::merchandise::Money> {
        match self {
            AuctionEngine::English(a) => a.leader().map(|(_, p)| p),
            AuctionEngine::Sealed(_) => None, // sealed bids stay sealed
            AuctionEngine::Dutch(_) => None,  // nobody is "leading" a clock
        }
    }

    fn is_sealed(&self) -> bool {
        matches!(self, AuctionEngine::Sealed(_))
    }

    fn is_closed(&self) -> bool {
        match self {
            AuctionEngine::English(a) => a.is_closed(),
            AuctionEngine::Sealed(a) => a.is_closed(),
            AuctionEngine::Dutch(a) => a.is_closed(),
        }
    }

    fn place_bid(
        &mut self,
        bidder: BidderId,
        amount: crate::merchandise::Money,
    ) -> Result<(), crate::auction::AuctionError> {
        match self {
            AuctionEngine::English(a) => a.place_bid(bidder, amount),
            AuctionEngine::Sealed(a) => a.place_bid(bidder, amount),
            AuctionEngine::Dutch(a) => a.place_bid(bidder, amount),
        }
    }

    fn close(&mut self) -> AuctionOutcome {
        match self {
            AuctionEngine::English(a) => a.close(),
            AuctionEngine::Sealed(a) => a.close(),
            AuctionEngine::Dutch(a) => a.close(),
        }
    }
}

/// Timer-tag bit distinguishing a Dutch price-drop tick from an auction
/// close deadline (both carry the item id in the low bits).
const DUTCH_TICK_BIT: u64 = 1 << 63;

#[derive(Debug, Serialize, Deserialize)]
struct OpenAuction {
    engine: AuctionEngine,
    joiners: BTreeSet<AgentId>,
    /// Tick interval for Dutch auctions (None otherwise).
    #[serde(default)]
    tick_us: Option<u64>,
}

/// The marketplace service agent. Static; safe to snapshot.
#[derive(Debug, Serialize, Deserialize)]
pub struct MarketplaceAgent {
    name: String,
    listings: BTreeMap<u64, Listing>,
    sales: BTreeMap<u64, u32>,
    negotiations: Vec<OpenNegotiation>,
    auctions: BTreeMap<u64, OpenAuction>,
    /// Intent-keyed purchase ledger: the confirmation recorded for every
    /// sale that carried an intent id. A repeated [`kinds::BUY_REQUEST`]
    /// under a known intent resends the original confirmation instead of
    /// selling twice, and [`kinds::LEDGER_QUERY`] answers from it —
    /// together these give crashed buyers at-most-once purchases.
    #[serde(default)]
    ledger: BTreeMap<u64, BuyConfirm>,
}

impl MarketplaceAgent {
    /// Create an empty marketplace.
    pub fn new(name: impl Into<String>) -> Self {
        MarketplaceAgent {
            name: name.into(),
            listings: BTreeMap::new(),
            sales: BTreeMap::new(),
            negotiations: Vec::new(),
            auctions: BTreeMap::new(),
            ledger: BTreeMap::new(),
        }
    }

    /// The ledger entry recorded for `intent`, if that purchase committed.
    pub fn ledger_entry(&self, intent: u64) -> Option<&BuyConfirm> {
        self.ledger.get(&intent)
    }

    /// Number of live listings.
    pub fn listing_count(&self) -> usize {
        self.listings.len()
    }

    /// Units sold of `item`.
    pub fn units_sold(&self, item: ItemId) -> u32 {
        self.sales.get(&item.0).copied().unwrap_or(0)
    }

    fn record_sale(&mut self, item: u64) {
        *self.sales.entry(item).or_insert(0) += 1;
    }

    fn merchandise(&self, item: ItemId) -> Option<&Merchandise> {
        self.listings.get(&item.0).map(|l| &l.item)
    }

    fn answer_query(&self, ctx: &mut Ctx<'_>, msg: &Message, req: QueryRequest) {
        let mut scored: Vec<(&Listing, f64)> = self
            .listings
            .values()
            .filter(|l| {
                req.category
                    .as_ref()
                    .map(|c| &l.item.category == c)
                    .unwrap_or(true)
            })
            .map(|l| (l, l.item.keyword_score(&req.keywords)))
            .filter(|(l, s)| {
                *s > 0.0
                    || (req.keywords.is_empty() && req.category.is_some() && {
                        let _ = l;
                        true
                    })
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.item.id.cmp(&b.0.item.id))
        });
        let offers: Vec<Offer> = scored
            .into_iter()
            .take(req.max_results)
            .map(|(l, _)| Offer {
                item: l.item.clone(),
                marketplace: ctx.host(),
                price: l.item.list_price,
            })
            .collect();
        let reply = Message::new(kinds::QUERY_RESPONSE)
            .with_payload(&QueryResponse { offers })
            .expect("query response serializes");
        ctx.reply(msg, reply);
    }

    fn handle_buy(&mut self, ctx: &mut Ctx<'_>, msg: &Message, req: BuyRequest) {
        // A retried buy under an already-committed intent must not sell
        // twice: resend the recorded confirmation instead.
        if let Some(confirm) = req.intent.and_then(|i| self.ledger.get(&i)).cloned() {
            ctx.note(format!(
                "marketplace {}: duplicate buy for intent {} answered from ledger",
                self.name,
                req.intent.unwrap_or(0)
            ));
            let reply = Message::new(kinds::BUY_CONFIRM)
                .with_payload(&confirm)
                .expect("buy confirm serializes");
            ctx.reply(msg, reply);
            return;
        }
        match self.merchandise(req.item).cloned() {
            Some(item) => {
                self.record_sale(req.item.0);
                let price = item.list_price;
                let confirm = BuyConfirm { item, price };
                if let Some(intent) = req.intent {
                    self.ledger.insert(intent, confirm.clone());
                }
                let reply = Message::new(kinds::BUY_CONFIRM)
                    .with_payload(&confirm)
                    .expect("buy confirm serializes");
                ctx.reply(msg, reply);
            }
            None => {
                ctx.reply(msg, Message::new(kinds::BUY_REJECT));
            }
        }
    }

    fn handle_ledger_query(&self, ctx: &mut Ctx<'_>, msg: &Message, query: LedgerQuery) {
        let reply = Message::new(kinds::LEDGER_REPLY)
            .with_payload(&LedgerReply {
                intent: query.intent,
                committed: self.ledger.get(&query.intent).cloned(),
            })
            .expect("ledger reply serializes");
        ctx.reply(msg, reply);
    }

    fn handle_negotiate(&mut self, ctx: &mut Ctx<'_>, msg: &Message, offer: NegotiateOffer) {
        let Some(buyer) = msg.from else {
            ctx.note("marketplace: negotiation from outside the world ignored");
            return;
        };
        let Some(listing) = self.listings.get(&offer.item.0) else {
            ctx.reply(msg, Message::new(kinds::NEGOTIATE_REJECT));
            return;
        };
        let policy = SellerPolicy {
            list: listing.item.list_price,
            reservation: listing.reservation,
            concession: listing.concession,
            strategy: Default::default(),
        };
        let idx = self
            .negotiations
            .iter()
            .position(|n| n.buyer == buyer && n.item == offer.item.0);
        let idx = match idx {
            Some(i) => i,
            None => {
                self.negotiations.push(OpenNegotiation {
                    buyer,
                    item: offer.item.0,
                    session: SellerSession::open(policy),
                });
                self.negotiations.len() - 1
            }
        };
        match self.negotiations[idx].session.respond(offer.offer) {
            SellerResponse::Accept(price) => {
                let item = self
                    .merchandise(offer.item)
                    .cloned()
                    .expect("listing checked above");
                self.negotiations.swap_remove(idx);
                self.record_sale(offer.item.0);
                if let Some(intent) = offer.intent {
                    self.ledger.insert(
                        intent,
                        BuyConfirm {
                            item: item.clone(),
                            price,
                        },
                    );
                }
                let reply = Message::new(kinds::NEGOTIATE_ACCEPT)
                    .with_payload(&NegotiateAccept { item, price })
                    .expect("accept serializes");
                ctx.reply(msg, reply);
            }
            SellerResponse::Counter(ask) => {
                let reply = Message::new(kinds::NEGOTIATE_COUNTER)
                    .with_payload(&NegotiateCounter {
                        item: offer.item,
                        ask,
                    })
                    .expect("counter serializes");
                ctx.reply(msg, reply);
            }
        }
    }

    fn auction_status(&self, item: ItemId) -> Option<AuctionStatus> {
        self.auctions.get(&item.0).map(|a| AuctionStatus {
            item,
            minimum_bid: a.engine.minimum_bid(),
            leading_bid: a.engine.leading_bid(),
            open: !a.engine.is_closed(),
            sealed: a.engine.is_sealed(),
        })
    }

    fn handle_auction_open(&mut self, ctx: &mut Ctx<'_>, msg: &Message, open: AuctionOpen) {
        if self.merchandise(open.item).is_none() {
            ctx.reply(msg, Message::new(kinds::BID_REJECTED));
            return;
        }
        if self.auctions.contains_key(&open.item.0) {
            // one auction per item at a time
            if let Some(status) = self.auction_status(open.item) {
                let reply = Message::new(kinds::AUCTION_STATUS)
                    .with_payload(&status)
                    .expect("status serializes");
                ctx.reply(msg, reply);
            }
            return;
        }
        let engine = if open.sealed {
            AuctionEngine::Sealed(VickreyAuction::open(open.item, open.reserve))
        } else {
            AuctionEngine::English(EnglishAuction::open(
                open.item,
                open.reserve,
                open.increment,
            ))
        };
        self.auctions.insert(
            open.item.0,
            OpenAuction {
                engine,
                joiners: BTreeSet::new(),
                tick_us: None,
            },
        );
        ctx.set_timer(SimDuration::from_micros(open.duration_us), open.item.0);
        ctx.note(format!(
            "auction opened on {} ({})",
            open.item,
            if open.sealed { "sealed" } else { "english" }
        ));
        if let Some(status) = self.auction_status(open.item) {
            let reply = Message::new(kinds::AUCTION_STATUS)
                .with_payload(&status)
                .expect("status serializes");
            ctx.reply(msg, reply);
        }
    }

    fn handle_dutch_open(&mut self, ctx: &mut Ctx<'_>, msg: &Message, open: DutchOpen) {
        if self.merchandise(open.item).is_none() || self.auctions.contains_key(&open.item.0) {
            ctx.reply(msg, Message::new(kinds::BID_REJECTED));
            return;
        }
        let engine = AuctionEngine::Dutch(DutchAuction::open(
            open.item,
            open.start,
            open.floor,
            open.decrement,
        ));
        self.auctions.insert(
            open.item.0,
            OpenAuction {
                engine,
                joiners: BTreeSet::new(),
                tick_us: Some(open.tick_us),
            },
        );
        ctx.set_timer(
            SimDuration::from_micros(open.tick_us),
            open.item.0 | DUTCH_TICK_BIT,
        );
        ctx.note(format!("auction opened on {} (dutch)", open.item));
        if let Some(status) = self.auction_status(open.item) {
            let reply = Message::new(kinds::AUCTION_STATUS)
                .with_payload(&status)
                .expect("status serializes");
            ctx.reply(msg, reply);
        }
    }

    /// One Dutch clock tick: drop the price and tell the joiners, or
    /// settle unsold at the floor.
    fn dutch_tick(&mut self, ctx: &mut Ctx<'_>, item_key: u64) {
        let Some(entry) = self.auctions.get_mut(&item_key) else {
            return; // sold (and settled) before this tick fired
        };
        let AuctionEngine::Dutch(dutch) = &mut entry.engine else {
            return;
        };
        if dutch.is_closed() {
            return;
        }
        if dutch.tick() {
            let tick_us = entry.tick_us.unwrap_or(1_000_000);
            let joiners: Vec<AgentId> = entry.joiners.iter().copied().collect();
            let status = self.auction_status(ItemId(item_key)).expect("entry exists");
            for joiner in joiners {
                let notice = Message::new(kinds::AUCTION_STATUS)
                    .with_payload(&status)
                    .expect("status serializes");
                ctx.send(joiner, notice);
            }
            ctx.set_timer(SimDuration::from_micros(tick_us), item_key | DUTCH_TICK_BIT);
        } else {
            // floored out: settle unsold
            self.settle_auction(ctx, item_key);
        }
    }

    fn handle_auction_join(&mut self, ctx: &mut Ctx<'_>, msg: &Message, join: AuctionJoin) {
        let Some(from) = msg.from else {
            return;
        };
        let Some(entry) = self.auctions.get_mut(&join.item.0) else {
            ctx.reply(msg, Message::new(kinds::BID_REJECTED));
            return;
        };
        entry.joiners.insert(from);
        let status = self.auction_status(join.item).expect("entry exists");
        let reply = Message::new(kinds::AUCTION_STATUS)
            .with_payload(&status)
            .expect("status serializes");
        ctx.reply(msg, reply);
    }

    fn handle_auction_bid(&mut self, ctx: &mut Ctx<'_>, msg: &Message, bid: AuctionBid) {
        let Some(from) = msg.from else {
            return;
        };
        let Some(entry) = self.auctions.get_mut(&bid.item.0) else {
            ctx.reply(msg, Message::new(kinds::BID_REJECTED));
            return;
        };
        entry.joiners.insert(from);
        let sealed = entry.engine.is_sealed();
        match entry.engine.place_bid(BidderId(from.0), bid.amount) {
            Ok(()) => {
                let joiners: Vec<AgentId> = entry.joiners.iter().copied().collect();
                let settled_by_bid = entry.engine.is_closed(); // Dutch: first taker wins
                let status = self.auction_status(bid.item).expect("entry exists");
                let reply = Message::new(kinds::BID_ACCEPTED)
                    .with_payload(&status)
                    .expect("status serializes");
                ctx.reply(msg, reply);
                if settled_by_bid {
                    self.settle_auction(ctx, bid.item.0);
                    return;
                }
                // outbid notification (open auctions only — sealed bids
                // are secret): every other joiner learns the new price
                // floor and may counter-bid
                if !sealed {
                    for joiner in joiners {
                        if joiner != from {
                            let notice = Message::new(kinds::AUCTION_STATUS)
                                .with_payload(&status)
                                .expect("status serializes");
                            ctx.send(joiner, notice);
                        }
                    }
                }
            }
            Err(_) => {
                let status = self.auction_status(bid.item).expect("entry exists");
                let reply = Message::new(kinds::BID_REJECTED)
                    .with_payload(&status)
                    .expect("status serializes");
                ctx.reply(msg, reply);
            }
        }
    }

    fn settle_auction(&mut self, ctx: &mut Ctx<'_>, item_key: u64) {
        let Some(mut entry) = self.auctions.remove(&item_key) else {
            return;
        };
        let outcome = entry.engine.close();
        if matches!(outcome, AuctionOutcome::Sold { .. }) {
            self.record_sale(item_key);
        }
        let Some(item) = self.merchandise(ItemId(item_key)).cloned() else {
            return;
        };
        ctx.note(format!("auction closed on {}", ItemId(item_key)));
        for joiner in &entry.joiners {
            let you_won = matches!(
                outcome,
                AuctionOutcome::Sold { winner, .. } if winner == BidderId(joiner.0)
            );
            let notice = Message::new(kinds::AUCTION_CLOSED)
                .with_payload(&AuctionClosed {
                    item: item.clone(),
                    outcome,
                    you_won,
                })
                .expect("closed notice serializes");
            ctx.send(*joiner, notice);
        }
    }

    fn handle_top_sellers(&self, ctx: &mut Ctx<'_>, msg: &Message, req: TopSellers) {
        let mut ranked: Vec<(&Listing, u32)> = self
            .sales
            .iter()
            .filter_map(|(item, n)| self.listings.get(item).map(|l| (l, *n)))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.item.id.cmp(&b.0.item.id)));
        let items: Vec<(Merchandise, u32)> = ranked
            .into_iter()
            .take(req.k)
            .map(|(l, n)| (l.item.clone(), n))
            .collect();
        let reply = Message::new(kinds::TOP_SELLERS_LIST)
            .with_payload(&TopSellersList { items })
            .expect("top sellers serializes");
        ctx.reply(msg, reply);
    }
}

impl Agent for MarketplaceAgent {
    fn agent_type(&self) -> &'static str {
        MARKETPLACE_TYPE
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("marketplace state serializes")
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        match msg.kind.as_str() {
            kinds::CATALOG_SYNC => {
                if let Ok(sync) = msg.payload_as::<CatalogSync>() {
                    for listing in sync.listings {
                        self.listings.insert(listing.item.id.0, listing);
                    }
                    ctx.reply(&msg, Message::new(kinds::CATALOG_ACK));
                }
            }
            kinds::QUERY_REQUEST => {
                if let Ok(req) = msg.payload_as::<QueryRequest>() {
                    self.answer_query(ctx, &msg, req);
                }
            }
            kinds::BUY_REQUEST => {
                if let Ok(req) = msg.payload_as::<BuyRequest>() {
                    self.handle_buy(ctx, &msg, req);
                }
            }
            kinds::NEGOTIATE_OFFER => {
                if let Ok(offer) = msg.payload_as::<NegotiateOffer>() {
                    self.handle_negotiate(ctx, &msg, offer);
                }
            }
            kinds::AUCTION_OPEN => {
                if let Ok(open) = msg.payload_as::<AuctionOpen>() {
                    self.handle_auction_open(ctx, &msg, open);
                }
            }
            kinds::DUTCH_OPEN => {
                if let Ok(open) = msg.payload_as::<DutchOpen>() {
                    self.handle_dutch_open(ctx, &msg, open);
                }
            }
            kinds::AUCTION_JOIN => {
                if let Ok(join) = msg.payload_as::<AuctionJoin>() {
                    self.handle_auction_join(ctx, &msg, join);
                }
            }
            kinds::AUCTION_BID => {
                if let Ok(bid) = msg.payload_as::<AuctionBid>() {
                    self.handle_auction_bid(ctx, &msg, bid);
                }
            }
            kinds::TOP_SELLERS => {
                if let Ok(req) = msg.payload_as::<TopSellers>() {
                    self.handle_top_sellers(ctx, &msg, req);
                }
            }
            kinds::LEDGER_QUERY => {
                if let Ok(query) = msg.payload_as::<LedgerQuery>() {
                    self.handle_ledger_query(ctx, &msg, query);
                }
            }
            other => {
                ctx.note(format!("marketplace {}: unhandled kind {other}", self.name));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag & DUTCH_TICK_BIT != 0 {
            self.dutch_tick(ctx, tag & !DUTCH_TICK_BIT);
        } else {
            self.settle_auction(ctx, tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merchandise::{CategoryPath, Money};
    use crate::terms::TermVector;
    use agentsim::sim::SimWorld;

    fn listing(id: u64, name: &str, price: u64) -> Listing {
        Listing {
            item: Merchandise {
                id: ItemId(id),
                name: name.into(),
                category: CategoryPath::new("books", "programming"),
                terms: TermVector::from_pairs([(name.to_lowercase(), 1.0)]),
                list_price: Money::from_units(price),
                seller: 1,
            },
            reservation: Money::from_units(price * 7 / 10),
            concession: 0.1,
        }
    }

    /// Test probe: records the last reply it received.
    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Probe {
        last_kind: Option<String>,
        last_payload: Option<serde_json::Value>,
        kinds_seen: Vec<String>,
    }

    impl Agent for Probe {
        fn agent_type(&self) -> &'static str {
            "probe"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if let Some(fwd) = msg.payload.get("__forward_to_market") {
                // instruction: send inner message to the marketplace
                let market = AgentId(fwd.as_u64().unwrap());
                let kind = msg.payload["kind"].as_str().unwrap().to_string();
                let inner = Message::new(kind).carrying(msg.payload.project("payload"));
                ctx.send(market, inner);
                return;
            }
            self.last_kind = Some(msg.kind.to_string());
            self.kinds_seen.push(msg.kind.to_string());
            self.last_payload = Some(msg.payload.to_value());
        }
    }

    struct Fixture {
        world: SimWorld,
        market: AgentId,
        probe: AgentId,
    }

    fn fixture() -> Fixture {
        let mut world = SimWorld::new(77);
        world
            .registry_mut()
            .register_serde::<MarketplaceAgent>(MARKETPLACE_TYPE);
        world.registry_mut().register_serde::<Probe>("probe");
        let mh = world.add_host("market");
        let bh = world.add_host("buyer");
        let mut m = MarketplaceAgent::new("m1");
        for (i, (name, price)) in [("Rust Book", 30u64), ("Go Book", 25), ("Cook Book", 20)]
            .iter()
            .enumerate()
        {
            m.listings
                .insert(i as u64 + 1, listing(i as u64 + 1, name, *price));
        }
        let market = world.create_agent(mh, Box::new(m)).unwrap();
        let probe = world.create_agent(bh, Box::new(Probe::default())).unwrap();
        Fixture {
            world,
            market,
            probe,
        }
    }

    /// Sends `kind`+`payload` from the probe to the market and runs idle.
    fn via_probe<T: Serialize>(f: &mut Fixture, kind: &str, payload: &T) {
        send_via_probe(f, kind, payload);
        f.world.run_until_idle();
    }

    /// Sends without draining the event queue (so pending timers, e.g. an
    /// auction deadline, do not fire); runs a bounded slice of time.
    fn via_probe_bounded<T: Serialize>(f: &mut Fixture, kind: &str, payload: &T) {
        send_via_probe(f, kind, payload);
        f.world
            .run_for(agentsim::clock::SimDuration::from_millis(10));
    }

    fn send_via_probe<T: Serialize>(f: &mut Fixture, kind: &str, payload: &T) {
        let instruction = serde_json::json!({
            "__forward_to_market": f.market.0,
            "kind": kind,
            "payload": serde_json::to_value(payload).unwrap(),
        });
        let mut msg = Message::new("instruction");
        msg.payload = instruction.into();
        f.world.send_external(f.probe, msg).unwrap();
    }

    fn probe_state(f: &Fixture) -> Probe {
        serde_json::from_value(f.world.snapshot_of(f.probe).unwrap()).unwrap()
    }

    #[test]
    fn query_returns_ranked_offers() {
        let mut f = fixture();
        via_probe(
            &mut f,
            kinds::QUERY_REQUEST,
            &QueryRequest {
                keywords: vec!["book".into()],
                category: None,
                max_results: 10,
            },
        );
        let p = probe_state(&f);
        assert_eq!(p.last_kind.as_deref(), Some(kinds::QUERY_RESPONSE));
        let resp: QueryResponse = serde_json::from_value(p.last_payload.unwrap()).unwrap();
        assert_eq!(resp.offers.len(), 3);
    }

    #[test]
    fn query_respects_category_and_limit() {
        let mut f = fixture();
        via_probe(
            &mut f,
            kinds::QUERY_REQUEST,
            &QueryRequest {
                keywords: vec!["book".into()],
                category: Some(CategoryPath::new("books", "programming")),
                max_results: 1,
            },
        );
        let p = probe_state(&f);
        let resp: QueryResponse = serde_json::from_value(p.last_payload.unwrap()).unwrap();
        assert_eq!(resp.offers.len(), 1);
    }

    #[test]
    fn buy_confirms_and_counts_sale() {
        let mut f = fixture();
        via_probe(
            &mut f,
            kinds::BUY_REQUEST,
            &BuyRequest {
                item: ItemId(1),
                intent: None,
            },
        );
        let p = probe_state(&f);
        assert_eq!(p.last_kind.as_deref(), Some(kinds::BUY_CONFIRM));
        let market: MarketplaceAgent =
            serde_json::from_value(f.world.snapshot_of(f.market).unwrap()).unwrap();
        assert_eq!(market.units_sold(ItemId(1)), 1);
    }

    #[test]
    fn buy_unknown_item_rejected() {
        let mut f = fixture();
        via_probe(
            &mut f,
            kinds::BUY_REQUEST,
            &BuyRequest {
                item: ItemId(999),
                intent: None,
            },
        );
        assert_eq!(
            probe_state(&f).last_kind.as_deref(),
            Some(kinds::BUY_REJECT)
        );
    }

    #[test]
    fn negotiation_low_offer_gets_counter_high_offer_accepted() {
        let mut f = fixture();
        via_probe(
            &mut f,
            kinds::NEGOTIATE_OFFER,
            &NegotiateOffer {
                item: ItemId(1),
                offer: Money::from_units(1),
                intent: None,
            },
        );
        assert_eq!(
            probe_state(&f).last_kind.as_deref(),
            Some(kinds::NEGOTIATE_COUNTER)
        );
        via_probe(
            &mut f,
            kinds::NEGOTIATE_OFFER,
            &NegotiateOffer {
                item: ItemId(1),
                offer: Money::from_units(30),
                intent: None,
            },
        );
        let p = probe_state(&f);
        assert_eq!(p.last_kind.as_deref(), Some(kinds::NEGOTIATE_ACCEPT));
        let accept: NegotiateAccept = serde_json::from_value(p.last_payload.unwrap()).unwrap();
        assert!(accept.price <= Money::from_units(30));
    }

    #[test]
    fn negotiation_unknown_item_rejected() {
        let mut f = fixture();
        via_probe(
            &mut f,
            kinds::NEGOTIATE_OFFER,
            &NegotiateOffer {
                item: ItemId(42),
                offer: Money::from_units(10),
                intent: None,
            },
        );
        assert_eq!(
            probe_state(&f).last_kind.as_deref(),
            Some(kinds::NEGOTIATE_REJECT)
        );
    }

    #[test]
    fn auction_full_cycle_with_winner_notification() {
        let mut f = fixture();
        via_probe_bounded(
            &mut f,
            kinds::AUCTION_OPEN,
            &AuctionOpen {
                item: ItemId(2),
                reserve: Money::from_units(10),
                increment: Money::from_units(1),
                duration_us: 1_000_000,
                sealed: false,
            },
        );
        assert_eq!(
            probe_state(&f).last_kind.as_deref(),
            Some(kinds::AUCTION_STATUS)
        );
        via_probe_bounded(
            &mut f,
            kinds::AUCTION_BID,
            &AuctionBid {
                item: ItemId(2),
                amount: Money::from_units(12),
            },
        );
        assert_eq!(
            probe_state(&f).last_kind.as_deref(),
            Some(kinds::BID_ACCEPTED)
        );
        // low bid rejected
        via_probe_bounded(
            &mut f,
            kinds::AUCTION_BID,
            &AuctionBid {
                item: ItemId(2),
                amount: Money::from_units(5),
            },
        );
        assert_eq!(
            probe_state(&f).last_kind.as_deref(),
            Some(kinds::BID_REJECTED)
        );
        // run past the deadline: timer fires, auction settles
        f.world.run_until_idle();
        let p = probe_state(&f);
        assert_eq!(p.last_kind.as_deref(), Some(kinds::AUCTION_CLOSED));
        let closed: AuctionClosed = serde_json::from_value(p.last_payload.unwrap()).unwrap();
        assert!(closed.you_won);
        assert_eq!(closed.outcome.price(), Some(Money::from_units(12)));
        let market: MarketplaceAgent =
            serde_json::from_value(f.world.snapshot_of(f.market).unwrap()).unwrap();
        assert_eq!(market.units_sold(ItemId(2)), 1);
    }

    #[test]
    fn sealed_auction_hides_bids_and_settles_second_price() {
        let mut f = fixture();
        via_probe_bounded(
            &mut f,
            kinds::AUCTION_OPEN,
            &AuctionOpen {
                item: ItemId(2),
                reserve: Money::from_units(10),
                increment: Money::from_units(0),
                duration_us: 1_000_000,
                sealed: true,
            },
        );
        let p = probe_state(&f);
        assert_eq!(p.last_kind.as_deref(), Some(kinds::AUCTION_STATUS));
        let status: AuctionStatus = serde_json::from_value(p.last_payload.unwrap()).unwrap();
        assert!(status.sealed);
        assert_eq!(status.leading_bid, None);
        // the probe seals a bid; status must still hide it
        via_probe_bounded(
            &mut f,
            kinds::AUCTION_BID,
            &AuctionBid {
                item: ItemId(2),
                amount: Money::from_units(40),
            },
        );
        let p = probe_state(&f);
        assert_eq!(p.last_kind.as_deref(), Some(kinds::BID_ACCEPTED));
        let status: AuctionStatus = serde_json::from_value(p.last_payload.unwrap()).unwrap();
        assert_eq!(status.leading_bid, None, "sealed bids must stay sealed");
        // duplicate sealed bid rejected
        via_probe_bounded(
            &mut f,
            kinds::AUCTION_BID,
            &AuctionBid {
                item: ItemId(2),
                amount: Money::from_units(50),
            },
        );
        assert_eq!(
            probe_state(&f).last_kind.as_deref(),
            Some(kinds::BID_REJECTED)
        );
        // sole sealed bidder wins at the reserve
        f.world.run_until_idle();
        let p = probe_state(&f);
        assert_eq!(p.last_kind.as_deref(), Some(kinds::AUCTION_CLOSED));
        let closed: AuctionClosed = serde_json::from_value(p.last_payload.unwrap()).unwrap();
        assert!(closed.you_won);
        assert_eq!(closed.outcome.price(), Some(Money::from_units(10)));
    }

    #[test]
    fn dutch_auction_ticks_down_and_floors_out_unsold() {
        let mut f = fixture();
        via_probe_bounded(
            &mut f,
            kinds::DUTCH_OPEN,
            &DutchOpen {
                item: ItemId(1),
                start: Money::from_units(20),
                floor: Money::from_units(10),
                decrement: Money::from_units(5),
                tick_us: 1_000_000,
            },
        );
        let p = probe_state(&f);
        assert_eq!(p.last_kind.as_deref(), Some(kinds::AUCTION_STATUS));
        let status: AuctionStatus = serde_json::from_value(p.last_payload.unwrap()).unwrap();
        assert_eq!(status.minimum_bid, Money::from_units(20));
        // join so we hear the price drops and the close
        via_probe_bounded(
            &mut f,
            kinds::AUCTION_JOIN,
            &AuctionJoin { item: ItemId(1) },
        );
        // a Dutch clock closes at the floor on its own, so running idle
        // is safe
        f.world.run_until_idle();
        let p = probe_state(&f);
        assert_eq!(p.last_kind.as_deref(), Some(kinds::AUCTION_CLOSED));
        let drops = p
            .kinds_seen
            .iter()
            .filter(|k| *k == kinds::AUCTION_STATUS)
            .count();
        assert!(
            drops >= 2,
            "price-drop broadcasts must have arrived: {drops}"
        );
        let closed: AuctionClosed = serde_json::from_value(p.last_payload.unwrap()).unwrap();
        assert_eq!(
            closed.outcome.price(),
            None,
            "nobody bid: unsold at the floor"
        );
    }

    #[test]
    fn dutch_auction_first_bid_settles_immediately() {
        let mut f = fixture();
        via_probe_bounded(
            &mut f,
            kinds::DUTCH_OPEN,
            &DutchOpen {
                item: ItemId(1),
                start: Money::from_units(20),
                floor: Money::from_units(10),
                decrement: Money::from_units(5),
                tick_us: 60_000_000, // slow clock: stays at $20
            },
        );
        via_probe_bounded(
            &mut f,
            kinds::AUCTION_BID,
            &AuctionBid {
                item: ItemId(1),
                amount: Money::from_units(25),
            },
        );
        let p = probe_state(&f);
        // accepted, then immediately closed at the clock price
        assert!(p.kinds_seen.contains(&kinds::BID_ACCEPTED.to_string()));
        assert_eq!(p.last_kind.as_deref(), Some(kinds::AUCTION_CLOSED));
        let closed: AuctionClosed = serde_json::from_value(p.last_payload.unwrap()).unwrap();
        assert!(closed.you_won);
        assert_eq!(
            closed.outcome.price(),
            Some(Money::from_units(20)),
            "winner pays the clock price, not the bid"
        );
        let market: MarketplaceAgent =
            serde_json::from_value(f.world.snapshot_of(f.market).unwrap()).unwrap();
        assert_eq!(market.units_sold(ItemId(1)), 1);
    }

    #[test]
    fn top_sellers_ranks_by_units() {
        let mut f = fixture();
        for _ in 0..3 {
            via_probe(
                &mut f,
                kinds::BUY_REQUEST,
                &BuyRequest {
                    item: ItemId(2),
                    intent: None,
                },
            );
        }
        via_probe(
            &mut f,
            kinds::BUY_REQUEST,
            &BuyRequest {
                item: ItemId(1),
                intent: None,
            },
        );
        via_probe(&mut f, kinds::TOP_SELLERS, &TopSellers { k: 2 });
        let p = probe_state(&f);
        assert_eq!(p.last_kind.as_deref(), Some(kinds::TOP_SELLERS_LIST));
        let list: TopSellersList = serde_json::from_value(p.last_payload.unwrap()).unwrap();
        assert_eq!(list.items.len(), 2);
        assert_eq!(list.items[0].0.id, ItemId(2));
        assert_eq!(list.items[0].1, 3);
    }
}
