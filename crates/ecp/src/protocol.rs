//! Typed message payloads and kind constants for the e-commerce platform.
//!
//! Every inter-agent message has a string `kind` (listed here as
//! constants) and a serde payload (the structs here). Keeping them in one
//! module makes the wire protocol auditable at a glance — the paper's
//! §4.1 principle 5: *"The MBA created by the recommendation mechanism
//! will use the same message type."*

use crate::auction::AuctionOutcome;
use crate::merchandise::{CategoryPath, ItemId, Merchandise, Money};
use agentsim::ids::{AgentId, HostId};
use serde::{Deserialize, Serialize};

/// Message kinds used across the platform.
pub mod kinds {
    /// Register a server with the coordinator.
    pub const REGISTER_SERVER: &str = "register-server";
    /// Coordinator acknowledgement of a registration.
    pub const REGISTER_ACK: &str = "register-ack";
    /// Ask the coordinator for servers of a role.
    pub const LIST_SERVERS: &str = "list-servers";
    /// Coordinator's answer to [`LIST_SERVERS`].
    pub const SERVER_LIST: &str = "server-list";
    /// Ask the coordinator to provision a Buyer Agent Server (Fig 4.1
    /// step 1).
    pub const REQUEST_BUYER_SERVER: &str = "request-buyer-server";

    /// Seller pushes (part of) its catalog to a marketplace.
    pub const CATALOG_SYNC: &str = "catalog-sync";
    /// Marketplace confirms a catalog sync.
    pub const CATALOG_ACK: &str = "catalog-ack";

    /// Keyword/category query against a marketplace.
    pub const QUERY_REQUEST: &str = "query-request";
    /// Offers answering a query.
    pub const QUERY_RESPONSE: &str = "query-response";

    /// Buy an item at its listed price.
    pub const BUY_REQUEST: &str = "buy-request";
    /// Purchase confirmation.
    pub const BUY_CONFIRM: &str = "buy-confirm";
    /// Purchase rejection (unknown item).
    pub const BUY_REJECT: &str = "buy-reject";

    /// Buyer's price offer in a negotiation.
    pub const NEGOTIATE_OFFER: &str = "negotiate-offer";
    /// Seller's counter-offer.
    pub const NEGOTIATE_COUNTER: &str = "negotiate-counter";
    /// Seller accepts; deal closed at the carried price.
    pub const NEGOTIATE_ACCEPT: &str = "negotiate-accept";
    /// Negotiation refused (unknown item).
    pub const NEGOTIATE_REJECT: &str = "negotiate-reject";

    /// Open an auction on a listed item.
    pub const AUCTION_OPEN: &str = "auction-open";
    /// Open a descending-price (Dutch) auction on a listed item.
    pub const DUTCH_OPEN: &str = "dutch-open";
    /// Join an open auction (subscribe to its close).
    pub const AUCTION_JOIN: &str = "auction-join";
    /// Auction state (minimum acceptable bid, current leader).
    pub const AUCTION_STATUS: &str = "auction-status";
    /// Place a bid.
    pub const AUCTION_BID: &str = "auction-bid";
    /// Bid acknowledged as the new high bid.
    pub const BID_ACCEPTED: &str = "bid-accepted";
    /// Bid refused (too low / closed / unknown auction).
    pub const BID_REJECTED: &str = "bid-rejected";
    /// Auction settled; sent to every joiner.
    pub const AUCTION_CLOSED: &str = "auction-closed";

    /// Ask a marketplace for its best-selling items.
    pub const TOP_SELLERS: &str = "top-sellers";
    /// Answer to [`TOP_SELLERS`].
    pub const TOP_SELLERS_LIST: &str = "top-sellers-list";

    /// Ask a marketplace whether a purchase intent committed (crash
    /// recovery: resolve an in-doubt purchase before retrying).
    pub const LEDGER_QUERY: &str = "ledger-query";
    /// Answer to [`LEDGER_QUERY`].
    pub const LEDGER_REPLY: &str = "ledger-reply";
}

/// Roles a server can register under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServerRole {
    /// A marketplace hosting trading services.
    Marketplace,
    /// A seller server providing merchandise.
    Seller,
    /// A buyer agent server (recommendation mechanism).
    BuyerServer,
}

/// Registration payload ([`kinds::REGISTER_SERVER`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterServer {
    /// Role being registered.
    pub role: ServerRole,
    /// Host the server runs on.
    pub host: HostId,
    /// The server's front agent.
    pub agent: AgentId,
    /// Display name.
    pub name: String,
}

/// Server listing request ([`kinds::LIST_SERVERS`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ListServers {
    /// Role to filter by.
    pub role: ServerRole,
}

/// One entry of a [`ServerList`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerInfo {
    /// Registered role.
    pub role: ServerRole,
    /// Host id.
    pub host: HostId,
    /// Front agent id.
    pub agent: AgentId,
    /// Display name.
    pub name: String,
}

/// Answer to [`kinds::LIST_SERVERS`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerList {
    /// Matching servers, registration order.
    pub servers: Vec<ServerInfo>,
}

/// Ask the coordinator to provision a Buyer Agent Server on `host`
/// ([`kinds::REQUEST_BUYER_SERVER`], Fig 4.1 step 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestBuyerServer {
    /// Host that wants to become a Buyer Agent Server.
    pub host: HostId,
    /// Agent-type tag of the BSMA implementation to instantiate.
    pub bsma_type: String,
    /// Extra state handed to the BSMA factory.
    pub config: serde_json::Value,
}

/// Catalog push from a seller ([`kinds::CATALOG_SYNC`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogSync {
    /// Seller server id.
    pub seller: u32,
    /// Items offered, with their negotiation policies.
    pub listings: Vec<Listing>,
}

/// One marketplace listing: an item plus its seller-side negotiation
/// policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Listing {
    /// The item.
    pub item: Merchandise,
    /// Reservation price (lowest the seller accepts in negotiation).
    pub reservation: Money,
    /// Per-round concession rate.
    pub concession: f64,
}

/// Query payload ([`kinds::QUERY_REQUEST`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Free-text keywords.
    pub keywords: Vec<String>,
    /// Optional category filter.
    pub category: Option<CategoryPath>,
    /// Cap on returned offers.
    pub max_results: usize,
}

/// One offer inside a [`QueryResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Offer {
    /// The offered item.
    pub item: Merchandise,
    /// Marketplace hosting the listing.
    pub marketplace: HostId,
    /// Current asking price.
    pub price: Money,
}

/// Answer to a query ([`kinds::QUERY_RESPONSE`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResponse {
    /// Matching offers, best match first.
    pub offers: Vec<Offer>,
}

/// Direct purchase ([`kinds::BUY_REQUEST`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuyRequest {
    /// Item to buy at list price.
    pub item: ItemId,
    /// Purchase intent id, stable across retries of the same buy. The
    /// marketplace keeps an intent-keyed ledger and answers a repeated
    /// intent with the original confirmation instead of selling twice
    /// (at-most-once purchases). `None` = legacy fire-and-forget buy.
    #[serde(default)]
    pub intent: Option<u64>,
}

/// Purchase confirmation ([`kinds::BUY_CONFIRM`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuyConfirm {
    /// Purchased item.
    pub item: Merchandise,
    /// Price paid.
    pub price: Money,
}

/// Negotiation offer from a buyer ([`kinds::NEGOTIATE_OFFER`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NegotiateOffer {
    /// Item under negotiation.
    pub item: ItemId,
    /// Offered price.
    pub offer: Money,
    /// Purchase intent id (see [`BuyRequest::intent`]); an accepted
    /// negotiation records into the ledger under this id.
    #[serde(default)]
    pub intent: Option<u64>,
}

/// Seller counter ([`kinds::NEGOTIATE_COUNTER`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NegotiateCounter {
    /// Item under negotiation.
    pub item: ItemId,
    /// Counter ask.
    pub ask: Money,
}

/// Deal closed ([`kinds::NEGOTIATE_ACCEPT`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NegotiateAccept {
    /// Item sold.
    pub item: Merchandise,
    /// Agreed price.
    pub price: Money,
}

/// Open an auction ([`kinds::AUCTION_OPEN`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuctionOpen {
    /// Item to auction (must be listed).
    pub item: ItemId,
    /// Reserve price.
    pub reserve: Money,
    /// Minimum bid increment (ignored for sealed auctions).
    pub increment: Money,
    /// Auction duration in simulated microseconds.
    pub duration_us: u64,
    /// `true` for a sealed-bid second-price (Vickrey) auction; `false`
    /// (default) for open ascending (English).
    #[serde(default)]
    pub sealed: bool,
}

/// Open a Dutch auction ([`kinds::DUTCH_OPEN`]): the price starts at
/// `start` and drops by `decrement` every `tick_us` of simulated time
/// until someone takes it or it reaches `floor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DutchOpen {
    /// Item to auction (must be listed).
    pub item: ItemId,
    /// Opening (high) price.
    pub start: Money,
    /// Lowest price before closing unsold.
    pub floor: Money,
    /// Price drop per tick.
    pub decrement: Money,
    /// Microseconds between price drops.
    pub tick_us: u64,
}

/// Join an auction ([`kinds::AUCTION_JOIN`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuctionJoin {
    /// Auctioned item.
    pub item: ItemId,
}

/// Auction state ([`kinds::AUCTION_STATUS`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuctionStatus {
    /// Auctioned item.
    pub item: ItemId,
    /// Lowest acceptable next bid (the reserve, for sealed auctions).
    pub minimum_bid: Money,
    /// Current high bid — always `None` for sealed auctions.
    pub leading_bid: Option<Money>,
    /// Whether the auction is still open.
    pub open: bool,
    /// Whether this is a sealed-bid (Vickrey) auction: bid your true
    /// limit once; the winner pays the second price.
    #[serde(default)]
    pub sealed: bool,
}

/// Place a bid ([`kinds::AUCTION_BID`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuctionBid {
    /// Auctioned item.
    pub item: ItemId,
    /// Bid amount.
    pub amount: Money,
}

/// Auction settled ([`kinds::AUCTION_CLOSED`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuctionClosed {
    /// Auctioned item.
    pub item: Merchandise,
    /// Result.
    pub outcome: AuctionOutcome,
    /// Whether the receiving joiner is the winner.
    pub you_won: bool,
}

/// Ask whether an intent committed ([`kinds::LEDGER_QUERY`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedgerQuery {
    /// The purchase intent in doubt.
    pub intent: u64,
}

/// Answer to [`kinds::LEDGER_QUERY`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerReply {
    /// The queried intent.
    pub intent: u64,
    /// The recorded sale, if the intent committed; `None` = the
    /// marketplace never completed a sale under this intent.
    pub committed: Option<BuyConfirm>,
}

/// Top-sellers request ([`kinds::TOP_SELLERS`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopSellers {
    /// How many items to return.
    pub k: usize,
}

/// Answer to [`kinds::TOP_SELLERS`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopSellersList {
    /// `(item, units sold)`, best first.
    pub items: Vec<(Merchandise, u32)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terms::TermVector;

    fn item() -> Merchandise {
        Merchandise {
            id: ItemId(1),
            name: "Rust Book".into(),
            category: CategoryPath::new("books", "programming"),
            terms: TermVector::from_pairs([("rust", 1.0)]),
            list_price: Money::from_units(30),
            seller: 1,
        }
    }

    #[test]
    fn payloads_round_trip_through_messages() {
        use agentsim::message::Message;
        let q = QueryRequest {
            keywords: vec!["rust".into()],
            category: Some(CategoryPath::new("books", "programming")),
            max_results: 5,
        };
        let msg = Message::new(kinds::QUERY_REQUEST).with_payload(&q).unwrap();
        assert_eq!(msg.payload_as::<QueryRequest>().unwrap(), q);

        let r = QueryResponse {
            offers: vec![Offer {
                item: item(),
                marketplace: HostId(2),
                price: Money(100),
            }],
        };
        let msg = Message::new(kinds::QUERY_RESPONSE)
            .with_payload(&r)
            .unwrap();
        assert_eq!(msg.payload_as::<QueryResponse>().unwrap(), r);
    }

    #[test]
    fn server_roles_serialize_distinctly() {
        let roles = [
            ServerRole::Marketplace,
            ServerRole::Seller,
            ServerRole::BuyerServer,
        ];
        let encoded: Vec<String> = roles
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        let mut unique = encoded.clone();
        unique.dedup();
        assert_eq!(encoded.len(), unique.len());
    }

    #[test]
    fn auction_closed_carries_outcome() {
        let closed = AuctionClosed {
            item: item(),
            outcome: AuctionOutcome::Sold {
                winner: crate::auction::BidderId(9),
                price: Money(500),
            },
            you_won: true,
        };
        let json = serde_json::to_value(&closed).unwrap();
        let back: AuctionClosed = serde_json::from_value(json).unwrap();
        assert_eq!(back, closed);
    }
}
