//! The Seller Server agent.
//!
//! Paper §3.2: *"Seller Server stands for the seller and merchandise
//! provider. The seller server's function contains integrating and
//! cataloging merchandise."* The [`SellerAgent`] owns a catalog of
//! listings and pushes it to marketplaces via [`kinds::CATALOG_SYNC`]; a
//! `restock` message adds listings later and re-syncs.

use crate::merchandise::{ItemId, Money};
use crate::protocol::{kinds, AuctionOpen, CatalogSync, Listing};
use agentsim::agent::{Agent, Ctx};
use agentsim::ids::AgentId;
use agentsim::message::Message;
use serde::{Deserialize, Serialize};

/// Agent-type tag of [`SellerAgent`].
pub const SELLER_TYPE: &str = "seller";

/// Message kind understood by the seller in addition to the platform
/// protocol: add listings and re-sync marketplaces.
pub const RESTOCK: &str = "restock";

/// Payload of a [`RESTOCK`] message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Restock {
    /// Listings to add to the catalog.
    pub listings: Vec<Listing>,
}

/// An auction the seller schedules on one of its listings at provisioning
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuctionPlan {
    /// Listed item to put under the hammer.
    pub item: ItemId,
    /// Reserve price.
    pub reserve: Money,
    /// Minimum increment (open auctions).
    pub increment: Money,
    /// Duration in simulated microseconds.
    pub duration_us: u64,
    /// Sealed-bid (Vickrey) instead of open ascending.
    pub sealed: bool,
}

/// The seller server agent. Static; safe to snapshot.
#[derive(Debug, Serialize, Deserialize)]
pub struct SellerAgent {
    /// Seller identifier stamped on every listing.
    seller_id: u32,
    name: String,
    listings: Vec<Listing>,
    /// Marketplace agents to provision.
    marketplaces: Vec<AgentId>,
    acks: u32,
    /// Auctions to open once the catalog is acknowledged.
    #[serde(default)]
    planned_auctions: Vec<AuctionPlan>,
}

impl SellerAgent {
    /// Create a seller with an initial catalog and target marketplaces.
    /// The catalog is pushed on creation.
    pub fn new(
        seller_id: u32,
        name: impl Into<String>,
        listings: Vec<Listing>,
        marketplaces: Vec<AgentId>,
    ) -> Self {
        let mut listings = listings;
        for l in &mut listings {
            l.item.seller = seller_id;
        }
        SellerAgent {
            seller_id,
            name: name.into(),
            listings,
            marketplaces,
            acks: 0,
            planned_auctions: Vec::new(),
        }
    }

    /// Schedule auctions to open on every marketplace once the catalog
    /// sync is acknowledged.
    pub fn with_auctions(mut self, auctions: Vec<AuctionPlan>) -> Self {
        self.planned_auctions = auctions;
        self
    }

    /// Number of catalog-sync acknowledgements received.
    pub fn acks(&self) -> u32 {
        self.acks
    }

    /// Current catalog size.
    pub fn listing_count(&self) -> usize {
        self.listings.len()
    }

    fn sync_all(&self, ctx: &mut Ctx<'_>) {
        for market in &self.marketplaces {
            let sync = Message::new(kinds::CATALOG_SYNC)
                .with_payload(&CatalogSync {
                    seller: self.seller_id,
                    listings: self.listings.clone(),
                })
                .expect("catalog sync serializes");
            ctx.send(*market, sync);
        }
        ctx.note(format!(
            "seller {} synced {} listings to {} marketplaces",
            self.name,
            self.listings.len(),
            self.marketplaces.len()
        ));
    }
}

impl Agent for SellerAgent {
    fn agent_type(&self) -> &'static str {
        SELLER_TYPE
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("seller state serializes")
    }

    fn on_creation(&mut self, ctx: &mut Ctx<'_>) {
        self.sync_all(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        match msg.kind.as_str() {
            kinds::CATALOG_ACK => {
                self.acks += 1;
                // the marketplace now has the listings; open any planned
                // auctions there
                let plans = std::mem::take(&mut self.planned_auctions);
                if !plans.is_empty() {
                    let Some(market) = msg.from else {
                        return;
                    };
                    for plan in &plans {
                        let open = Message::new(kinds::AUCTION_OPEN)
                            .with_payload(&AuctionOpen {
                                item: plan.item,
                                reserve: plan.reserve,
                                increment: plan.increment,
                                duration_us: plan.duration_us,
                                sealed: plan.sealed,
                            })
                            .expect("auction open serializes");
                        ctx.send(market, open);
                    }
                    ctx.note(format!(
                        "seller {} opened {} auctions at {market}",
                        self.name,
                        plans.len()
                    ));
                }
            }
            RESTOCK => {
                if let Ok(restock) = msg.payload_as::<Restock>() {
                    let mut listings = restock.listings;
                    for l in &mut listings {
                        l.item.seller = self.seller_id;
                    }
                    self.listings.extend(listings);
                    self.sync_all(ctx);
                }
            }
            other => {
                ctx.note(format!("seller {}: unhandled kind {other}", self.name));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marketplace::{MarketplaceAgent, MARKETPLACE_TYPE};
    use crate::merchandise::{CategoryPath, ItemId, Merchandise, Money};
    use crate::terms::TermVector;
    use agentsim::sim::SimWorld;

    fn listing(id: u64, name: &str) -> Listing {
        Listing {
            item: Merchandise {
                id: ItemId(id),
                name: name.into(),
                category: CategoryPath::new("books", "misc"),
                terms: TermVector::from_pairs([(name.to_lowercase(), 1.0)]),
                list_price: Money::from_units(10),
                seller: 0,
            },
            reservation: Money::from_units(7),
            concession: 0.1,
        }
    }

    #[test]
    fn seller_provisions_marketplaces_on_creation() {
        let mut w = SimWorld::new(3);
        w.registry_mut()
            .register_serde::<MarketplaceAgent>(MARKETPLACE_TYPE);
        w.registry_mut().register_serde::<SellerAgent>(SELLER_TYPE);
        let mh = w.add_host("market");
        let sh = w.add_host("seller");
        let market = w
            .create_agent(mh, Box::new(MarketplaceAgent::new("m")))
            .unwrap();
        let seller = w
            .create_agent(
                sh,
                Box::new(SellerAgent::new(
                    7,
                    "s",
                    vec![listing(1, "A"), listing(2, "B")],
                    vec![market],
                )),
            )
            .unwrap();
        w.run_until_idle();
        let m: MarketplaceAgent = serde_json::from_value(w.snapshot_of(market).unwrap()).unwrap();
        assert_eq!(m.listing_count(), 2);
        let s: SellerAgent = serde_json::from_value(w.snapshot_of(seller).unwrap()).unwrap();
        assert_eq!(s.acks(), 1);
    }

    #[test]
    fn restock_adds_listings_and_resyncs() {
        let mut w = SimWorld::new(3);
        w.registry_mut()
            .register_serde::<MarketplaceAgent>(MARKETPLACE_TYPE);
        w.registry_mut().register_serde::<SellerAgent>(SELLER_TYPE);
        let mh = w.add_host("market");
        let sh = w.add_host("seller");
        let market = w
            .create_agent(mh, Box::new(MarketplaceAgent::new("m")))
            .unwrap();
        let seller = w
            .create_agent(
                sh,
                Box::new(SellerAgent::new(
                    7,
                    "s",
                    vec![listing(1, "A")],
                    vec![market],
                )),
            )
            .unwrap();
        w.run_until_idle();
        w.send_external(
            seller,
            Message::new(RESTOCK)
                .with_payload(&Restock {
                    listings: vec![listing(2, "B")],
                })
                .unwrap(),
        )
        .unwrap();
        w.run_until_idle();
        let m: MarketplaceAgent = serde_json::from_value(w.snapshot_of(market).unwrap()).unwrap();
        assert_eq!(m.listing_count(), 2);
        let s: SellerAgent = serde_json::from_value(w.snapshot_of(seller).unwrap()).unwrap();
        assert_eq!(s.listing_count(), 2);
        assert_eq!(s.acks(), 2);
    }

    #[test]
    fn seller_stamps_its_id_on_listings() {
        let s = SellerAgent::new(42, "s", vec![listing(1, "A")], vec![]);
        assert_eq!(s.listings[0].item.seller, 42);
    }

    #[test]
    fn planned_auctions_open_after_catalog_ack() {
        use crate::merchandise::Money;
        let mut w = SimWorld::new(4);
        w.registry_mut()
            .register_serde::<MarketplaceAgent>(MARKETPLACE_TYPE);
        w.registry_mut().register_serde::<SellerAgent>(SELLER_TYPE);
        let mh = w.add_host("market");
        let sh = w.add_host("seller");
        let market = w
            .create_agent(mh, Box::new(MarketplaceAgent::new("m")))
            .unwrap();
        w.create_agent(
            sh,
            Box::new(
                SellerAgent::new(7, "s", vec![listing(1, "A")], vec![market]).with_auctions(vec![
                    super::AuctionPlan {
                        item: ItemId(1),
                        reserve: Money::from_units(5),
                        increment: Money::from_units(1),
                        duration_us: 60_000_000,
                        sealed: false,
                    },
                ]),
            ),
        )
        .unwrap();
        // deliver the sync + ack + auction-open, but not the 60s deadline
        w.run_for(agentsim::clock::SimDuration::from_millis(50));
        assert!(
            w.trace()
                .events()
                .iter()
                .any(|e| e.label.contains("auction opened on item-1")),
            "the marketplace must have opened the planned auction"
        );
        assert!(w
            .trace()
            .events()
            .iter()
            .any(|e| e.label.contains("seller s opened 1 auctions")));
    }
}
