//! # ecp — the agent-based e-commerce platform substrate
//!
//! This crate implements the e-commerce platform the recommendation
//! mechanism of *"An Agent-Based Consumer Recommendation Mechanism"*
//! (Wang, Hwang & Wang, AINA 2004) plugs into — the architecture of the
//! paper's Fig 3.1:
//!
//! * [`coordinator::CoordinatorAgent`] — the CA managing an EC domain:
//!   server registration/lookup and Buyer-Agent-Server provisioning
//!   (Fig 4.1 steps 1–3);
//! * [`marketplace::MarketplaceAgent`] — the trading services of §3.2:
//!   information **query**, **negotiation** ([`negotiation`]) and
//!   **auctions** ([`auction`]), plus the sales ledger behind the
//!   "top overall sellers" baseline of §2.3;
//! * [`seller::SellerAgent`] — merchandise integration and cataloging;
//! * [`merchandise`] — money, the two-level category taxonomy of Fig 4.4,
//!   items, catalogs; [`terms`] — the weighted term vectors shared with
//!   consumer profiles;
//! * [`protocol`] — every message kind and payload on the wire.
//!
//! All agents run on the [`agentsim`] platform and are pure serde state
//! machines, so they survive snapshot/migration and run identically on
//! the deterministic and the threaded runtime.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod auction;
pub mod coordinator;
pub mod marketplace;
pub mod merchandise;
pub mod negotiation;
pub mod protocol;
pub mod seller;
pub mod terms;

pub use auction::{AuctionOutcome, BidderId, DutchAuction, EnglishAuction, VickreyAuction};
pub use coordinator::{CoordinatorAgent, COORDINATOR_TYPE};
pub use marketplace::{MarketplaceAgent, MARKETPLACE_TYPE};
pub use merchandise::{Catalog, CategoryPath, ItemId, Merchandise, Money};
pub use negotiation::{negotiate, BuyerPolicy, ConcessionStrategy, Outcome, SellerPolicy};
pub use seller::{SellerAgent, SELLER_TYPE};
pub use terms::TermVector;
