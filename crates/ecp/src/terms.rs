//! Weighted term vectors.
//!
//! Profiles (paper Fig 4.4) and merchandise descriptions are both bags of
//! weighted terms; the similarity algorithm (Fig 4.5, quoting Middleton
//! \[10\]) compares them. [`TermVector`] is that shared representation:
//! a sparse map from term to non-negative weight.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A sparse vector of non-negative term weights.
///
/// ```
/// use ecp::terms::TermVector;
///
/// let mut a = TermVector::new();
/// a.set("rust", 1.0);
/// a.set("book", 0.5);
/// let mut b = TermVector::new();
/// b.set("rust", 0.8);
/// assert!(a.cosine(&b) > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TermVector {
    weights: BTreeMap<String, f64>,
}

impl TermVector {
    /// Empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(term, weight)` pairs; non-positive weights are
    /// dropped, duplicate terms accumulate.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        let mut v = TermVector::new();
        for (t, w) in pairs {
            v.add(t.into(), w);
        }
        v
    }

    /// Set the weight of `term` (removing it if `weight <= 0`).
    pub fn set(&mut self, term: impl Into<String>, weight: f64) {
        let term = term.into();
        if weight > 0.0 {
            self.weights.insert(term, weight);
        } else {
            self.weights.remove(&term);
        }
    }

    /// Add `delta` to the weight of `term`, clamping at zero.
    pub fn add(&mut self, term: impl Into<String>, delta: f64) {
        let term = term.into();
        let w = self.weights.get(&term).copied().unwrap_or(0.0) + delta;
        self.set(term, w);
    }

    /// Weight of `term` (0 if absent).
    pub fn weight(&self, term: &str) -> f64 {
        self.weights.get(term).copied().unwrap_or(0.0)
    }

    /// Iterate `(term, weight)` in term order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.weights.iter().map(|(t, w)| (t.as_str(), *w))
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the vector has no terms.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.weights.values().map(|w| w * w).sum::<f64>().sqrt()
    }

    /// Dot product with `other`.
    pub fn dot(&self, other: &TermVector) -> f64 {
        // iterate the smaller map
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.weights.iter().map(|(t, w)| w * large.weight(t)).sum()
    }

    /// Cosine similarity in `[0, 1]` (weights are non-negative). Zero if
    /// either vector is empty.
    pub fn cosine(&self, other: &TermVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            (self.dot(other) / denom).clamp(0.0, 1.0)
        }
    }

    /// `self += factor * other` (Middleton-style profile feedback step).
    pub fn add_scaled(&mut self, other: &TermVector, factor: f64) {
        for (t, w) in &other.weights {
            self.add(t.clone(), w * factor);
        }
    }

    /// Scale all weights by `factor` (used for interest decay).
    pub fn scale(&mut self, factor: f64) {
        if factor <= 0.0 {
            self.weights.clear();
            return;
        }
        for w in self.weights.values_mut() {
            *w *= factor;
        }
    }

    /// Keep only the `k` heaviest terms (ties broken by term order).
    pub fn truncate_top(&mut self, k: usize) {
        if self.weights.len() <= k {
            return;
        }
        let mut entries: Vec<(String, f64)> =
            self.weights.iter().map(|(t, w)| (t.clone(), *w)).collect();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        entries.truncate(k);
        self.weights = entries.into_iter().collect();
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> f64 {
        self.weights.values().sum()
    }

    /// The heaviest `k` terms as `(term, weight)`, heaviest first.
    pub fn top_terms(&self, k: usize) -> Vec<(&str, f64)> {
        let mut entries: Vec<(&str, f64)> = self.iter().collect();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        entries.truncate(k);
        entries
    }
}

impl fmt::Display for TermVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (t, w)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}: {w:.3}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_weight_round_trip() {
        let mut v = TermVector::new();
        v.set("a", 1.0);
        v.add("a", 0.5);
        assert!((v.weight("a") - 1.5).abs() < 1e-12);
        assert_eq!(v.weight("missing"), 0.0);
    }

    #[test]
    fn nonpositive_weights_are_removed() {
        let mut v = TermVector::new();
        v.set("a", 1.0);
        v.add("a", -2.0);
        assert!(v.is_empty());
        v.set("b", -1.0);
        assert!(v.is_empty());
    }

    #[test]
    fn cosine_is_one_for_parallel_and_zero_for_disjoint() {
        let a = TermVector::from_pairs([("x", 2.0), ("y", 4.0)]);
        let b = TermVector::from_pairs([("x", 1.0), ("y", 2.0)]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-9);
        let c = TermVector::from_pairs([("z", 1.0)]);
        assert_eq!(a.cosine(&c), 0.0);
        assert_eq!(a.cosine(&TermVector::new()), 0.0);
    }

    #[test]
    fn cosine_is_symmetric() {
        let a = TermVector::from_pairs([("x", 1.0), ("y", 3.0)]);
        let b = TermVector::from_pairs([("y", 2.0), ("z", 1.0)]);
        assert!((a.cosine(&b) - b.cosine(&a)).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut profile = TermVector::from_pairs([("books", 1.0)]);
        let doc = TermVector::from_pairs([("books", 0.5), ("rust", 1.0)]);
        profile.add_scaled(&doc, 0.2);
        assert!((profile.weight("books") - 1.1).abs() < 1e-12);
        assert!((profile.weight("rust") - 0.2).abs() < 1e-12);
    }

    #[test]
    fn scale_decays_or_clears() {
        let mut v = TermVector::from_pairs([("a", 2.0)]);
        v.scale(0.5);
        assert!((v.weight("a") - 1.0).abs() < 1e-12);
        v.scale(0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn truncate_keeps_heaviest() {
        let mut v = TermVector::from_pairs([("a", 1.0), ("b", 3.0), ("c", 2.0)]);
        v.truncate_top(2);
        assert_eq!(v.len(), 2);
        assert!(v.weight("b") > 0.0 && v.weight("c") > 0.0);
        assert_eq!(v.weight("a"), 0.0);
    }

    #[test]
    fn top_terms_orders_by_weight() {
        let v = TermVector::from_pairs([("a", 1.0), ("b", 3.0), ("c", 2.0)]);
        let top: Vec<&str> = v.top_terms(2).into_iter().map(|(t, _)| t).collect();
        assert_eq!(top, vec!["b", "c"]);
    }

    #[test]
    fn duplicate_pairs_accumulate() {
        let v = TermVector::from_pairs([("a", 1.0), ("a", 2.0)]);
        assert!((v.weight("a") - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty_for_empty_vector() {
        assert_eq!(TermVector::new().to_string(), "{}");
    }
}
