//! Merchandise: money, category taxonomy, items and catalogs.
//!
//! The paper's Seller Server *"integrat\[es\] and catalog\[s\] merchandise"*
//! (§3.2). Items live in a two-level category taxonomy matching the
//! profile presentation of Fig 4.4 (`Category` / `Sub_Category`), and
//! carry a weighted term description used by content matching.

use crate::terms::TermVector;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Money in integer cents — exact arithmetic, no float drift in prices.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Money(pub u64);

impl Money {
    /// From whole currency units.
    pub fn from_units(units: u64) -> Self {
        Money(units * 100)
    }

    /// Cents.
    pub fn cents(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Money) -> Money {
        Money(self.0.saturating_sub(other.0))
    }

    /// Price scaled by a factor (rounded to nearest cent, saturating).
    pub fn scale(self, factor: f64) -> Money {
        let v = (self.0 as f64 * factor).round().max(0.0);
        Money(if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        })
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}.{:02}", self.0 / 100, self.0 % 100)
    }
}

impl std::ops::Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0.saturating_add(rhs.0))
    }
}

impl std::iter::Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money(0), |a, b| a + b)
    }
}

/// A two-level category path: `Category / Sub_Category` (Fig 4.4).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CategoryPath {
    /// Main category (e.g. `"books"`).
    pub category: String,
    /// Sub category (e.g. `"programming"`).
    pub sub_category: String,
}

impl CategoryPath {
    /// Construct from the two levels.
    pub fn new(category: impl Into<String>, sub_category: impl Into<String>) -> Self {
        CategoryPath {
            category: category.into(),
            sub_category: sub_category.into(),
        }
    }

    /// `"category/sub_category"` form used as an index key.
    pub fn as_key(&self) -> String {
        format!("{}/{}", self.category, self.sub_category)
    }
}

impl fmt::Display for CategoryPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.category, self.sub_category)
    }
}

/// Identifier of a merchandise item, unique per catalog ecosystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u64);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item-{}", self.0)
    }
}

/// One merchandise item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Merchandise {
    /// Stable item id.
    pub id: ItemId,
    /// Display name.
    pub name: String,
    /// Taxonomy position.
    pub category: CategoryPath,
    /// Weighted description terms (drives content matching).
    pub terms: TermVector,
    /// Seller's list price.
    pub list_price: Money,
    /// Identifier of the seller server offering the item.
    pub seller: u32,
}

impl Merchandise {
    /// Keyword match score against a free-text query: fraction of query
    /// keywords present in the name or terms, weighted by term weight.
    pub fn keyword_score(&self, keywords: &[String]) -> f64 {
        if keywords.is_empty() {
            return 0.0;
        }
        let name_lower = self.name.to_lowercase();
        let mut score = 0.0;
        for kw in keywords {
            let kw = kw.to_lowercase();
            if name_lower.contains(&kw) {
                score += 1.0;
            }
            score += self.terms.weight(&kw);
        }
        score / keywords.len() as f64
    }
}

/// An ordered collection of merchandise with category and keyword search.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    items: BTreeMap<ItemId, Merchandise>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace an item.
    pub fn add(&mut self, item: Merchandise) {
        self.items.insert(item.id, item);
    }

    /// Item by id.
    pub fn get(&self, id: ItemId) -> Option<&Merchandise> {
        self.items.get(&id)
    }

    /// Remove an item.
    pub fn remove(&mut self, id: ItemId) -> Option<Merchandise> {
        self.items.remove(&id)
    }

    /// All items in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Merchandise> {
        self.items.values()
    }

    /// Items in the given main category.
    pub fn by_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a Merchandise> {
        self.items
            .values()
            .filter(move |m| m.category.category == category)
    }

    /// Items under the full category path.
    pub fn by_path<'a>(&'a self, path: &'a CategoryPath) -> impl Iterator<Item = &'a Merchandise> {
        self.items.values().filter(move |m| &m.category == path)
    }

    /// Keyword search: items scoring above zero, best first, capped at
    /// `limit`.
    pub fn search(&self, keywords: &[String], limit: usize) -> Vec<&Merchandise> {
        let mut scored: Vec<(&Merchandise, f64)> = self
            .items
            .values()
            .map(|m| (m, m.keyword_score(keywords)))
            .filter(|(_, s)| *s > 0.0)
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.id.cmp(&b.0.id))
        });
        scored.into_iter().take(limit).map(|(m, _)| m).collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Merge all of `other`'s items into `self` (seller integration).
    pub fn merge(&mut self, other: &Catalog) {
        for item in other.iter() {
            self.add(item.clone());
        }
    }

    /// Distinct main categories present, in order.
    pub fn categories(&self) -> Vec<&str> {
        let mut cats: Vec<&str> = self
            .items
            .values()
            .map(|m| m.category.category.as_str())
            .collect();
        cats.sort_unstable();
        cats.dedup();
        cats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(id: u64, name: &str, cat: &str, sub: &str, price: u64) -> Merchandise {
        Merchandise {
            id: ItemId(id),
            name: name.into(),
            category: CategoryPath::new(cat, sub),
            terms: TermVector::from_pairs([(name.to_lowercase(), 1.0), (sub.to_string(), 0.5)]),
            list_price: Money::from_units(price),
            seller: 1,
        }
    }

    #[test]
    fn money_displays_cents() {
        assert_eq!(Money(12345).to_string(), "$123.45");
        assert_eq!(Money(5).to_string(), "$0.05");
    }

    #[test]
    fn money_arithmetic_saturates() {
        assert_eq!(Money(10) + Money(5), Money(15));
        assert_eq!(Money(10).saturating_sub(Money(50)), Money(0));
        assert_eq!(Money(100).scale(0.5), Money(50));
        assert_eq!(Money(100).scale(-1.0), Money(0));
    }

    #[test]
    fn money_sums() {
        let total: Money = [Money(1), Money(2), Money(3)].into_iter().sum();
        assert_eq!(total, Money(6));
    }

    #[test]
    fn category_path_key_is_two_level() {
        let p = CategoryPath::new("books", "programming");
        assert_eq!(p.as_key(), "books/programming");
        assert_eq!(p.to_string(), "books/programming");
    }

    #[test]
    fn catalog_search_ranks_by_keyword_score() {
        let mut c = Catalog::new();
        c.add(item(1, "Rust Book", "books", "programming", 30));
        c.add(item(2, "Cookbook", "books", "cooking", 20));
        c.add(item(3, "Rust Mug", "kitchen", "mugs", 10));
        let hits = c.search(&["rust".to_string()], 10);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|m| m.name.to_lowercase().contains("rust")));
        // limit respected
        assert_eq!(c.search(&["rust".to_string()], 1).len(), 1);
    }

    #[test]
    fn empty_keywords_match_nothing() {
        let mut c = Catalog::new();
        c.add(item(1, "Rust Book", "books", "programming", 30));
        assert!(c.search(&[], 10).is_empty());
    }

    #[test]
    fn category_filters_work() {
        let mut c = Catalog::new();
        c.add(item(1, "A", "books", "programming", 30));
        c.add(item(2, "B", "books", "cooking", 20));
        c.add(item(3, "C", "kitchen", "mugs", 10));
        assert_eq!(c.by_category("books").count(), 2);
        let path = CategoryPath::new("books", "cooking");
        assert_eq!(c.by_path(&path).count(), 1);
        assert_eq!(c.categories(), vec!["books", "kitchen"]);
    }

    #[test]
    fn merge_integrates_catalogs() {
        let mut a = Catalog::new();
        a.add(item(1, "A", "books", "x", 1));
        let mut b = Catalog::new();
        b.add(item(2, "B", "books", "x", 2));
        b.add(item(1, "A2", "books", "x", 3)); // overrides
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(ItemId(1)).unwrap().name, "A2");
    }

    #[test]
    fn keyword_score_counts_name_and_terms() {
        let m = item(1, "Rust Book", "books", "programming", 30);
        assert!(m.keyword_score(&["rust".to_string()]) >= 1.0);
        assert!(m.keyword_score(&["programming".to_string()]) > 0.0);
        assert_eq!(m.keyword_score(&["zzz".to_string()]), 0.0);
    }
}
