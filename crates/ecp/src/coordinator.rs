//! The Coordinator Server's agent (CA).
//!
//! Paper §3.2: *"There is a Coordinator Agent (CA) in Coordinator Server.
//! The CA is static in Coordinator Server and manages an E-Commerce (EC)
//! domain."* The CA keeps the domain registry (marketplaces, sellers,
//! buyer agent servers) and provisions new Buyer Agent Servers
//! (Fig 4.1 steps 1–3): on [`kinds::REQUEST_BUYER_SERVER`] it creates a
//! BSMA of the requested agent type and the BSMA dispatches itself to the
//! requesting host.

use crate::protocol::{
    kinds, ListServers, RegisterServer, RequestBuyerServer, ServerInfo, ServerList,
};
use agentsim::agent::{Agent, Ctx};
use agentsim::message::Message;
use serde::{Deserialize, Serialize};

/// The Coordinator Agent. Static (never migrates); safe to snapshot.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct CoordinatorAgent {
    domain: Vec<ServerInfo>,
}

/// Agent-type tag of [`CoordinatorAgent`].
pub const COORDINATOR_TYPE: &str = "coordinator";

impl CoordinatorAgent {
    /// Create a coordinator with an empty domain registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registered servers (for tests and inspection via snapshot).
    pub fn domain(&self) -> &[ServerInfo] {
        &self.domain
    }
}

impl Agent for CoordinatorAgent {
    fn agent_type(&self) -> &'static str {
        COORDINATOR_TYPE
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("coordinator state serializes")
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        match msg.kind.as_str() {
            kinds::REGISTER_SERVER => {
                let Ok(reg) = msg.payload_as::<RegisterServer>() else {
                    ctx.note("coordinator: malformed register-server");
                    return;
                };
                // Re-registration (same agent) replaces the entry.
                self.domain.retain(|s| s.agent != reg.agent);
                self.domain.push(ServerInfo {
                    role: reg.role,
                    host: reg.host,
                    agent: reg.agent,
                    name: reg.name,
                });
                let ack = Message::new(kinds::REGISTER_ACK);
                ctx.reply(&msg, ack);
            }
            kinds::LIST_SERVERS => {
                let Ok(req) = msg.payload_as::<ListServers>() else {
                    ctx.note("coordinator: malformed list-servers");
                    return;
                };
                let servers: Vec<ServerInfo> = self
                    .domain
                    .iter()
                    .filter(|s| s.role == req.role)
                    .cloned()
                    .collect();
                let reply = Message::new(kinds::SERVER_LIST)
                    .with_payload(&ServerList { servers })
                    .expect("server list serializes");
                ctx.reply(&msg, reply);
            }
            kinds::REQUEST_BUYER_SERVER => {
                let Ok(req) = msg.payload_as::<RequestBuyerServer>() else {
                    ctx.note("coordinator: malformed request-buyer-server");
                    return;
                };
                ctx.note("fig4.1/step1 request to be buyer agent server");
                // Step 2: create the BSMA here, in the Coordinator Server.
                ctx.note("fig4.1/step2 create bsma agent");
                ctx.create_agent_of_type(req.bsma_type, req.config);
                // Step 3 (dispatch) is performed by the BSMA itself in its
                // on_creation, which reads the target host from its config.
            }
            other => {
                ctx.note(format!("coordinator: unhandled message kind {other}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ServerRole;
    use agentsim::ids::{AgentId, HostId};
    use agentsim::sim::SimWorld;

    fn setup() -> (SimWorld, HostId, AgentId) {
        let mut w = SimWorld::new(5);
        w.registry_mut()
            .register_serde::<CoordinatorAgent>(COORDINATOR_TYPE);
        let h = w.add_host("coordinator");
        let ca = w
            .create_agent(h, Box::new(CoordinatorAgent::new()))
            .unwrap();
        (w, h, ca)
    }

    #[test]
    fn registration_is_recorded_and_listable() {
        let (mut w, h, ca) = setup();
        let reg = RegisterServer {
            role: ServerRole::Marketplace,
            host: HostId(9),
            agent: AgentId(100),
            name: "market-1".into(),
        };
        w.send_external(
            ca,
            Message::new(kinds::REGISTER_SERVER)
                .with_payload(&reg)
                .unwrap(),
        )
        .unwrap();
        w.run_until_idle();
        let snap = w.snapshot_of(ca).unwrap();
        let state: CoordinatorAgent = serde_json::from_value(snap).unwrap();
        assert_eq!(state.domain().len(), 1);
        assert_eq!(state.domain()[0].name, "market-1");
        let _ = h;
    }

    #[test]
    fn reregistration_replaces_entry() {
        let (mut w, _, ca) = setup();
        for name in ["m-old", "m-new"] {
            let reg = RegisterServer {
                role: ServerRole::Marketplace,
                host: HostId(9),
                agent: AgentId(100),
                name: name.into(),
            };
            w.send_external(
                ca,
                Message::new(kinds::REGISTER_SERVER)
                    .with_payload(&reg)
                    .unwrap(),
            )
            .unwrap();
            w.run_until_idle();
        }
        let state: CoordinatorAgent = serde_json::from_value(w.snapshot_of(ca).unwrap()).unwrap();
        assert_eq!(state.domain().len(), 1);
        assert_eq!(state.domain()[0].name, "m-new");
    }

    #[test]
    fn malformed_payloads_are_noted_not_fatal() {
        let (mut w, _, ca) = setup();
        w.send_external(ca, Message::new(kinds::REGISTER_SERVER))
            .unwrap();
        w.run_until_idle();
        assert!(w
            .trace()
            .events()
            .iter()
            .any(|e| e.label.contains("malformed register-server")));
    }

    #[test]
    fn unhandled_kind_is_noted() {
        let (mut w, _, ca) = setup();
        w.send_external(ca, Message::new("mystery")).unwrap();
        w.run_until_idle();
        assert!(w
            .trace()
            .events()
            .iter()
            .any(|e| e.label.contains("unhandled message kind")));
    }
}
