//! Auction engines: English (open ascending) and Vickrey (sealed
//! second-price).
//!
//! The marketplace's third trading service (§3.2). The engines are pure
//! state machines; [`crate::marketplace`] drives the English auction over
//! messages and timers, and workloads use both engines directly.

use crate::merchandise::{ItemId, Money};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier a bidder uses inside one auction (the MBA's agent id in the
/// platform, an arbitrary u64 in pure use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BidderId(pub u64);

impl fmt::Display for BidderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bidder-{}", self.0)
    }
}

/// Errors returned by auction operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuctionError {
    /// Bid below the reserve or below the current minimum acceptable bid.
    BidTooLow {
        /// Offered amount.
        offered: Money,
        /// Minimum that would have been accepted.
        minimum: Money,
    },
    /// The auction has already closed.
    Closed,
    /// A bidder tried to bid twice in a sealed auction.
    AlreadyBid(BidderId),
}

impl fmt::Display for AuctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuctionError::BidTooLow { offered, minimum } => {
                write!(f, "bid {offered} is below the minimum {minimum}")
            }
            AuctionError::Closed => write!(f, "auction is closed"),
            AuctionError::AlreadyBid(b) => write!(f, "{b} already placed a sealed bid"),
        }
    }
}

impl std::error::Error for AuctionError {}

/// Result of a closed auction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuctionOutcome {
    /// Sold to `winner` at `price`.
    Sold {
        /// Winning bidder.
        winner: BidderId,
        /// Price paid.
        price: Money,
    },
    /// No bid met the reserve.
    Unsold,
}

impl AuctionOutcome {
    /// The sale price, if sold.
    pub fn price(&self) -> Option<Money> {
        match self {
            AuctionOutcome::Sold { price, .. } => Some(*price),
            AuctionOutcome::Unsold => None,
        }
    }
}

/// Open ascending-price (English) auction.
///
/// Bids must beat the current high bid by at least the increment; the
/// winner pays their own bid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnglishAuction {
    /// Item under the hammer.
    pub item: ItemId,
    reserve: Money,
    increment: Money,
    high: Option<(BidderId, Money)>,
    bids: u32,
    closed: bool,
}

impl EnglishAuction {
    /// Open an auction with a reserve price and minimum increment.
    pub fn open(item: ItemId, reserve: Money, increment: Money) -> Self {
        EnglishAuction {
            item,
            reserve,
            increment,
            high: None,
            bids: 0,
            closed: false,
        }
    }

    /// Lowest bid that would currently be accepted.
    pub fn minimum_bid(&self) -> Money {
        match self.high {
            None => self.reserve,
            Some((_, high)) => high + self.increment,
        }
    }

    /// Current leader, if any.
    pub fn leader(&self) -> Option<(BidderId, Money)> {
        self.high
    }

    /// Number of accepted bids.
    pub fn bids(&self) -> u32 {
        self.bids
    }

    /// Whether the auction has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Place a bid.
    ///
    /// # Errors
    ///
    /// [`AuctionError::Closed`] after closing;
    /// [`AuctionError::BidTooLow`] below [`EnglishAuction::minimum_bid`].
    pub fn place_bid(&mut self, bidder: BidderId, amount: Money) -> Result<(), AuctionError> {
        if self.closed {
            return Err(AuctionError::Closed);
        }
        let minimum = self.minimum_bid();
        if amount < minimum {
            return Err(AuctionError::BidTooLow {
                offered: amount,
                minimum,
            });
        }
        self.high = Some((bidder, amount));
        self.bids += 1;
        Ok(())
    }

    /// Close and settle.
    pub fn close(&mut self) -> AuctionOutcome {
        self.closed = true;
        match self.high {
            Some((winner, price)) if price >= self.reserve => {
                AuctionOutcome::Sold { winner, price }
            }
            _ => AuctionOutcome::Unsold,
        }
    }
}

/// Sealed-bid second-price (Vickrey) auction.
///
/// Each bidder bids once; the highest bidder wins and pays the
/// second-highest bid (or the reserve if there is no second bid above it).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VickreyAuction {
    /// Item under the hammer.
    pub item: ItemId,
    reserve: Money,
    bids: Vec<(BidderId, Money)>,
    closed: bool,
}

impl VickreyAuction {
    /// Open a sealed-bid auction with a reserve price.
    pub fn open(item: ItemId, reserve: Money) -> Self {
        VickreyAuction {
            item,
            reserve,
            bids: Vec::new(),
            closed: false,
        }
    }

    /// Number of sealed bids received.
    pub fn bids(&self) -> usize {
        self.bids.len()
    }

    /// The reserve price.
    pub fn reserve(&self) -> Money {
        self.reserve
    }

    /// Whether the auction has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Submit a sealed bid.
    ///
    /// # Errors
    ///
    /// [`AuctionError::Closed`] after closing;
    /// [`AuctionError::AlreadyBid`] on a second bid from the same bidder;
    /// [`AuctionError::BidTooLow`] below the reserve.
    pub fn place_bid(&mut self, bidder: BidderId, amount: Money) -> Result<(), AuctionError> {
        if self.closed {
            return Err(AuctionError::Closed);
        }
        if self.bids.iter().any(|(b, _)| *b == bidder) {
            return Err(AuctionError::AlreadyBid(bidder));
        }
        if amount < self.reserve {
            return Err(AuctionError::BidTooLow {
                offered: amount,
                minimum: self.reserve,
            });
        }
        self.bids.push((bidder, amount));
        Ok(())
    }

    /// Close and settle: highest bidder pays `max(second bid, reserve)`.
    /// Ties go to the earliest bidder.
    pub fn close(&mut self) -> AuctionOutcome {
        self.closed = true;
        if self.bids.is_empty() {
            return AuctionOutcome::Unsold;
        }
        let mut sorted = self.bids.clone();
        // stable sort: ties keep submission order, earliest wins
        sorted.sort_by_key(|b| std::cmp::Reverse(b.1));
        let (winner, _) = sorted[0];
        let price = sorted
            .get(1)
            .map(|(_, p)| *p)
            .unwrap_or(self.reserve)
            .max(self.reserve);
        AuctionOutcome::Sold { winner, price }
    }
}

/// Descending-price (Dutch) auction.
///
/// The price starts high and drops by `decrement` per tick; the first
/// bidder at (or above) the current price wins immediately at the
/// current price. If the price would fall below the floor, the auction
/// closes unsold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DutchAuction {
    /// Item under the hammer.
    pub item: ItemId,
    current: Money,
    floor: Money,
    decrement: Money,
    closed: bool,
    winner: Option<(BidderId, Money)>,
}

impl DutchAuction {
    /// Open with a starting price, a floor, and a per-tick decrement.
    pub fn open(item: ItemId, start: Money, floor: Money, decrement: Money) -> Self {
        DutchAuction {
            item,
            current: start.max(floor),
            floor,
            decrement,
            closed: false,
            winner: None,
        }
    }

    /// The price a bid must meet right now.
    pub fn current_price(&self) -> Money {
        self.current
    }

    /// Whether the auction has closed (sold or floored out).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Advance one tick: drop the price by the decrement. Returns `false`
    /// (and closes the auction) when the price would fall below the
    /// floor.
    pub fn tick(&mut self) -> bool {
        if self.closed {
            return false;
        }
        if self.current == self.floor {
            self.closed = true;
            return false;
        }
        self.current = self.current.saturating_sub(self.decrement).max(self.floor);
        true
    }

    /// Take the item at the current price. First valid bid wins and
    /// closes the auction immediately.
    ///
    /// # Errors
    ///
    /// [`AuctionError::Closed`] after closing;
    /// [`AuctionError::BidTooLow`] below the current price.
    pub fn place_bid(&mut self, bidder: BidderId, amount: Money) -> Result<(), AuctionError> {
        if self.closed {
            return Err(AuctionError::Closed);
        }
        if amount < self.current {
            return Err(AuctionError::BidTooLow {
                offered: amount,
                minimum: self.current,
            });
        }
        self.winner = Some((bidder, self.current));
        self.closed = true;
        Ok(())
    }

    /// Settle.
    pub fn close(&mut self) -> AuctionOutcome {
        self.closed = true;
        match self.winner {
            Some((winner, price)) => AuctionOutcome::Sold { winner, price },
            None => AuctionOutcome::Unsold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn money(u: u64) -> Money {
        Money::from_units(u)
    }

    #[test]
    fn english_bids_must_ascend_by_increment() {
        let mut a = EnglishAuction::open(ItemId(1), money(10), money(1));
        a.place_bid(BidderId(1), money(10)).unwrap();
        assert!(matches!(
            a.place_bid(BidderId(2), money(10)),
            Err(AuctionError::BidTooLow { .. })
        ));
        a.place_bid(BidderId(2), money(11)).unwrap();
        assert_eq!(a.leader(), Some((BidderId(2), money(11))));
        assert_eq!(a.bids(), 2);
    }

    #[test]
    fn english_below_reserve_rejected() {
        let mut a = EnglishAuction::open(ItemId(1), money(10), money(1));
        assert!(matches!(
            a.place_bid(BidderId(1), money(9)),
            Err(AuctionError::BidTooLow { .. })
        ));
    }

    #[test]
    fn english_winner_pays_own_bid() {
        let mut a = EnglishAuction::open(ItemId(1), money(10), money(1));
        a.place_bid(BidderId(1), money(10)).unwrap();
        a.place_bid(BidderId(2), money(15)).unwrap();
        match a.close() {
            AuctionOutcome::Sold { winner, price } => {
                assert_eq!(winner, BidderId(2));
                assert_eq!(price, money(15));
            }
            AuctionOutcome::Unsold => panic!("expected sale"),
        }
        assert!(a.is_closed());
        assert!(matches!(
            a.place_bid(BidderId(3), money(99)),
            Err(AuctionError::Closed)
        ));
    }

    #[test]
    fn english_no_bids_is_unsold() {
        let mut a = EnglishAuction::open(ItemId(1), money(10), money(1));
        assert_eq!(a.close(), AuctionOutcome::Unsold);
    }

    #[test]
    fn vickrey_winner_pays_second_price() {
        let mut a = VickreyAuction::open(ItemId(1), money(10));
        a.place_bid(BidderId(1), money(30)).unwrap();
        a.place_bid(BidderId(2), money(20)).unwrap();
        a.place_bid(BidderId(3), money(25)).unwrap();
        match a.close() {
            AuctionOutcome::Sold { winner, price } => {
                assert_eq!(winner, BidderId(1));
                assert_eq!(price, money(25), "pays the second-highest bid");
            }
            AuctionOutcome::Unsold => panic!("expected sale"),
        }
    }

    #[test]
    fn vickrey_single_bid_pays_reserve() {
        let mut a = VickreyAuction::open(ItemId(1), money(10));
        a.place_bid(BidderId(1), money(30)).unwrap();
        assert_eq!(
            a.close(),
            AuctionOutcome::Sold {
                winner: BidderId(1),
                price: money(10)
            }
        );
    }

    #[test]
    fn vickrey_duplicate_bidder_rejected() {
        let mut a = VickreyAuction::open(ItemId(1), money(10));
        a.place_bid(BidderId(1), money(30)).unwrap();
        assert!(matches!(
            a.place_bid(BidderId(1), money(40)),
            Err(AuctionError::AlreadyBid(_))
        ));
    }

    #[test]
    fn vickrey_tie_goes_to_earliest() {
        let mut a = VickreyAuction::open(ItemId(1), money(10));
        a.place_bid(BidderId(7), money(30)).unwrap();
        a.place_bid(BidderId(8), money(30)).unwrap();
        match a.close() {
            AuctionOutcome::Sold { winner, price } => {
                assert_eq!(winner, BidderId(7));
                assert_eq!(price, money(30));
            }
            AuctionOutcome::Unsold => panic!("expected sale"),
        }
    }

    #[test]
    fn vickrey_below_reserve_rejected_and_unsold_without_bids() {
        let mut a = VickreyAuction::open(ItemId(1), money(10));
        assert!(a.place_bid(BidderId(1), money(5)).is_err());
        assert_eq!(a.close(), AuctionOutcome::Unsold);
    }

    #[test]
    fn outcome_price_accessor() {
        assert_eq!(
            AuctionOutcome::Sold {
                winner: BidderId(1),
                price: money(5)
            }
            .price(),
            Some(money(5))
        );
        assert_eq!(AuctionOutcome::Unsold.price(), None);
    }

    #[test]
    fn dutch_price_descends_to_the_floor() {
        let mut a = DutchAuction::open(ItemId(1), money(100), money(70), money(10));
        assert_eq!(a.current_price(), money(100));
        assert!(a.tick());
        assert_eq!(a.current_price(), money(90));
        assert!(a.tick());
        assert!(a.tick());
        assert_eq!(a.current_price(), money(70), "clamped at the floor");
        assert!(!a.tick(), "at the floor the next tick closes");
        assert!(a.is_closed());
        assert_eq!(a.close(), AuctionOutcome::Unsold);
    }

    #[test]
    fn dutch_first_taker_wins_at_current_price() {
        let mut a = DutchAuction::open(ItemId(1), money(100), money(50), money(10));
        a.tick();
        a.tick(); // current = 80
        assert!(matches!(
            a.place_bid(BidderId(1), money(79)),
            Err(AuctionError::BidTooLow { .. })
        ));
        a.place_bid(BidderId(2), money(85)).unwrap();
        assert!(a.is_closed());
        assert_eq!(
            a.close(),
            AuctionOutcome::Sold {
                winner: BidderId(2),
                price: money(80)
            },
            "winner pays the clock price, not their bid"
        );
        assert!(matches!(
            a.place_bid(BidderId(3), money(100)),
            Err(AuctionError::Closed)
        ));
    }

    #[test]
    fn dutch_start_below_floor_clamps_up() {
        let a = DutchAuction::open(ItemId(1), money(10), money(40), money(5));
        assert_eq!(a.current_price(), money(40));
    }
}
