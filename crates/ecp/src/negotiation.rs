//! Alternating-offers price negotiation.
//!
//! The paper's Marketplace *"provide\[s\] kinds of trading services such as:
//! information query, negotiations, and auctions"* (§3.2). This module is
//! the negotiation engine: a seller session (run by the marketplace on
//! behalf of the listing) and a buyer session (run by the visiting MBA),
//! exchanging offers until acceptance or abort.
//!
//! The engines are pure state machines — independently testable, and
//! wrapped in messages by [`crate::marketplace`].

use crate::merchandise::Money;
use serde::{Deserialize, Serialize};

/// How the seller's ask descends over the rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ConcessionStrategy {
    /// Multiplicative: each round the ask shrinks by the policy's
    /// `concession` fraction (floored at the reservation).
    #[default]
    Proportional,
    /// Time-dependent tactic: after `t` of `deadline_rounds` rounds the
    /// ask is `list − span·(t/deadline)^exponent`. `exponent > 1` is
    /// *Boulware* (stubborn, concedes late); `exponent < 1` is
    /// *Conceder* (gives ground early). At the deadline the ask reaches
    /// the reservation.
    TimeDependent {
        /// Rounds until the ask reaches the reservation.
        deadline_rounds: u32,
        /// Curve shape (see variant docs).
        exponent: f64,
    },
}

/// Seller-side negotiation parameters for one listing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SellerPolicy {
    /// Advertised price (the opening ask).
    pub list: Money,
    /// Lowest acceptable price.
    pub reservation: Money,
    /// Per-round fractional concession on the ask, in `[0, 1]`
    /// ([`ConcessionStrategy::Proportional`] only).
    pub concession: f64,
    /// Concession curve.
    #[serde(default)]
    pub strategy: ConcessionStrategy,
}

impl SellerPolicy {
    /// Policy with a reservation at `fraction` of list and the given
    /// proportional concession rate.
    pub fn with_margin(list: Money, fraction: f64, concession: f64) -> Self {
        SellerPolicy {
            list,
            reservation: list.scale(fraction.clamp(0.0, 1.0)),
            concession,
            strategy: ConcessionStrategy::Proportional,
        }
    }

    /// Switch to a time-dependent concession curve.
    pub fn with_strategy(mut self, strategy: ConcessionStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// Buyer-side negotiation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuyerPolicy {
    /// Hard ceiling the buyer will never exceed.
    pub budget: Money,
    /// Opening offer as a fraction of the seller's list price.
    pub opening_fraction: f64,
    /// Per-round fractional raise of the buyer's offer.
    pub raise: f64,
    /// Buyer walks away after this many of their own offers.
    pub max_rounds: u32,
}

/// Seller's reply to a buyer offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SellerResponse {
    /// Deal at the buyer's offered price.
    Accept(Money),
    /// Counter-offer at the given ask.
    Counter(Money),
}

/// Result of a finished negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Agreement at `price` after `rounds` buyer offers.
    Deal {
        /// Agreed price.
        price: Money,
        /// Number of buyer offers made.
        rounds: u32,
    },
    /// The buyer walked away after `rounds` offers.
    NoDeal {
        /// Number of buyer offers made.
        rounds: u32,
    },
}

impl Outcome {
    /// The agreed price, if a deal was struck.
    pub fn price(&self) -> Option<Money> {
        match self {
            Outcome::Deal { price, .. } => Some(*price),
            Outcome::NoDeal { .. } => None,
        }
    }
}

/// Seller's side of one negotiation, owned by the marketplace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SellerSession {
    policy: SellerPolicy,
    ask: Money,
    rounds: u32,
}

impl SellerSession {
    /// Open a session; the initial ask is the list price.
    pub fn open(policy: SellerPolicy) -> Self {
        SellerSession {
            policy,
            ask: policy.list,
            rounds: 0,
        }
    }

    /// Current ask.
    pub fn ask(&self) -> Money {
        self.ask
    }

    /// The ask the seller would counter with on round `round`.
    fn ask_at(&self, round: u32) -> Money {
        match self.policy.strategy {
            ConcessionStrategy::Proportional => self
                .policy
                .reservation
                .max(self.ask.scale(1.0 - self.policy.concession)),
            ConcessionStrategy::TimeDependent {
                deadline_rounds,
                exponent,
            } => {
                let t = (round as f64 / deadline_rounds.max(1) as f64).clamp(0.0, 1.0);
                let span = self.policy.list.saturating_sub(self.policy.reservation);
                let conceded = span.scale(t.powf(exponent.max(1e-6)));
                self.policy
                    .reservation
                    .max(self.policy.list.saturating_sub(conceded))
            }
        }
    }

    /// Respond to a buyer `offer`: accept anything at or above the
    /// current acceptance threshold, otherwise concede and counter.
    ///
    /// The acceptance threshold walks down from the ask toward the
    /// reservation as rounds pass; the seller never accepts below
    /// reservation.
    pub fn respond(&mut self, offer: Money) -> SellerResponse {
        self.rounds += 1;
        // Accept if the offer beats what we'd counter with next.
        let next_ask = self.ask_at(self.rounds);
        if offer >= next_ask {
            return SellerResponse::Accept(offer.min(self.ask));
        }
        self.ask = next_ask.min(self.ask);
        SellerResponse::Counter(self.ask)
    }

    /// Buyer offers answered so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

/// Buyer's side of one negotiation, carried by the MBA.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuyerSession {
    policy: BuyerPolicy,
    offer: Money,
    rounds: u32,
    opened: bool,
}

/// Buyer's next move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BuyerMove {
    /// Offer this price.
    Offer(Money),
    /// Accept the seller's last counter.
    Accept(Money),
    /// Walk away.
    Abort,
}

impl BuyerSession {
    /// Open a session against a listing advertised at `list`.
    pub fn open(policy: BuyerPolicy, list: Money) -> Self {
        let opening = list
            .scale(policy.opening_fraction.clamp(0.0, 1.0))
            .min(policy.budget);
        BuyerSession {
            policy,
            offer: opening,
            rounds: 0,
            opened: false,
        }
    }

    /// The buyer's first offer.
    pub fn opening_offer(&mut self) -> Money {
        self.opened = true;
        self.rounds = 1;
        self.offer
    }

    /// Decide the next move given the seller's counter-ask.
    pub fn respond(&mut self, counter: Money) -> BuyerMove {
        if counter <= self.policy.budget && counter <= self.offer.scale(1.0 + self.policy.raise) {
            // The counter is affordable and close to what we'd offer next:
            // take it.
            return BuyerMove::Accept(counter);
        }
        if self.rounds >= self.policy.max_rounds {
            return BuyerMove::Abort;
        }
        self.rounds += 1;
        self.offer = self
            .offer
            .scale(1.0 + self.policy.raise)
            .min(self.policy.budget);
        BuyerMove::Offer(self.offer)
    }

    /// Offers made so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

/// Run a complete negotiation between the two policies.
///
/// This is the closed-form simulation used by workloads and benches; the
/// message-passing version in [`crate::marketplace`] produces the same
/// outcomes.
pub fn negotiate(seller: SellerPolicy, buyer: BuyerPolicy) -> Outcome {
    let mut s = SellerSession::open(seller);
    let mut b = BuyerSession::open(buyer, seller.list);
    let mut offer = b.opening_offer();
    loop {
        match s.respond(offer) {
            SellerResponse::Accept(price) => {
                return Outcome::Deal {
                    price,
                    rounds: b.rounds(),
                }
            }
            SellerResponse::Counter(counter) => match b.respond(counter) {
                BuyerMove::Accept(price) => {
                    return Outcome::Deal {
                        price,
                        rounds: b.rounds(),
                    }
                }
                BuyerMove::Offer(next) => offer = next,
                BuyerMove::Abort => return Outcome::NoDeal { rounds: b.rounds() },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seller(list: u64, reservation: u64) -> SellerPolicy {
        SellerPolicy {
            list: Money::from_units(list),
            reservation: Money::from_units(reservation),
            concession: 0.1,
            strategy: ConcessionStrategy::Proportional,
        }
    }

    fn buyer(budget: u64) -> BuyerPolicy {
        BuyerPolicy {
            budget: Money::from_units(budget),
            opening_fraction: 0.6,
            raise: 0.1,
            max_rounds: 20,
        }
    }

    #[test]
    fn generous_buyer_gets_a_deal() {
        match negotiate(seller(100, 70), buyer(120)) {
            Outcome::Deal { price, rounds } => {
                assert!(
                    price >= Money::from_units(70),
                    "never below reservation: {price}"
                );
                assert!(
                    price <= Money::from_units(120),
                    "never above budget: {price}"
                );
                assert!(rounds >= 1);
            }
            Outcome::NoDeal { .. } => panic!("expected a deal"),
        }
    }

    #[test]
    fn poor_buyer_walks_away() {
        // budget far below reservation
        match negotiate(seller(100, 90), buyer(30)) {
            Outcome::NoDeal { rounds } => assert!(rounds <= 20),
            Outcome::Deal { price, .. } => panic!("impossible deal at {price}"),
        }
    }

    #[test]
    fn deal_price_is_at_most_list() {
        for budget in [80u64, 100, 150, 500] {
            if let Outcome::Deal { price, .. } = negotiate(seller(100, 60), buyer(budget)) {
                assert!(price <= Money::from_units(100), "deal above list: {price}");
            }
        }
    }

    #[test]
    fn seller_never_concedes_below_reservation() {
        let mut s = SellerSession::open(seller(100, 80));
        for _ in 0..50 {
            match s.respond(Money::from_units(1)) {
                SellerResponse::Counter(ask) => {
                    assert!(ask >= Money::from_units(80));
                }
                SellerResponse::Accept(_) => panic!("must not accept $1"),
            }
        }
        assert_eq!(s.ask(), Money::from_units(80));
    }

    #[test]
    fn buyer_never_offers_above_budget() {
        let mut b = BuyerSession::open(buyer(100), Money::from_units(200));
        let mut last = b.opening_offer();
        assert!(last <= Money::from_units(100));
        for _ in 0..30 {
            match b.respond(Money::from_units(500)) {
                BuyerMove::Offer(o) => {
                    assert!(o <= Money::from_units(100));
                    assert!(o >= last, "offers must be monotone");
                    last = o;
                }
                BuyerMove::Abort => return,
                BuyerMove::Accept(_) => panic!("cannot accept above budget"),
            }
        }
        panic!("buyer must eventually abort against an immovable seller");
    }

    #[test]
    fn buyer_accepts_affordable_near_counter() {
        let mut b = BuyerSession::open(buyer(100), Money::from_units(100));
        let opening = b.opening_offer(); // 60
        let close = opening.scale(1.05);
        match b.respond(close) {
            BuyerMove::Accept(p) => assert_eq!(p, close),
            other => panic!("expected accept, got {other:?}"),
        }
    }

    #[test]
    fn with_margin_builds_reservation() {
        let p = SellerPolicy::with_margin(Money::from_units(100), 0.7, 0.1);
        assert_eq!(p.reservation, Money::from_units(70));
        let p = SellerPolicy::with_margin(Money::from_units(100), 2.0, 0.1);
        assert_eq!(
            p.reservation,
            Money::from_units(100),
            "fraction clamps to 1"
        );
    }

    #[test]
    fn outcome_price_accessor() {
        assert_eq!(
            Outcome::Deal {
                price: Money(5),
                rounds: 1
            }
            .price(),
            Some(Money(5))
        );
        assert_eq!(Outcome::NoDeal { rounds: 3 }.price(), None);
    }

    #[test]
    fn time_dependent_ask_reaches_reservation_at_the_deadline() {
        let policy = SellerPolicy::with_margin(Money::from_units(100), 0.6, 0.0).with_strategy(
            ConcessionStrategy::TimeDependent {
                deadline_rounds: 5,
                exponent: 2.0,
            },
        );
        let mut s = SellerSession::open(policy);
        let mut last_ask = policy.list;
        for round in 1..=5 {
            match s.respond(Money::from_units(1)) {
                SellerResponse::Counter(ask) => {
                    assert!(ask <= last_ask, "asks never rise: round {round}");
                    last_ask = ask;
                }
                SellerResponse::Accept(_) => panic!("$1 is never acceptable"),
            }
        }
        assert_eq!(
            last_ask,
            Money::from_units(60),
            "deadline ask = reservation"
        );
    }

    #[test]
    fn boulware_holds_higher_asks_than_conceder_early() {
        let base = SellerPolicy::with_margin(Money::from_units(100), 0.5, 0.0);
        let mut boulware =
            SellerSession::open(base.with_strategy(ConcessionStrategy::TimeDependent {
                deadline_rounds: 10,
                exponent: 4.0,
            }));
        let mut conceder =
            SellerSession::open(base.with_strategy(ConcessionStrategy::TimeDependent {
                deadline_rounds: 10,
                exponent: 0.25,
            }));
        // after 3 lowball rounds, the Boulware ask is far above the
        // Conceder ask
        let mut asks = (Money(0), Money(0));
        for _ in 0..3 {
            if let SellerResponse::Counter(a) = boulware.respond(Money::from_units(1)) {
                asks.0 = a;
            }
            if let SellerResponse::Counter(a) = conceder.respond(Money::from_units(1)) {
                asks.1 = a;
            }
        }
        assert!(
            asks.0 > asks.1,
            "boulware {} must stay above conceder {}",
            asks.0,
            asks.1
        );
    }

    #[test]
    fn boulware_extracts_no_less_than_conceder_from_the_same_buyer() {
        let base = SellerPolicy::with_margin(Money::from_units(100), 0.5, 0.0);
        let buyer = BuyerPolicy {
            budget: Money::from_units(95),
            opening_fraction: 0.4,
            raise: 0.15,
            max_rounds: 20,
        };
        let boulware = negotiate(
            base.with_strategy(ConcessionStrategy::TimeDependent {
                deadline_rounds: 12,
                exponent: 4.0,
            }),
            buyer,
        );
        let conceder = negotiate(
            base.with_strategy(ConcessionStrategy::TimeDependent {
                deadline_rounds: 12,
                exponent: 0.25,
            }),
            buyer,
        );
        let (Some(pb), Some(pc)) = (boulware.price(), conceder.price()) else {
            panic!("both tactics must close against a 95-budget buyer: {boulware:?} {conceder:?}");
        };
        assert!(pb >= pc, "stubbornness must not sell cheaper: {pb} vs {pc}");
    }

    #[test]
    fn higher_budget_never_hurts() {
        // monotonicity: raising the budget cannot turn a deal into no-deal
        let s = seller(100, 70);
        let low = negotiate(s, buyer(90));
        let high = negotiate(s, buyer(140));
        if low.price().is_some() {
            assert!(high.price().is_some());
        }
    }
}
