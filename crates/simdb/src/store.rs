//! A durable multi-table JSON document store.
//!
//! [`JsonStore`] is the "database server" face of simdb: named tables of
//! JSON rows, every mutation logged to a [`Wal`], with snapshot +
//! log-replay recovery. The recommendation mechanism's `UserDB` and
//! `BSMDB` are instances of this store.
//!
//! ```
//! use simdb::store::JsonStore;
//!
//! # fn main() -> Result<(), simdb::error::DbError> {
//! let mut db = JsonStore::new("userdb");
//! db.create_table("profiles")?;
//! db.put("profiles", "u1", serde_json::json!({"category": "books"}))?;
//!
//! // crash...
//! let snapshot = db.snapshot();
//! let wal_bytes = db.wal_bytes();
//! let recovered = JsonStore::recover("userdb", &snapshot, &wal_bytes)?;
//! assert_eq!(recovered.get("profiles", "u1"), db.get("profiles", "u1"));
//! # Ok(())
//! # }
//! ```

use crate::error::{DbError, Result};
use crate::wal::{LogRecord, Wal};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

type Rows = BTreeMap<String, serde_json::Value>;

/// A field-path secondary index over one table: rows are indexed by the
/// stringified value at `field_path` (dot-separated for nesting, e.g.
/// `"consumer"` or `"item.id"`). The definition is plain data, so the
/// whole store — indexes included — stays serde-serializable and indexes
/// rebuild automatically on recovery.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct FieldIndex {
    field_path: String,
    /// index value -> row keys
    map: BTreeMap<String, std::collections::BTreeSet<String>>,
}

/// Stringify the value found at a dot-separated path inside a row, if
/// present. Strings index by their content; everything else by its JSON
/// text.
fn field_key(row: &serde_json::Value, field_path: &str) -> Option<String> {
    let mut v = row;
    for part in field_path.split('.') {
        v = v.get(part)?;
    }
    Some(match v {
        serde_json::Value::String(s) => s.clone(),
        other => other.to_string(),
    })
}

impl FieldIndex {
    fn insert(&mut self, key: &str, row: &serde_json::Value) {
        if let Some(ik) = field_key(row, &self.field_path) {
            self.map.entry(ik).or_default().insert(key.to_string());
        }
    }

    fn remove(&mut self, key: &str, row: &serde_json::Value) {
        if let Some(ik) = field_key(row, &self.field_path) {
            if let Some(set) = self.map.get_mut(&ik) {
                set.remove(key);
                if set.is_empty() {
                    self.map.remove(&ik);
                }
            }
        }
    }
}

/// Serializable snapshot contents (tables only; the WAL is separate).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct Snapshot {
    tables: BTreeMap<String, Rows>,
}

/// Multi-table JSON store with write-ahead logging.
///
/// The store itself is serde-serializable, so an agent can carry its
/// database as part of its migratable/deactivatable state — exactly how
/// the PA carries UserDB and the BSMA carries BSMDB in `abcrm-core`.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct JsonStore {
    name: String,
    tables: BTreeMap<String, Rows>,
    wal: Wal,
    /// (table, index name) -> index
    #[serde(default)]
    indexes: BTreeMap<String, BTreeMap<String, FieldIndex>>,
}

impl JsonStore {
    /// Create an empty store.
    pub fn new(name: impl Into<String>) -> Self {
        JsonStore {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Store name (e.g. `"userdb"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Create a table. Idempotent: creating an existing table is a no-op
    /// (and is not logged again).
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility.
    pub fn create_table(&mut self, table: &str) -> Result<()> {
        if !self.tables.contains_key(table) {
            self.wal.append(LogRecord::CreateTable {
                table: table.to_string(),
            });
            self.tables.insert(table.to_string(), Rows::new());
        }
        Ok(())
    }

    /// Insert or replace the row at `key`.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] if the table does not exist.
    pub fn put(&mut self, table: &str, key: &str, value: serde_json::Value) -> Result<()> {
        let rows = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        self.wal.append(LogRecord::Put {
            table: table.to_string(),
            key: key.to_string(),
            value: value.clone(),
        });
        let old = rows.insert(key.to_string(), value.clone());
        if let Some(table_indexes) = self.indexes.get_mut(table) {
            for index in table_indexes.values_mut() {
                if let Some(old) = &old {
                    index.remove(key, old);
                }
                index.insert(key, &value);
            }
        }
        Ok(())
    }

    /// Typed convenience over [`JsonStore::put`].
    ///
    /// # Errors
    ///
    /// [`DbError::Serialization`] if `value` cannot be serialized;
    /// [`DbError::UnknownTable`] if the table does not exist.
    pub fn put_typed<T: Serialize>(&mut self, table: &str, key: &str, value: &T) -> Result<()> {
        let v = serde_json::to_value(value).map_err(|e| DbError::Serialization(e.to_string()))?;
        self.put(table, key, v)
    }

    /// Row at `key`, if present.
    pub fn get(&self, table: &str, key: &str) -> Option<&serde_json::Value> {
        self.tables.get(table)?.get(key)
    }

    /// Typed convenience over [`JsonStore::get`]; `None` if the row is
    /// absent.
    ///
    /// # Errors
    ///
    /// [`DbError::Serialization`] if the stored row does not match `T`.
    pub fn get_typed<T: serde::de::DeserializeOwned>(
        &self,
        table: &str,
        key: &str,
    ) -> Result<Option<T>> {
        match self.get(table, key) {
            None => Ok(None),
            Some(v) => serde_json::from_value(v.clone())
                .map(Some)
                .map_err(|e| DbError::Serialization(e.to_string())),
        }
    }

    /// Delete the row at `key`. Returns whether a row was removed.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] if the table does not exist.
    pub fn delete(&mut self, table: &str, key: &str) -> Result<bool> {
        let rows = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        let removed = rows.remove(key);
        if let Some(old) = &removed {
            self.wal.append(LogRecord::Delete {
                table: table.to_string(),
                key: key.to_string(),
            });
            if let Some(table_indexes) = self.indexes.get_mut(table) {
                for index in table_indexes.values_mut() {
                    index.remove(key, old);
                }
            }
        }
        Ok(removed.is_some())
    }

    /// Register a field-path secondary index over `table`. Existing rows
    /// are indexed immediately; the index is maintained on every put and
    /// delete thereafter. Replaces any index of the same name.
    ///
    /// `field_path` is dot-separated for nested fields (`"item.id"`).
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] if the table does not exist.
    pub fn add_index(&mut self, table: &str, index: &str, field_path: &str) -> Result<()> {
        let rows = self
            .tables
            .get(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        let mut field_index = FieldIndex {
            field_path: field_path.to_string(),
            map: BTreeMap::new(),
        };
        for (key, row) in rows {
            field_index.insert(key, row);
        }
        self.indexes
            .entry(table.to_string())
            .or_default()
            .insert(index.to_string(), field_index);
        Ok(())
    }

    /// Row keys whose indexed field equals `value`, in key order.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownIndex`] if `index` was never registered on
    /// `table`.
    pub fn lookup(&self, table: &str, index: &str, value: &str) -> Result<Vec<&str>> {
        let field_index = self
            .indexes
            .get(table)
            .and_then(|m| m.get(index))
            .ok_or_else(|| DbError::UnknownIndex(format!("{table}.{index}")))?;
        Ok(field_index
            .map
            .get(value)
            .map(|set| set.iter().map(|s| s.as_str()).collect())
            .unwrap_or_default())
    }

    /// Rows (key + value) whose indexed field equals `value`.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownIndex`] if `index` was never registered on
    /// `table`.
    pub fn lookup_rows(
        &self,
        table: &str,
        index: &str,
        value: &str,
    ) -> Result<Vec<(&str, &serde_json::Value)>> {
        let keys = self.lookup(table, index, value)?;
        let rows = self
            .tables
            .get(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        Ok(keys
            .into_iter()
            .filter_map(|k| rows.get_key_value(k).map(|(k, v)| (k.as_str(), v)))
            .collect())
    }

    /// Iterate a table's rows in key order.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] if the table does not exist.
    pub fn scan(&self, table: &str) -> Result<impl Iterator<Item = (&str, &serde_json::Value)>> {
        let rows = self
            .tables
            .get(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        Ok(rows.iter().map(|(k, v)| (k.as_str(), v)))
    }

    /// Number of rows in a table (0 for unknown tables).
    pub fn table_len(&self, table: &str) -> usize {
        self.tables.get(table).map(|r| r.len()).unwrap_or(0)
    }

    /// Names of all tables, in order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Serialize the current table contents (not the WAL).
    pub fn snapshot(&self) -> Vec<u8> {
        let snap = Snapshot {
            tables: self.tables.clone(),
        };
        serde_json::to_vec(&snap).expect("snapshot serializes")
    }

    /// Current WAL bytes (what would be on disk).
    pub fn wal_bytes(&self) -> Vec<u8> {
        self.wal.encode()
    }

    /// Number of unflushed WAL records.
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }

    /// Checkpoint: return a fresh snapshot and truncate the WAL.
    pub fn checkpoint(&mut self) -> Vec<u8> {
        let snap = self.snapshot();
        self.wal.truncate();
        snap
    }

    /// Rebuild a store from a snapshot plus a WAL tail.
    ///
    /// # Errors
    ///
    /// [`DbError::Serialization`] for an unreadable snapshot,
    /// [`DbError::WalCorrupt`] for a corrupt log,
    /// [`DbError::UnknownTable`] if the log references a table the
    /// snapshot+log never created.
    pub fn recover(name: impl Into<String>, snapshot: &[u8], wal_bytes: &[u8]) -> Result<Self> {
        let snap: Snapshot = if snapshot.is_empty() {
            Snapshot::default()
        } else {
            serde_json::from_slice(snapshot).map_err(|e| DbError::Serialization(e.to_string()))?
        };
        let mut store = JsonStore {
            name: name.into(),
            tables: snap.tables,
            ..Default::default()
        };
        let wal = Wal::decode(wal_bytes)?;
        for record in wal.records() {
            match record {
                LogRecord::CreateTable { table } => {
                    store.tables.entry(table.clone()).or_default();
                }
                LogRecord::Put { table, key, value } => {
                    let rows = store
                        .tables
                        .get_mut(table)
                        .ok_or_else(|| DbError::UnknownTable(table.clone()))?;
                    rows.insert(key.clone(), value.clone());
                }
                LogRecord::Delete { table, key } => {
                    let rows = store
                        .tables
                        .get_mut(table)
                        .ok_or_else(|| DbError::UnknownTable(table.clone()))?;
                    rows.remove(key);
                }
                // Durability records belong to a runtime DurableStore log,
                // not a table store; finding one here means the wrong log
                // was replayed against this snapshot.
                LogRecord::Capsule { .. }
                | LogRecord::CapsuleGone { .. }
                | LogRecord::PurchaseIntent { .. }
                | LogRecord::PurchaseCommit { .. }
                | LogRecord::PurchaseAbort { .. }
                | LogRecord::ProfileDelta { .. } => {
                    return Err(DbError::Serialization(
                        "durability record is not valid for a table store".into(),
                    ));
                }
            }
        }
        // Recovery replays history; the recovered WAL starts clean,
        // matching a checkpoint-on-recovery discipline.
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use serde_json::json;

    fn store_with_data() -> JsonStore {
        let mut db = JsonStore::new("test");
        db.create_table("t").unwrap();
        db.put("t", "a", json!(1)).unwrap();
        db.put("t", "b", json!({"x": [1, 2]})).unwrap();
        db
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut db = store_with_data();
        assert_eq!(db.get("t", "a"), Some(&json!(1)));
        assert!(db.delete("t", "a").unwrap());
        assert!(!db.delete("t", "a").unwrap());
        assert_eq!(db.get("t", "a"), None);
    }

    #[test]
    fn unknown_table_operations_error() {
        let mut db = JsonStore::new("test");
        assert!(matches!(
            db.put("nope", "k", json!(1)),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            db.delete("nope", "k"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(db.scan("nope").is_err());
        assert_eq!(db.table_len("nope"), 0);
    }

    #[test]
    fn typed_put_get_round_trip() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct P {
            age: u8,
        }
        let mut db = JsonStore::new("test");
        db.create_table("p").unwrap();
        db.put_typed("p", "u", &P { age: 30 }).unwrap();
        assert_eq!(db.get_typed::<P>("p", "u").unwrap(), Some(P { age: 30 }));
        assert_eq!(db.get_typed::<P>("p", "missing").unwrap(), None);
        // wrong type errors
        db.put("p", "bad", json!("a string")).unwrap();
        assert!(db.get_typed::<P>("p", "bad").is_err());
    }

    #[test]
    fn recovery_from_snapshot_plus_wal_replays_everything() {
        let mut db = store_with_data();
        let snapshot = db.checkpoint();
        // post-checkpoint mutations live only in the WAL
        db.put("t", "c", json!(3)).unwrap();
        db.delete("t", "a").unwrap();
        db.create_table("t2").unwrap();
        db.put("t2", "z", json!(9)).unwrap();
        let recovered = JsonStore::recover("test", &snapshot, &db.wal_bytes()).unwrap();
        assert_eq!(recovered.get("t", "c"), Some(&json!(3)));
        assert_eq!(recovered.get("t", "a"), None);
        assert_eq!(recovered.get("t", "b"), Some(&json!({"x": [1, 2]})));
        assert_eq!(recovered.get("t2", "z"), Some(&json!(9)));
        assert_eq!(
            recovered.wal_len(),
            0,
            "recovered store starts with a clean wal"
        );
    }

    #[test]
    fn recovery_from_empty_state_is_empty() {
        let db = JsonStore::recover("fresh", b"", b"").unwrap();
        assert!(db.table_names().is_empty());
    }

    #[test]
    fn recovery_with_torn_final_wal_record_drops_it() {
        let db = store_with_data();
        let mut wal = db.wal_bytes();
        wal.extend_from_slice(b"{\"Put\":{\"tab"); // torn write
        let recovered = JsonStore::recover("test", b"", &wal).unwrap();
        assert_eq!(recovered.get("t", "b"), Some(&json!({"x": [1, 2]})));
    }

    #[test]
    fn checkpoint_truncates_wal() {
        let mut db = store_with_data();
        assert!(db.wal_len() > 0);
        db.checkpoint();
        assert_eq!(db.wal_len(), 0);
    }

    #[test]
    fn scan_iterates_in_key_order() {
        let db = store_with_data();
        let keys: Vec<&str> = db.scan("t").unwrap().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn field_index_lookup_finds_rows_by_field() {
        let mut db = JsonStore::new("test");
        db.create_table("tx").unwrap();
        db.put("tx", "1", json!({"consumer": "u1", "amount": 5}))
            .unwrap();
        db.put("tx", "2", json!({"consumer": "u2", "amount": 7}))
            .unwrap();
        db.put("tx", "3", json!({"consumer": "u1", "amount": 9}))
            .unwrap();
        db.add_index("tx", "by-consumer", "consumer").unwrap();
        assert_eq!(
            db.lookup("tx", "by-consumer", "u1").unwrap(),
            vec!["1", "3"]
        );
        assert_eq!(
            db.lookup("tx", "by-consumer", "u9").unwrap(),
            Vec::<&str>::new()
        );
        let rows = db.lookup_rows("tx", "by-consumer", "u2").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1["amount"], json!(7));
    }

    #[test]
    fn field_index_is_maintained_on_put_and_delete() {
        let mut db = JsonStore::new("test");
        db.create_table("tx").unwrap();
        db.add_index("tx", "by-consumer", "consumer").unwrap();
        db.put("tx", "1", json!({"consumer": "u1"})).unwrap();
        assert_eq!(db.lookup("tx", "by-consumer", "u1").unwrap(), vec!["1"]);
        // overwrite moves the row under a new index value
        db.put("tx", "1", json!({"consumer": "u2"})).unwrap();
        assert!(db.lookup("tx", "by-consumer", "u1").unwrap().is_empty());
        assert_eq!(db.lookup("tx", "by-consumer", "u2").unwrap(), vec!["1"]);
        db.delete("tx", "1").unwrap();
        assert!(db.lookup("tx", "by-consumer", "u2").unwrap().is_empty());
    }

    #[test]
    fn field_index_supports_nested_paths_and_numbers() {
        let mut db = JsonStore::new("test");
        db.create_table("tx").unwrap();
        db.put("tx", "a", json!({"item": {"id": 7}})).unwrap();
        db.add_index("tx", "by-item", "item.id").unwrap();
        assert_eq!(db.lookup("tx", "by-item", "7").unwrap(), vec!["a"]);
        // rows missing the field are simply unindexed
        db.put("tx", "b", json!({"other": 1})).unwrap();
        assert_eq!(db.lookup("tx", "by-item", "7").unwrap(), vec!["a"]);
    }

    #[test]
    fn unknown_index_errors() {
        let mut db = JsonStore::new("test");
        db.create_table("tx").unwrap();
        assert!(matches!(
            db.lookup("tx", "nope", "x"),
            Err(DbError::UnknownIndex(_))
        ));
        assert!(matches!(
            db.add_index("ghost", "i", "f"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn create_table_is_idempotent() {
        let mut db = JsonStore::new("test");
        db.create_table("t").unwrap();
        let wal_before = db.wal_len();
        db.create_table("t").unwrap();
        assert_eq!(db.wal_len(), wal_before);
    }
}
