//! # simdb — database substrate for the recommendation mechanism
//!
//! The paper's Buyer Agent Server keeps two databases (§3.3): **UserDB**
//! (*"records the consumer user profile and consumer transaction
//! records"*) and **BSMDB** (*"records the E-commerce platform's
//! marketplaces, sell server and coordinator server information"*, plus
//! online BRA/MBA bookkeeping). This crate provides their storage engine:
//!
//! * [`table::Table`] — typed, ordered tables with multi-valued secondary
//!   indexes (used embedded, e.g. profiles indexed by category);
//! * [`store::JsonStore`] — a multi-table JSON document store with a
//!   write-ahead log ([`wal::Wal`]) and snapshot + replay recovery.
//!
//! ```
//! use simdb::store::JsonStore;
//!
//! # fn main() -> Result<(), simdb::error::DbError> {
//! let mut userdb = JsonStore::new("userdb");
//! userdb.create_table("transactions")?;
//! userdb.put("transactions", "tx-1", serde_json::json!({
//!     "consumer": "u42", "item": "rust-book", "price": 35
//! }))?;
//! assert_eq!(userdb.table_len("transactions"), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod file_wal;
pub mod store;
pub mod table;
pub mod wal;

pub use error::{DbError, Result};
pub use file_wal::FileWal;
pub use store::JsonStore;
pub use table::Table;
pub use wal::{LogRecord, Wal};
