//! Write-ahead log.
//!
//! Every mutation of a [`crate::store::JsonStore`] is appended to the log
//! before it is applied. Recovery replays the log over the last snapshot,
//! so a crash between checkpoint and crash-point loses nothing. The
//! encoding is newline-delimited JSON, chosen for debuggability.

use crate::error::{DbError, Result};
use serde::{Deserialize, Serialize};

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Create an (empty) table.
    CreateTable {
        /// Table name.
        table: String,
    },
    /// Insert or replace the row at `key`.
    Put {
        /// Table name.
        table: String,
        /// Row key.
        key: String,
        /// Row contents.
        value: serde_json::Value,
    },
    /// Delete the row at `key`.
    Delete {
        /// Table name.
        table: String,
        /// Row key.
        key: String,
    },
    /// An agent capsule captured at a migration or lifecycle boundary.
    /// `active` distinguishes a running agent (journalled after a
    /// callback) from one deactivated into long-term storage.
    Capsule {
        /// Raw agent id (`AgentId.0`).
        agent: u64,
        /// The serialized [`AgentCapsule`] as produced by the runtime.
        capsule: serde_json::Value,
        /// Whether the agent was active (vs deactivated) when logged.
        active: bool,
    },
    /// The agent left this host (dispatched away) or was disposed; any
    /// earlier capsule record for it no longer applies here.
    CapsuleGone {
        /// Raw agent id.
        agent: u64,
    },
    /// A purchase is about to be attempted. Logged before the buyer
    /// dispatches toward the marketplace; always forced to the synced
    /// prefix (fsync-on-intent).
    PurchaseIntent {
        /// Globally unique intent id (stable across retries).
        intent: u64,
        /// Free-form detail (consumer, item, market) for diagnostics.
        detail: serde_json::Value,
    },
    /// The purchase identified by `intent` definitely happened.
    PurchaseCommit {
        /// Intent id from the matching [`LogRecord::PurchaseIntent`].
        intent: u64,
        /// Outcome detail (item, price, channel).
        detail: serde_json::Value,
    },
    /// The purchase identified by `intent` definitely did not happen.
    PurchaseAbort {
        /// Intent id from the matching [`LogRecord::PurchaseIntent`].
        intent: u64,
        /// Why the purchase was abandoned.
        reason: String,
    },
    /// An incremental profile-update delta for a learning agent that
    /// journals deltas instead of whole capsules.
    ProfileDelta {
        /// Raw agent id of the profile owner (the journaling agent).
        agent: u64,
        /// The delta payload, replayed through `Agent::on_recovered`.
        delta: serde_json::Value,
    },
}

/// An append-only operation log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Wal {
    records: Vec<LogRecord>,
}

impl Wal {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn append(&mut self, record: LogRecord) {
        self.records.push(record);
    }

    /// Records in append order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop all records (after a checkpoint).
    pub fn truncate(&mut self) {
        self.records.clear();
    }

    /// Keep only the first `n` records, dropping the tail. Models the
    /// crash-time loss of an unsynced suffix: everything past the fsync
    /// watermark never reached stable storage. A prefix longer than the
    /// log is a no-op.
    pub fn retain_prefix(&mut self, n: usize) {
        self.records.truncate(n);
    }

    /// Serialize to newline-delimited JSON.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for r in &self.records {
            // a LogRecord is a plain enum of strings/values; serialization
            // cannot fail
            let line = serde_json::to_string(r).expect("log record serializes");
            out.extend_from_slice(line.as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Decode a log previously produced by [`Wal::encode`]. Trailing
    /// partial lines (a torn write from a crash) are tolerated and
    /// truncated; corruption in the middle is an error.
    ///
    /// # Errors
    ///
    /// [`DbError::WalCorrupt`] if a non-final record fails to parse.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let text = String::from_utf8_lossy(bytes);
        let lines: Vec<&str> = text.split('\n').filter(|l| !l.is_empty()).collect();
        let mut records = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            match serde_json::from_str::<LogRecord>(line) {
                Ok(r) => records.push(r),
                Err(e) if i + 1 == lines.len() => {
                    // torn final record: drop it, the mutation was never
                    // acknowledged
                    let _ = e;
                    break;
                }
                Err(e) => {
                    return Err(DbError::WalCorrupt {
                        record: i,
                        reason: e.to_string(),
                    })
                }
            }
        }
        Ok(Wal { records })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn put(table: &str, key: &str, v: i64) -> LogRecord {
        LogRecord::Put {
            table: table.into(),
            key: key.into(),
            value: serde_json::json!(v),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut wal = Wal::new();
        wal.append(LogRecord::CreateTable { table: "t".into() });
        wal.append(put("t", "a", 1));
        wal.append(LogRecord::Delete {
            table: "t".into(),
            key: "a".into(),
        });
        let decoded = Wal::decode(&wal.encode()).unwrap();
        assert_eq!(decoded, wal);
    }

    #[test]
    fn torn_final_record_is_dropped() {
        let mut wal = Wal::new();
        wal.append(put("t", "a", 1));
        wal.append(put("t", "b", 2));
        let mut bytes = wal.encode();
        // simulate crash mid-write of a third record
        bytes.extend_from_slice(b"{\"Put\":{\"table\":\"t\",\"ke");
        let decoded = Wal::decode(&bytes).unwrap();
        assert_eq!(decoded.len(), 2);
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let mut wal = Wal::new();
        wal.append(put("t", "a", 1));
        let mut bytes = b"garbage-record\n".to_vec();
        bytes.extend_from_slice(&wal.encode());
        match Wal::decode(&bytes) {
            Err(DbError::WalCorrupt { record, .. }) => assert_eq!(record, 0),
            other => panic!("expected WalCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncate_empties_the_log() {
        let mut wal = Wal::new();
        wal.append(put("t", "a", 1));
        wal.truncate();
        assert!(wal.is_empty());
        assert_eq!(wal.encode(), b"");
    }

    #[test]
    fn empty_log_decodes_empty() {
        assert!(Wal::decode(b"").unwrap().is_empty());
    }

    #[test]
    fn durability_records_round_trip() {
        let mut wal = Wal::new();
        wal.append(LogRecord::Capsule {
            agent: 7,
            capsule: serde_json::json!({"state": {"x": 1}}),
            active: true,
        });
        wal.append(LogRecord::PurchaseIntent {
            intent: 42,
            detail: serde_json::json!({"item": 3}),
        });
        wal.append(LogRecord::PurchaseCommit {
            intent: 42,
            detail: serde_json::json!({"price": 9.5}),
        });
        wal.append(LogRecord::PurchaseAbort {
            intent: 43,
            reason: "mba lost".into(),
        });
        wal.append(LogRecord::ProfileDelta {
            agent: 9,
            delta: serde_json::json!({"kind": "Purchase"}),
        });
        wal.append(LogRecord::CapsuleGone { agent: 7 });
        let decoded = Wal::decode(&wal.encode()).unwrap();
        assert_eq!(decoded, wal);
    }

    #[test]
    fn retain_prefix_drops_the_tail() {
        let mut wal = Wal::new();
        wal.append(put("t", "a", 1));
        wal.append(put("t", "b", 2));
        wal.append(put("t", "c", 3));
        wal.retain_prefix(2);
        assert_eq!(wal.len(), 2);
        // longer than the log: no-op
        wal.retain_prefix(10);
        assert_eq!(wal.len(), 2);
    }
}
