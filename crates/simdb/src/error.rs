//! Error types for database operations.

use std::fmt;

/// Errors returned by simdb operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Insert with a key that is already present.
    DuplicateKey(String),
    /// Get/update/delete of an absent key.
    MissingRow(String),
    /// Lookup against an index name that was never registered.
    UnknownIndex(String),
    /// A table name was not found in the store.
    UnknownTable(String),
    /// (De)serialization of a row or log record failed.
    Serialization(String),
    /// The write-ahead log contains an undecodable record.
    WalCorrupt {
        /// Zero-based index of the corrupt record.
        record: usize,
        /// Decoder error description.
        reason: String,
    },
    /// A filesystem operation on a file-backed log failed.
    Io(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            DbError::MissingRow(k) => write!(f, "missing row {k}"),
            DbError::UnknownIndex(n) => write!(f, "unknown index `{n}`"),
            DbError::UnknownTable(n) => write!(f, "unknown table `{n}`"),
            DbError::Serialization(e) => write!(f, "serialization failed: {e}"),
            DbError::WalCorrupt { record, reason } => {
                write!(f, "wal record {record} is corrupt: {reason}")
            }
            DbError::Io(e) => write!(f, "wal file i/o failed: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Result alias for database operations.
pub type Result<T> = std::result::Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        assert_eq!(
            DbError::DuplicateKey("u1".into()).to_string(),
            "duplicate key u1"
        );
        assert!(DbError::WalCorrupt {
            record: 3,
            reason: "eof".into()
        }
        .to_string()
        .contains("record 3"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<DbError>();
    }
}
