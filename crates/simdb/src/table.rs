//! Typed in-memory tables with secondary indexes.
//!
//! A [`Table<K, V>`] stores rows ordered by primary key and maintains any
//! number of named secondary indexes, each defined by an extractor that
//! maps a row to the index keys it should appear under (multi-valued, so a
//! consumer row can be indexed under every category it likes).

use crate::error::{DbError, Result};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

type Extractor<V> = Box<dyn Fn(&V) -> Vec<String> + Send + Sync>;

struct Index<K> {
    map: BTreeMap<String, BTreeSet<K>>,
}

/// An ordered table keyed by `K` with secondary indexes.
///
/// ```
/// use simdb::table::Table;
///
/// # fn main() -> Result<(), simdb::error::DbError> {
/// let mut users: Table<u64, String> = Table::new("users");
/// users.add_index("first-letter", |name: &String| {
///     name.chars().next().map(|c| c.to_string()).into_iter().collect()
/// });
/// users.insert(1, "alice".to_string())?;
/// users.insert(2, "bob".to_string())?;
/// assert_eq!(users.lookup("first-letter", "a")?, vec![1]);
/// # Ok(())
/// # }
/// ```
pub struct Table<K, V> {
    name: String,
    rows: BTreeMap<K, V>,
    extractors: BTreeMap<String, Extractor<V>>,
    indexes: BTreeMap<String, Index<K>>,
    /// Monotone version, bumped on every mutation. Lets caches detect
    /// staleness cheaply.
    version: u64,
}

impl<K, V> Table<K, V>
where
    K: Ord + Clone,
{
    /// Create an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            rows: BTreeMap::new(),
            extractors: BTreeMap::new(),
            indexes: BTreeMap::new(),
            version: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register a secondary index. Existing rows are indexed immediately.
    pub fn add_index<F>(&mut self, index: impl Into<String>, extractor: F)
    where
        F: Fn(&V) -> Vec<String> + Send + Sync + 'static,
    {
        let index = index.into();
        let mut map: BTreeMap<String, BTreeSet<K>> = BTreeMap::new();
        for (k, v) in &self.rows {
            for ik in extractor(v) {
                map.entry(ik).or_default().insert(k.clone());
            }
        }
        self.extractors.insert(index.clone(), Box::new(extractor));
        self.indexes.insert(index, Index { map });
    }

    fn index_row(&mut self, key: &K, value: &V) {
        for (name, extractor) in &self.extractors {
            let idx = self
                .indexes
                .get_mut(name)
                .expect("index exists for extractor");
            for ik in extractor(value) {
                idx.map.entry(ik).or_default().insert(key.clone());
            }
        }
    }

    fn unindex_row(&mut self, key: &K, value: &V) {
        for (name, extractor) in &self.extractors {
            let idx = self
                .indexes
                .get_mut(name)
                .expect("index exists for extractor");
            for ik in extractor(value) {
                if let Some(set) = idx.map.get_mut(&ik) {
                    set.remove(key);
                    if set.is_empty() {
                        idx.map.remove(&ik);
                    }
                }
            }
        }
    }

    /// Insert a fresh row.
    ///
    /// # Errors
    ///
    /// [`DbError::DuplicateKey`] if the key is already present.
    pub fn insert(&mut self, key: K, value: V) -> Result<()>
    where
        K: fmt::Debug,
    {
        if self.rows.contains_key(&key) {
            return Err(DbError::DuplicateKey(format!("{key:?}")));
        }
        self.index_row(&key, &value);
        self.rows.insert(key, value);
        self.version += 1;
        Ok(())
    }

    /// Insert or replace; returns the previous row if any.
    pub fn upsert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(old) = self.rows.remove(&key) {
            self.unindex_row(&key, &old);
            self.index_row(&key, &value);
            self.rows.insert(key, value);
            self.version += 1;
            Some(old)
        } else {
            self.index_row(&key, &value);
            self.rows.insert(key, value);
            self.version += 1;
            None
        }
    }

    /// Shared access to a row.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.rows.get(key)
    }

    /// Whether a key exists.
    pub fn contains(&self, key: &K) -> bool {
        self.rows.contains_key(key)
    }

    /// Apply `f` to the row at `key`, reindexing afterwards.
    ///
    /// # Errors
    ///
    /// [`DbError::MissingRow`] if absent.
    pub fn update<F>(&mut self, key: &K, f: F) -> Result<()>
    where
        K: fmt::Debug,
        F: FnOnce(&mut V),
    {
        let Some(mut value) = self.rows.remove(key) else {
            return Err(DbError::MissingRow(format!("{key:?}")));
        };
        self.unindex_row(key, &value);
        f(&mut value);
        self.index_row(key, &value);
        self.rows.insert(key.clone(), value);
        self.version += 1;
        Ok(())
    }

    /// Remove and return the row at `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let value = self.rows.remove(key)?;
        self.unindex_row(key, &value);
        self.version += 1;
        Some(value)
    }

    /// Rows whose index entry under `index` equals `index_key`, in primary
    /// key order.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownIndex`] if no such index was registered.
    pub fn lookup(&self, index: &str, index_key: &str) -> Result<Vec<K>> {
        let idx = self
            .indexes
            .get(index)
            .ok_or_else(|| DbError::UnknownIndex(index.to_string()))?;
        Ok(idx
            .map
            .get(index_key)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default())
    }

    /// All distinct index keys under `index`, in order.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownIndex`] if no such index was registered.
    pub fn index_keys(&self, index: &str) -> Result<Vec<&str>> {
        let idx = self
            .indexes
            .get(index)
            .ok_or_else(|| DbError::UnknownIndex(index.to_string()))?;
        Ok(idx.map.keys().map(|s| s.as_str()).collect())
    }

    /// Iterate rows in primary-key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.rows.iter()
    }

    /// Rows satisfying `pred`, in primary-key order.
    pub fn select<'a, P>(&'a self, pred: P) -> impl Iterator<Item = (&'a K, &'a V)>
    where
        P: Fn(&V) -> bool + 'a,
    {
        self.rows.iter().filter(move |(_, v)| pred(v))
    }

    /// Rows with keys in `range`, in order.
    pub fn range<R>(&self, range: R) -> impl Iterator<Item = (&K, &V)>
    where
        R: std::ops::RangeBounds<K>,
    {
        self.rows.range(range)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Monotone mutation counter.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Verify every index agrees with a full scan; used by property tests.
    ///
    /// Returns the first inconsistency found, as a description.
    pub fn check_index_consistency(&self) -> std::result::Result<(), String> {
        for (name, extractor) in &self.extractors {
            let idx = &self.indexes[name];
            // every indexed key must match a scan
            let mut expected: BTreeMap<String, BTreeSet<K>> = BTreeMap::new();
            for (k, v) in &self.rows {
                for ik in extractor(v) {
                    expected.entry(ik).or_default().insert(k.clone());
                }
            }
            if expected != idx.map {
                return Err(format!("index `{name}` disagrees with scan"));
            }
        }
        Ok(())
    }
}

impl<K: Ord + Clone + fmt::Debug, V: fmt::Debug> fmt::Debug for Table<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("rows", &self.rows.len())
            .field("indexes", &self.indexes.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct User {
        name: String,
        likes: Vec<String>,
    }

    fn table() -> Table<u64, User> {
        let mut t = Table::new("users");
        t.add_index("likes", |u: &User| u.likes.clone());
        t
    }

    fn user(name: &str, likes: &[&str]) -> User {
        User {
            name: name.into(),
            likes: likes.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = table();
        t.insert(1, user("alice", &["books"])).unwrap();
        assert_eq!(t.get(&1).unwrap().name, "alice");
        assert!(t.contains(&1));
        let removed = t.remove(&1).unwrap();
        assert_eq!(removed.name, "alice");
        assert!(t.is_empty());
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut t = table();
        t.insert(1, user("a", &[])).unwrap();
        assert!(matches!(
            t.insert(1, user("b", &[])),
            Err(DbError::DuplicateKey(_))
        ));
        assert_eq!(t.get(&1).unwrap().name, "a");
    }

    #[test]
    fn multi_valued_index_lookup() {
        let mut t = table();
        t.insert(1, user("alice", &["books", "music"])).unwrap();
        t.insert(2, user("bob", &["music"])).unwrap();
        assert_eq!(t.lookup("likes", "music").unwrap(), vec![1, 2]);
        assert_eq!(t.lookup("likes", "books").unwrap(), vec![1]);
        assert!(t.lookup("likes", "cars").unwrap().is_empty());
    }

    #[test]
    fn unknown_index_errors() {
        let t = table();
        assert!(matches!(
            t.lookup("nope", "x"),
            Err(DbError::UnknownIndex(_))
        ));
    }

    #[test]
    fn update_reindexes() {
        let mut t = table();
        t.insert(1, user("alice", &["books"])).unwrap();
        t.update(&1, |u| u.likes = vec!["cars".into()]).unwrap();
        assert!(t.lookup("likes", "books").unwrap().is_empty());
        assert_eq!(t.lookup("likes", "cars").unwrap(), vec![1]);
        t.check_index_consistency().unwrap();
    }

    #[test]
    fn update_missing_row_errors() {
        let mut t = table();
        assert!(matches!(t.update(&9, |_| {}), Err(DbError::MissingRow(_))));
    }

    #[test]
    fn upsert_replaces_and_reindexes() {
        let mut t = table();
        t.insert(1, user("alice", &["books"])).unwrap();
        let old = t.upsert(1, user("alice2", &["music"]));
        assert_eq!(old.unwrap().name, "alice");
        assert_eq!(t.lookup("likes", "music").unwrap(), vec![1]);
        assert!(t.lookup("likes", "books").unwrap().is_empty());
        assert!(t.upsert(2, user("bob", &[])).is_none());
    }

    #[test]
    fn remove_cleans_indexes() {
        let mut t = table();
        t.insert(1, user("alice", &["books"])).unwrap();
        t.remove(&1);
        assert!(t.lookup("likes", "books").unwrap().is_empty());
        assert!(t.index_keys("likes").unwrap().is_empty());
        t.check_index_consistency().unwrap();
    }

    #[test]
    fn add_index_covers_existing_rows() {
        let mut t: Table<u64, User> = Table::new("users");
        t.insert(1, user("alice", &["books"])).unwrap();
        t.add_index("likes", |u: &User| u.likes.clone());
        assert_eq!(t.lookup("likes", "books").unwrap(), vec![1]);
    }

    #[test]
    fn select_and_range_filter_rows() {
        let mut t = table();
        for i in 0..10 {
            t.insert(i, user(&format!("u{i}"), &[])).unwrap();
        }
        assert_eq!(t.select(|u| u.name.ends_with('3')).count(), 1);
        assert_eq!(t.range(2..5).count(), 3);
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut t = table();
        let v0 = t.version();
        t.insert(1, user("a", &[])).unwrap();
        t.update(&1, |u| u.name.push('x')).unwrap();
        t.upsert(1, user("b", &[]));
        t.remove(&1);
        assert_eq!(t.version(), v0 + 4);
    }

    #[test]
    fn index_keys_lists_distinct_values() {
        let mut t = table();
        t.insert(1, user("a", &["x", "y"])).unwrap();
        t.insert(2, user("b", &["y"])).unwrap();
        assert_eq!(t.index_keys("likes").unwrap(), vec!["x", "y"]);
    }
}
