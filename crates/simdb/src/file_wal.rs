//! File-backed write-ahead log.
//!
//! [`FileWal`] puts a [`crate::wal::Wal`]'s newline-delimited-JSON
//! encoding on a real file: records are appended as they are logged and
//! [`FileWal::sync`] maps to `fdatasync`, so the synced prefix survives a
//! process crash for real instead of by simulation. Opening an existing
//! log tolerates a torn final record (a crash mid-`write`) exactly like
//! [`Wal::decode`] does, and repairs the file to the clean prefix so
//! subsequent appends start from a well-formed log.

use crate::error::{DbError, Result};
use crate::wal::{LogRecord, Wal};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

fn io_err(e: std::io::Error) -> DbError {
    DbError::Io(e.to_string())
}

/// An append-only operation log persisted to a file.
///
/// The on-disk encoding is identical to [`Wal::encode`]; `FileWal` only
/// manages the file handle, the append cursor, and torn-tail repair at
/// open time. The caller keeps the authoritative in-memory [`Wal`] (or
/// materialized state) — `FileWal` is the durability side-car.
#[derive(Debug)]
pub struct FileWal {
    path: PathBuf,
    file: File,
    records: usize,
}

impl FileWal {
    /// Create (or truncate) the log file at `path`, starting empty.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(FileWal {
            path,
            file,
            records: 0,
        })
    }

    /// Open an existing log file (or create an empty one), returning the
    /// handle and the decoded records. A torn final record — the classic
    /// crash-mid-write artifact — is dropped and the file is truncated
    /// back to the clean prefix, so the log is well-formed for appends.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on filesystem failures; [`DbError::WalCorrupt`] if
    /// a non-final record is undecodable (real corruption, not a torn
    /// tail).
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, Wal)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false) // existing records are the point of reopening
            .open(&path)
            .map_err(io_err)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err)?;
        let wal = Wal::decode(&bytes)?;
        let clean = wal.encode();
        if clean.len() != bytes.len() {
            // torn tail: rewrite the surviving prefix so the partial
            // record never confuses a later reader
            file.set_len(0).map_err(io_err)?;
            file.seek(SeekFrom::Start(0)).map_err(io_err)?;
            file.write_all(&clean).map_err(io_err)?;
            file.sync_data().map_err(io_err)?;
        } else {
            file.seek(SeekFrom::End(0)).map_err(io_err)?;
        }
        let records = wal.len();
        Ok((
            FileWal {
                path,
                file,
                records,
            },
            wal,
        ))
    }

    /// Append one record to the file (buffered by the OS; call
    /// [`FileWal::sync`] to force it to stable storage).
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] if the write fails.
    pub fn append(&mut self, record: &LogRecord) -> Result<()> {
        // a LogRecord is a plain enum of strings/values; serialization
        // cannot fail
        let line =
            serde_json::to_string(record).map_err(|e| DbError::Serialization(e.to_string()))?;
        self.file.write_all(line.as_bytes()).map_err(io_err)?;
        self.file.write_all(b"\n").map_err(io_err)?;
        self.records += 1;
        Ok(())
    }

    /// Force appended records to stable storage (`fdatasync`).
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] if the sync fails.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data().map_err(io_err)
    }

    /// Rewrite the file to hold exactly `wal`'s records — used after a
    /// checkpoint truncates the log, or to discard an unsynced suffix.
    /// Synced before returning.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] if the rewrite fails.
    pub fn reset(&mut self, wal: &Wal) -> Result<()> {
        self.file.set_len(0).map_err(io_err)?;
        self.file.seek(SeekFrom::Start(0)).map_err(io_err)?;
        self.file.write_all(&wal.encode()).map_err(io_err)?;
        self.file.sync_data().map_err(io_err)?;
        self.records = wal.len();
        Ok(())
    }

    /// Records appended over the file's lifetime (post-open/reset).
    pub fn len(&self) -> usize {
        self.records
    }

    /// Whether the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// Tests live in `tests/file_wal.rs`: they exercise real files under
// `CARGO_TARGET_TMPDIR`, which cargo only provides to integration tests.
