//! File-backed WAL tests on real bytes: round-trips, torn-tail repair,
//! and a property test that truncates the on-disk log at every byte
//! offset and checks recovery always yields a clean prefix.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use simdb::file_wal::FileWal;
use simdb::wal::{LogRecord, Wal};
use simdb::DbError;
use std::io::Write;
use std::path::PathBuf;

fn put(key: &str, v: i64) -> LogRecord {
    LogRecord::Put {
        table: "t".into(),
        key: key.into(),
        value: serde_json::json!(v),
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("file_wal");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn append_then_open_round_trips() {
    let path = tmp("roundtrip.wal");
    let mut fw = FileWal::create(&path).unwrap();
    fw.append(&put("a", 1)).unwrap();
    fw.append(&put("b", 2)).unwrap();
    fw.sync().unwrap();
    drop(fw);
    let (fw2, wal) = FileWal::open(&path).unwrap();
    assert_eq!(fw2.len(), 2);
    assert_eq!(wal.records(), &[put("a", 1), put("b", 2)]);
}

#[test]
fn open_repairs_a_torn_tail() {
    let path = tmp("torn.wal");
    let mut fw = FileWal::create(&path).unwrap();
    fw.append(&put("a", 1)).unwrap();
    fw.sync().unwrap();
    drop(fw);
    let mut raw = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    raw.write_all(b"{\"Put\":{\"table\":\"t\",\"ke").unwrap();
    drop(raw);
    let (mut fw2, wal) = FileWal::open(&path).unwrap();
    assert_eq!(wal.len(), 1);
    // the file itself was repaired: appends continue a clean log
    fw2.append(&put("b", 2)).unwrap();
    fw2.sync().unwrap();
    drop(fw2);
    let (_, wal3) = FileWal::open(&path).unwrap();
    assert_eq!(wal3.records(), &[put("a", 1), put("b", 2)]);
}

#[test]
fn reset_rewrites_the_file() {
    let path = tmp("reset.wal");
    let mut fw = FileWal::create(&path).unwrap();
    fw.append(&put("a", 1)).unwrap();
    fw.append(&put("b", 2)).unwrap();
    let mut keep = Wal::new();
    keep.append(put("a", 1));
    fw.reset(&keep).unwrap();
    assert_eq!(fw.len(), 1);
    drop(fw);
    let (_, wal) = FileWal::open(&path).unwrap();
    assert_eq!(wal.records(), &[put("a", 1)]);
}

#[test]
fn open_missing_file_starts_empty() {
    let path = tmp("fresh-missing.wal");
    let _ = std::fs::remove_file(&path);
    let (fw, wal) = FileWal::open(&path).unwrap();
    assert!(fw.is_empty());
    assert!(wal.is_empty());
}

#[test]
fn mid_file_corruption_is_an_error() {
    let path = tmp("corrupt.wal");
    std::fs::write(&path, b"garbage\n{\"CapsuleGone\":{\"agent\":1}}\n").unwrap();
    match FileWal::open(&path) {
        Err(DbError::WalCorrupt { record, .. }) => assert_eq!(record, 0),
        other => panic!("expected WalCorrupt, got {other:?}"),
    }
}

/// Build a durability-flavoured record from drawn scalars: `sel` picks
/// the variant, the rest fill its fields.
fn record_from(sel: u64, id: u64, x: i64, s: &str) -> LogRecord {
    match sel % 5 {
        0 => LogRecord::Capsule {
            agent: id,
            capsule: serde_json::json!({ "x": x, "note": s }),
            active: x % 2 == 0,
        },
        1 => LogRecord::CapsuleGone { agent: id },
        2 => LogRecord::PurchaseIntent {
            intent: id,
            detail: serde_json::json!({ "item": x }),
        },
        3 => LogRecord::PurchaseAbort {
            intent: id,
            reason: s.to_string(),
        },
        _ => LogRecord::ProfileDelta {
            agent: id,
            delta: serde_json::json!({ "note": s }),
        },
    }
}

proptest! {
    /// Write N records to a real file, chop the file at an arbitrary byte
    /// offset (a crash mid-write), reopen: recovery must produce a clean
    /// prefix of what was written — every record whose bytes fully made
    /// it to disk survives, nothing bogus appears, and the repaired file
    /// accepts further appends.
    #[test]
    fn truncated_file_recovers_to_a_clean_prefix(
        specs in proptest::collection::vec(
            (0u64..5, 0u64..1000, -50i64..50, "[a-z ]{0,8}"),
            1..12,
        ),
        cut_frac in 0.0f64..1.0,
        case in 0u64..1_000_000,
    ) {
        let records: Vec<LogRecord> = specs
            .iter()
            .map(|(sel, id, x, s)| record_from(*sel, *id, *x, s))
            .collect();
        let path = tmp(&format!("prop-{case}.wal"));
        let mut fw = FileWal::create(&path).unwrap();
        // cumulative byte offset at which each record's line ends
        let mut ends = Vec::with_capacity(records.len());
        let mut total = 0usize;
        for r in &records {
            fw.append(r).unwrap();
            total += serde_json::to_string(r).unwrap().len() + 1;
            ends.push(total);
        }
        fw.sync().unwrap();
        drop(fw);

        // chop the file at an arbitrary byte offset
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((total as f64) * cut_frac) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let expect = ends.iter().filter(|e| **e <= cut as usize).count();
        let (mut fw2, wal) = FileWal::open(&path).unwrap();
        // every fully-persisted record survives; at most the torn final
        // line (complete JSON missing its newline) may additionally parse
        prop_assert!(wal.len() >= expect);
        prop_assert!(wal.len() <= expect + 1);
        prop_assert_eq!(wal.records(), &records[..wal.len()]);

        // the repaired file keeps working
        fw2.append(&put("post", 1)).unwrap();
        fw2.sync().unwrap();
        drop(fw2);
        let (_, wal3) = FileWal::open(&path).unwrap();
        prop_assert_eq!(wal3.len(), wal.len() + 1);
        let _ = std::fs::remove_file(&path);
    }
}
