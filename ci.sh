#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tier-1 tests (default and
# `parallel` feature). Run from the repo root; exits non-zero on the
# first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (--features parallel)"
cargo clippy --workspace --all-targets --features parallel -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1)"
cargo test -q

echo "==> cargo test --features parallel"
cargo test -q --features parallel

echo "CI green."
