#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tier-1 tests (default and
# `parallel` feature). Run from the repo root; exits non-zero on the
# first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings -D clippy::redundant_clone

echo "==> cargo clippy (--features parallel)"
cargo clippy --workspace --all-targets --features parallel -- -D warnings -D clippy::redundant_clone

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1)"
cargo test -q

echo "==> cargo test --features parallel"
cargo test -q --features parallel

echo "==> bench smoke (quick mode)"
PLATFORM_BENCH_QUICK=1 cargo bench -p bench --bench platform_throughput
cargo bench -p bench --bench query_hot_path

echo "CI green."
