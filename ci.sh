#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tier-1 tests (default and
# `parallel` feature). Run from the repo root; exits non-zero on the
# first failure.
set -euo pipefail
cd "$(dirname "$0")"

# --shard-stress: loop the cross-runtime equivalence suite and the
# multi-worker ThreadWorld tests 20x to shake out scheduling races in
# the sharded/threaded paths, then exit. Does not run the normal gate.
# --query-stress: hammer the ANN query tier — 10 iterations of the ANN
# suite at 10^4 consumers plus the query-tier property tests, then the
# full-scale query bench including the 10^6-consumer axis. Does not run
# the normal gate.
# --recovery-stress: loop the crash-point matrix and WAL property tests
# 10x (both feature sets, so the sharded/threaded recovery paths get
# shaken too), then the full E14 recovery series. Does not run the
# normal gate.
# --resilience-stress: loop the self-healing suite 10x on both feature
# sets — the 32-seed supervised chaos sweep, the DES ≡ ThreadWorld
# failover/hang equivalence (real threads + wall-clock leases, the racy
# part) and the file-WAL torn-tail properties — then the full E15
# MTTR/overhead series. Does not run the normal gate.
if [[ "${1:-}" == "--resilience-stress" ]]; then
  echo "==> resilience stress (10x supervised sweep + runtime equivalence, both feature sets)"
  for i in $(seq 1 10); do
    echo "--- iteration $i/10 ---"
    cargo test -q --release --test resilience
    cargo test -q --release --test resilience --features parallel
    cargo test -q --release -p simdb --test file_wal
  done
  echo "==> full E15 resilience series"
  cargo bench -p bench --bench resilience
  echo "resilience stress green."
  exit 0
fi
if [[ "${1:-}" == "--recovery-stress" ]]; then
  echo "==> recovery stress (10x crash-point matrix + WAL properties, both feature sets)"
  for i in $(seq 1 10); do
    echo "--- iteration $i/10 ---"
    cargo test -q --release --test recovery
    cargo test -q --release --test recovery --features parallel
    cargo test -q --release --test properties durable_replay
    cargo test -q --release --test properties any_torn_log_prefix
    cargo test -q --release --test properties crash_preserves
  done
  echo "==> full E14 recovery series"
  cargo bench -p bench --bench recovery
  echo "recovery stress green."
  exit 0
fi
if [[ "${1:-}" == "--query-stress" ]]; then
  echo "==> query stress (10x ANN suite @ 10^4 users + query-tier property tests)"
  for i in $(seq 1 10); do
    echo "--- iteration $i/10 ---"
    ANN_USERS=10000 cargo test -q --release --test ann
    cargo test -q --release --test properties incremental_index_matches_rebuild
    cargo test -q --release --test properties ann_neighbours_subset
  done
  echo "==> full query scaling bench (QUERY_BENCH_FULL=1: 10^4/10^5/10^6 axis)"
  QUERY_BENCH_FULL=1 cargo bench -p bench --bench query_hot_path
  echo "query stress green."
  exit 0
fi

if [[ "${1:-}" == "--shard-stress" ]]; then
  echo "==> shard stress (20x cross-runtime equivalence + multi-worker thread tests)"
  for i in $(seq 1 20); do
    echo "--- iteration $i/20 ---"
    cargo test -q --test equivalence cross_runtime
    cargo test -q -p agentsim thread_net::tests::multi_worker
    cargo test -q -p agentsim thread_net::tests::dispose_while_deactivated
  done
  echo "shard stress green."
  exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings -D clippy::redundant_clone -D clippy::large_enum_variant -D clippy::dbg_macro -D clippy::needless_collect

echo "==> cargo clippy (--features parallel)"
cargo clippy --workspace --all-targets --features parallel -- -D warnings -D clippy::redundant_clone -D clippy::large_enum_variant -D clippy::dbg_macro -D clippy::needless_collect

# The WAL/store layer must not panic on malformed durable input: hold
# simdb to the stricter no-unwrap bar (its tests opt out locally).
echo "==> cargo clippy -p simdb (-D clippy::unwrap_used)"
cargo clippy -p simdb --all-targets -- -D warnings -D clippy::unwrap_used

# The runtime that supervises everyone else must not panic itself: hold
# agentsim to the no-panic bar (its tests opt out locally).
echo "==> cargo clippy -p agentsim (-D clippy::panic)"
cargo clippy -p agentsim --all-targets -- -D warnings -D clippy::panic

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1)"
cargo test -q

echo "==> cargo test --features parallel"
cargo test -q --features parallel

# Chaos seed sweep: quick mode pins an 8-seed threaded matrix (the DES
# side always runs all 32 seeds); CHAOS_FULL=1 widens the threaded
# matrix to 32. Failures print the offending (seed, plan) JSON line —
# replay with: CHAOS_SEED=<seed> cargo test --test chaos repro_single_seed
if [[ "${CHAOS_FULL:-0}" == "1" ]]; then
  echo "==> chaos sweep (full: 32 seeds per runtime)"
  CHAOS_SEEDS=32 cargo test -q --test chaos
else
  echo "==> chaos sweep (quick: 8 threaded seeds; CHAOS_FULL=1 for 32)"
  CHAOS_SEEDS=8 cargo test -q --test chaos
fi

# Telemetry smoke: drive the quickstart workflows with tracing on,
# export the Chrome trace_event JSON and self-validate its schema (the
# binary exits non-zero on an invalid document), then measure the
# disabled-path overhead in bench quick mode.
echo "==> telemetry smoke (traced quickstart + chrome-trace schema)"
CHROME_TRACE_OUT="$(mktemp)"
cargo run --release -p bench --bin telemetry_report -- --quick --chrome-out "$CHROME_TRACE_OUT" >/dev/null
test -s "$CHROME_TRACE_OUT"
rm -f "$CHROME_TRACE_OUT"

# Shard smoke: the sharded quickstart at 1/2/4 shards. The 1-shard run
# self-checks byte-identity against the unsharded platform (trace labels
# and metrics); multi-shard runs assert every boundary migration
# authenticates.
echo "==> shard smoke (sharded quickstart at 1/2/4 shards)"
for n in 1 2 4; do
  cargo run --release -q --example sharded -- "$n" >/dev/null
done

# ANN smoke: oracle equivalence, subset/score agreement and the 0.95
# recall floor at 10^4 consumers, on both feature sets — plus the
# zero-allocation gate on the warm candidate path.
echo "==> ann smoke (exact ≡ oracle + recall floor @ 10^4 users, both feature sets)"
ANN_USERS=10000 cargo test -q --release --test ann
ANN_USERS=10000 cargo test -q --release --test ann --features parallel
cargo bench -p bench --bench query_hot_path -- --assert-no-alloc

echo "==> bench smoke (quick mode; includes telemetry-overhead gate)"
PLATFORM_BENCH_QUICK=1 cargo bench -p bench --bench platform_throughput
cargo bench -p bench --bench query_hot_path

# Overload smoke: the E12 series in quick mode (100 requests) — admission
# shedding, bounded-mailbox depth and deadline accounting on the full
# platform — plus the dedicated behavioural suite.
echo "==> overload smoke (quick E12 series + tests/overload.rs)"
OVERLOAD_BENCH_QUICK=1 cargo bench -p bench --bench overload
cargo test -q --test overload

# Recovery smoke: the crash-point matrix (every stage of the Fig 4.3
# buy, ledger resolution, byte-identity with durability off, sharded
# crash at 1/2/4 shards, DES ≡ ThreadWorld outcome classes) on both
# feature sets, plus the quick E14 recovery-cost series.
echo "==> recovery smoke (crash-point matrix, both feature sets + quick E14 series)"
cargo test -q --test recovery
cargo test -q --test recovery --features parallel
RECOVERY_BENCH_QUICK=1 cargo bench -p bench --bench recovery

# Resilience smoke: self-healing supervision (unarmed byte-identity,
# the 32-seed supervised sweep with zero manual restarts, crash
# failover, hang bouncing, quarantine, DES ≡ ThreadWorld outcome
# classes) on both feature sets, plus the quick E15 MTTR series.
echo "==> resilience smoke (self-healing suite, both feature sets + quick E15 series)"
cargo test -q --test resilience
cargo test -q --test resilience --features parallel
RESILIENCE_BENCH_QUICK=1 cargo bench -p bench --bench resilience

echo "CI green."
