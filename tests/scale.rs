//! Scale test: a larger domain (4 marketplaces, 200 items, 30 consumers)
//! exercising many interleaved workflows — the "consumer community"
//! service the Buyer Agent Server claims to provide (§3.2).

use abcrm::core::agents::msg::{BuyMode, ConsumerTask, ResponseBody};
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::Platform;
use abcrm::workload::catalog::{generate_listings, split_across_markets, CatalogSpec};
use abcrm::workload::taxonomy::{Taxonomy, TaxonomySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn big_platform(seed: u64) -> (Platform, Vec<String>) {
    let taxonomy = Taxonomy::generate(TaxonomySpec {
        categories: 6,
        subs_per_category: 3,
        terms_per_sub: 10,
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let listings = generate_listings(
        &taxonomy,
        &CatalogSpec {
            items: 200,
            ..CatalogSpec::default()
        },
        1,
        &mut rng,
    );
    let names: Vec<String> = listings.iter().map(|l| l.item.name.clone()).collect();
    let platform = Platform::builder(seed)
        .marketplaces(split_across_markets(listings, 4))
        .build();
    (platform, names)
}

#[test]
fn thirty_consumers_run_interleaved_query_workflows() {
    let (mut p, names) = big_platform(1);
    for c in 1..=30u64 {
        p.login(ConsumerId(c));
    }
    assert_eq!(p.bsma_state().sessions().len(), 30);
    // baseline: the BSMA's own Fig 4.1 dispatch already counted one hop
    let migrations_before = p.world().metrics().migrations;
    // all 30 queries submitted before the world runs: 30 MBAs tour 4
    // marketplaces concurrently while 30 BRAs sit in stable storage
    for c in 1..=30u64 {
        let keyword = &names[(c as usize * 6) % names.len()];
        p.submit_task(
            ConsumerId(c),
            ConsumerTask::Query {
                keywords: vec![keyword.clone()],
                category: None,
                max_results: 5,
            },
        );
    }
    let responses = p.run_and_drain();
    let recommendations = responses
        .iter()
        .filter(|(_, r)| matches!(r, ResponseBody::Recommendations { .. }))
        .count();
    assert_eq!(
        recommendations, 30,
        "every consumer must get an answer: {responses:?}"
    );
    let m = p.world().metrics();
    // each MBA: 1 hop out + 3 between marketplaces + 1 home = 5
    assert_eq!(m.migrations - migrations_before, 30 * 5);
    assert_eq!(m.migrations_rejected, 0);
    assert_eq!(m.deactivations, 30);
    assert_eq!(m.activations, 30);
    assert_eq!(
        m.messages_dead_lettered, 0,
        "no message may fall on the floor"
    );
}

#[test]
fn mixed_workload_with_purchases_keeps_userdb_consistent() {
    let (mut p, names) = big_platform(2);
    for c in 1..=10u64 {
        p.login(ConsumerId(c));
    }
    let mut expected_tx = 0u32;
    for round in 0..3 {
        for c in 1..=10u64 {
            let keyword = &names[((c + round * 7) as usize) % names.len()];
            let responses = p.query(ConsumerId(c), &[keyword.as_str()], 3);
            // buy the first offer every other round
            if round % 2 == 0 {
                if let Some(ResponseBody::Recommendations { offers, .. }) = responses.first() {
                    if let Some(offer) = offers.first() {
                        let market = p
                            .markets()
                            .iter()
                            .position(|m| m.host == offer.marketplace)
                            .unwrap();
                        let bought = p.buy(ConsumerId(c), offer.item.id, market, BuyMode::Direct);
                        if matches!(bought.first(), Some(ResponseBody::Receipt { .. })) {
                            expected_tx += 1;
                        }
                    }
                }
            }
        }
    }
    let pa = p.pa_state();
    assert_eq!(pa.userdb().transaction_count() as u32, expected_tx);
    assert!(expected_tx > 0, "some purchases must have happened");
    // every consumer who queried has a persisted profile
    assert!(pa.userdb().profile_count() >= 10);
    // logout everyone; sessions drain
    for c in 1..=10u64 {
        p.logout(ConsumerId(c));
    }
    assert_eq!(p.bsma_state().sessions().len(), 0);
}
