//! ANN query tier at population scale: oracle equivalence and measured
//! recall on a seeded clustered workload.
//!
//! The population size comes from `ANN_USERS` (default 2000, so the
//! suite stays fast in `cargo test`); `ci.sh ann` re-runs it at 10^4.
//! Everything is seeded — the measured recall is a deterministic number,
//! not a flaky estimate.
//!
//! Recall matching is *tie-tolerant*: an exact top-k entry counts as
//! recalled if the ANN list contains the same consumer **or** any
//! consumer with a score within `1e-9` of it. Rank-k score ties are real
//! in clustered populations (twin consumers with identical purchase
//! sets), and which twin wins the last slot is not a property the index
//! should be graded on.

use abcrm_core::learning::BehaviorKind;
use abcrm_core::profile::ConsumerId;
use abcrm_core::similarity::SimilarityConfig;
use abcrm_core::store::RecommendStore;
use abcrm_core::AnnConfig;
use ecp::merchandise::{CategoryPath, ItemId, Merchandise, Money};
use ecp::terms::TermVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Population size: `ANN_USERS` env override, default 2000.
fn ann_users() -> u64 {
    std::env::var("ANN_USERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

const CLUSTERS: u64 = 8;
const CATEGORIES: [(&str, &str); 4] = [
    ("books", "programming"),
    ("books", "scifi"),
    ("music", "jazz"),
    ("garden", "tools"),
];

fn merch(id: u64) -> Merchandise {
    let (cat, sub) = CATEGORIES[(id % CATEGORIES.len() as u64) as usize];
    Merchandise {
        id: ItemId(id),
        name: format!("item{id}"),
        category: CategoryPath::new(cat, sub),
        terms: TermVector::from_pairs([
            (format!("item{id}"), 1.0),
            (format!("shard{}", id % 7), 0.5),
            (sub.to_string(), 0.3),
        ]),
        list_price: Money::from_units(10 + id % 40),
        seller: 1 + (id % 3) as u32,
    }
}

/// Clustered population: each consumer belongs to one of [`CLUSTERS`]
/// taste clusters and buys mostly from its cluster's slice of the
/// catalog (85%), with 15% exploration noise — so genuine neighbour
/// structure exists for the index to find.
fn clustered_store(seed: u64, users: u64, items: u64) -> RecommendStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = RecommendStore::new();
    for id in 1..=items {
        store.upsert_item(merch(id));
    }
    let kinds = [
        BehaviorKind::Query,
        BehaviorKind::Browse,
        BehaviorKind::Purchase,
    ];
    let slice = (items / CLUSTERS).max(1);
    for user in 1..=users {
        let cluster = user % CLUSTERS;
        for _ in 0..rng.gen_range(3..8u32) {
            let item = if rng.gen_bool(0.85) {
                1 + cluster * slice + rng.gen_range(0..slice)
            } else {
                rng.gen_range(1..=items)
            };
            let kind = kinds[rng.gen_range(0..kinds.len())];
            store.record_event(ConsumerId(user), ItemId(item.min(items)), kind);
        }
    }
    store
}

/// The ANN parameters the scale tests grade: moderate signature width
/// (buckets stay small but collision probability for close neighbours
/// stays high), eight tables, eight probes.
fn graded_ann() -> AnnConfig {
    AnnConfig {
        bits: 8,
        tables: 8,
        probes: 8,
        seed: 42,
    }
}

fn sample_users(users: u64, n: u64) -> impl Iterator<Item = u64> {
    let step = (users / n).max(1);
    (1..=users).step_by(step as usize)
}

/// The exact indexed path is the oracle: at this population size it
/// still matches the naive full-scan bit for bit (smoke-level repeat of
/// `tests/equivalence.rs` so `ci.sh ann` proves it at 10^4 users).
#[test]
fn exact_path_matches_naive_oracle_at_scale() {
    let users = ann_users();
    let store = clustered_store(0xA11, users, 96);
    let cfg = SimilarityConfig::default();
    for user in sample_users(users, 5) {
        let indexed = store.nearest_neighbours(ConsumerId(user), &cfg, 10);
        let naive = store.nearest_neighbours_naive(ConsumerId(user), &cfg, 10);
        assert_eq!(indexed, naive, "user {user} of {users}");
    }
}

/// ANN answers are always a subset of the exact scan's admitted
/// candidates, with scores agreeing to 1e-9 — the index can miss
/// neighbours but never invent or mis-score them.
#[test]
fn ann_results_are_subset_of_exact_with_matching_scores() {
    let users = ann_users();
    let store = clustered_store(0xA11, users, 96);
    let exact_cfg = SimilarityConfig::default();
    let ann_cfg = SimilarityConfig {
        ann: Some(graded_ann()),
        ..SimilarityConfig::default()
    };
    store.warm_ann(&ann_cfg);
    for user in sample_users(users, 25) {
        let consumer = ConsumerId(user);
        let exact: HashMap<u64, f64> = store
            .nearest_neighbours(consumer, &exact_cfg, users as usize)
            .into_iter()
            .map(|(c, s)| (c.0, s))
            .collect();
        for (c, s) in store.nearest_neighbours(consumer, &ann_cfg, 50) {
            let reference = exact
                .get(&c.0)
                .unwrap_or_else(|| panic!("ANN invented {c} for user {user}"));
            assert!(
                (reference - s).abs() < 1e-9,
                "score mismatch for {c}: ann {s} vs exact {reference}"
            );
        }
    }
}

/// Aggregate recall@10 across a 50-user sample stays at or above the
/// 0.95 floor the config promises (tie-tolerant matching, see module
/// docs). Printed so `ci.sh ann` logs the measured value.
#[test]
fn measured_recall_at_10_meets_floor() {
    let users = ann_users();
    let store = clustered_store(0xA11, users, 96);
    let exact_cfg = SimilarityConfig::default();
    let ann_cfg = SimilarityConfig {
        ann: Some(graded_ann()),
        ..SimilarityConfig::default()
    };
    store.warm_ann(&ann_cfg);
    let k = 10;
    let (mut hit, mut total) = (0u64, 0u64);
    for user in sample_users(users, 50) {
        let consumer = ConsumerId(user);
        let exact_top = store.nearest_neighbours(consumer, &exact_cfg, k);
        let ann_top = store.nearest_neighbours(consumer, &ann_cfg, k);
        total += exact_top.len() as u64;
        hit += exact_top
            .iter()
            .filter(|(c, s)| {
                ann_top
                    .iter()
                    .any(|(ac, asc)| ac == c || (asc - s).abs() < 1e-9)
            })
            .count() as u64;
    }
    assert!(total > 0, "sample produced no neighbours at all");
    let recall = hit as f64 / total as f64;
    eprintln!("ann recall@{k} over {users} users: {recall:.4} ({hit}/{total})");
    assert!(
        recall >= 0.95,
        "recall@{k} {recall:.4} below the 0.95 floor at {users} users"
    );
}

/// Incremental maintenance keeps the live LSH index fresh: feedback
/// recorded *after* the index is built is immediately visible —
/// twin consumers created post-build find each other.
#[test]
fn post_build_feedback_is_immediately_queryable() {
    let users = ann_users().min(2000);
    let mut store = clustered_store(0xA11, users, 96);
    let ann_cfg = SimilarityConfig {
        ann: Some(graded_ann()),
        ..SimilarityConfig::default()
    };
    store.warm_ann(&ann_cfg);
    let (a, b) = (ConsumerId(users + 1), ConsumerId(users + 2));
    for item in [3u64, 17, 41] {
        store.record_event(a, ItemId(item), BehaviorKind::Purchase);
        store.record_event(b, ItemId(item), BehaviorKind::Purchase);
    }
    let neighbours = store.nearest_neighbours(a, &ann_cfg, users as usize);
    assert!(
        neighbours.iter().any(|(c, _)| *c == b),
        "identical twin added after the build must be reachable: {:?}",
        &neighbours[..neighbours.len().min(5)]
    );
}
