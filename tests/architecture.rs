//! E1 — architecture conformance (paper Figs 3.1 and 3.2).
//!
//! Builds the full platform and verifies every server role and every
//! functional agent the figures name exists and is wired correctly.

use abcrm::core::agents::msg::ResponseBody;
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::{listing, Platform};
use abcrm::ecp::protocol::{kinds, ListServers, ServerRole};
use agentsim::message::Message;
use agentsim::sim::Location;

fn platform(seed: u64) -> Platform {
    Platform::builder(seed)
        .marketplaces(vec![
            vec![listing(
                1,
                "Book A",
                "books",
                "fiction",
                10,
                &[("novel", 1.0)],
            )],
            vec![listing(
                11,
                "Record B",
                "music",
                "jazz",
                20,
                &[("jazz", 1.0)],
            )],
        ])
        .build()
}

#[test]
fn every_server_role_of_fig_3_1_exists() {
    let mut p = platform(1);
    // coordinator answers a domain listing with both marketplaces and
    // the buyer server
    for (role, expected) in [
        (ServerRole::Marketplace, 2usize),
        (ServerRole::BuyerServer, 1usize),
    ] {
        let msg = Message::new(kinds::LIST_SERVERS)
            .with_payload(&ListServers { role })
            .unwrap();
        // responses to external messages are dropped (no sender), so
        // inspect the coordinator's registry snapshot instead
        let _ = msg;
        let snapshot = p.world().snapshot_of(p.coordinator()).unwrap();
        let domain = snapshot["domain"].as_array().unwrap();
        let count = domain
            .iter()
            .filter(|s| serde_json::from_value::<ServerRole>(s["role"].clone()).unwrap() == role)
            .count();
        assert_eq!(count, expected, "role {role:?}");
    }
    let _ = p.login(ConsumerId(1));
}

#[test]
fn every_functional_agent_of_fig_3_2_exists() {
    let p = platform(2);
    // BSMA, PA, HttpA live on the buyer host
    let agents = p.world().agents_on(p.buyer_host());
    assert!(agents.contains(&p.bsma()));
    assert!(agents.contains(&p.pa()));
    assert!(agents.contains(&p.httpa()));
    // the BSMA's BSMDB knows both marketplaces
    let state = p.bsma_state();
    assert_eq!(state.config.markets.len(), 2);
    assert!(state.is_ready());
}

#[test]
fn bra_exists_only_while_logged_in() {
    let mut p = platform(3);
    let before = p.world().agents_on(p.buyer_host()).len();
    p.login(ConsumerId(7));
    let during = p.world().agents_on(p.buyer_host()).len();
    assert_eq!(during, before + 1, "login creates exactly the BRA");
    let bra = p.bsma_state().sessions()[0].1;
    assert_eq!(
        p.world().location(bra),
        Some(Location::Active(p.buyer_host()))
    );
    p.logout(ConsumerId(7));
    assert_eq!(p.world().location(bra), None, "logout disposes the BRA");
    assert_eq!(p.world().agents_on(p.buyer_host()).len(), before);
}

#[test]
fn double_login_reuses_the_session() {
    let mut p = platform(4);
    p.login(ConsumerId(1));
    let bra1 = p.bsma_state().sessions()[0].1;
    p.login(ConsumerId(1));
    assert_eq!(p.bsma_state().sessions().len(), 1);
    assert_eq!(p.bsma_state().sessions()[0].1, bra1);
}

#[test]
fn marketplaces_serve_disjoint_catalogs() {
    let mut p = platform(5);
    p.login(ConsumerId(1));
    let responses = p.query(ConsumerId(1), &["novel"], 5);
    match &responses[0] {
        ResponseBody::Recommendations { offers, .. } => {
            assert_eq!(offers.len(), 1);
            assert_eq!(offers[0].item.name, "Book A");
        }
        other => panic!("unexpected {other:?}"),
    }
    let responses = p.query(ConsumerId(1), &["jazz"], 5);
    match &responses[0] {
        ResponseBody::Recommendations { offers, .. } => {
            assert_eq!(offers.len(), 1);
            assert_eq!(offers[0].item.name, "Record B");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn multiple_consumers_hold_independent_sessions() {
    let mut p = platform(6);
    for c in 1..=5u64 {
        p.login(ConsumerId(c));
    }
    assert_eq!(p.bsma_state().sessions().len(), 5);
    // interleaved tasks do not cross wires
    let r1 = p.query(ConsumerId(1), &["novel"], 5);
    let r2 = p.query(ConsumerId(2), &["jazz"], 5);
    assert!(
        matches!(&r1[0], ResponseBody::Recommendations { offers, .. } if offers[0].item.name == "Book A")
    );
    assert!(
        matches!(&r2[0], ResponseBody::Recommendations { offers, .. } if offers[0].item.name == "Record B")
    );
    for c in 1..=5u64 {
        p.logout(ConsumerId(c));
    }
    assert_eq!(p.bsma_state().sessions().len(), 0);
}
