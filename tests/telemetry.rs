//! End-to-end tracing suite: span trees across both runtimes, under
//! clean runs and the chaos sweep.
//!
//! Invariants:
//!
//! 1. a clean (fault-free) run closes every span exactly once
//!    (`double_closes() == 0`) and nests children fully inside their
//!    parents in sim-time;
//! 2. those same closure/containment rules survive the 32-seed chaos
//!    sweep (double closes are tolerated there: a message parked for a
//!    deactivated agent can be replayed after an earlier finalize pass
//!    already closed its hop);
//! 3. every trace that served a degraded reply carries at least one
//!    chaos or retry annotation — degraded responses are explainable
//!    from the trace alone;
//! 4. the DES and threaded runtimes produce isomorphic span trees
//!    (same hop structure, same kinds and names) for the same query
//!    workflow;
//! 5. dead-lettered messages are annotated on their hop span and
//!    tallied per message kind in the registry.

use abcrm::core::agents::msg::ConsumerTask;
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::{listing, Platform};
use abcrm::core::BackoffPolicy;
use agentsim::chaos::{ChaosConfig, ChaosPlan};
use agentsim::ids::HostId;
use agentsim::telemetry::{SpanEventKind, Telemetry};
use std::collections::BTreeMap;

const HORIZON_US: u64 = 8_000_000;
const CONSUMERS: [ConsumerId; 3] = [ConsumerId(1), ConsumerId(2), ConsumerId(3)];

fn traced_platform(seed: u64) -> Platform {
    Platform::builder(seed)
        .telemetry(true)
        .marketplaces(vec![
            vec![
                listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
            ],
            vec![listing(
                11,
                "Systems Programming",
                "books",
                "programming",
                40,
                &[("rust", 0.8)],
            )],
        ])
        .mba_timeout_us(2_000_000)
        .bra_retry(BackoffPolicy::new(200_000, 1_600_000, 2))
        .build()
}

fn query_task() -> ConsumerTask {
    ConsumerTask::Query {
        keywords: vec!["rust".into()],
        category: None,
        max_results: 5,
    }
}

/// Closure + containment: every span closed, children nested fully
/// inside their parents in sim-time.
fn assert_spans_closed_and_contained(t: &Telemetry, context: &str) {
    assert!(!t.spans().is_empty(), "{context}: no spans recorded");
    for s in t.spans() {
        let end = s
            .end
            .unwrap_or_else(|| panic!("{context}: span {} ({}) never closed", s.id, s.name));
        if let Some(pid) = s.parent {
            let p = t
                .span(pid)
                .unwrap_or_else(|| panic!("{context}: span {} has unknown parent {pid}", s.id));
            assert!(
                p.start <= s.start,
                "{context}: child span {} starts at {:?} before parent {} at {:?}",
                s.id,
                s.start,
                p.id,
                p.start
            );
            assert!(
                end <= p.end.expect("parent closed"),
                "{context}: child span {} ends at {end:?} after parent {} at {:?}",
                s.id,
                p.id,
                p.end
            );
        }
    }
}

/// Every trace that carries a `Degraded` event must also carry at least
/// one `Chaos` or `Retry` event; returns (degraded, annotated) counts.
fn assert_degraded_replies_attributable(t: &Telemetry, context: &str) -> (usize, usize) {
    let mut per_trace: BTreeMap<u64, (bool, bool)> = BTreeMap::new();
    for s in t.spans() {
        let entry = per_trace.entry(s.trace_id).or_default();
        for e in &s.events {
            match e.kind {
                SpanEventKind::Degraded => entry.0 = true,
                SpanEventKind::Chaos | SpanEventKind::Retry => entry.1 = true,
                _ => {}
            }
        }
    }
    let degraded = per_trace.values().filter(|(d, _)| *d).count();
    let annotated = per_trace.values().filter(|(_, a)| *a).count();
    for (trace_id, (was_degraded, was_annotated)) in &per_trace {
        if *was_degraded {
            assert!(
                was_annotated,
                "{context}: trace {trace_id} served a degraded reply with no chaos/retry \
                 annotation — the degradation is unexplainable from the trace"
            );
        }
    }
    (degraded, annotated)
}

/// One chaos run with tracing on; returns (degraded traces, annotated
/// traces) so sweeps can check the invariants are not vacuous.
fn run_chaos_seed(seed: u64) -> (usize, usize) {
    let mut p = traced_platform(seed);
    for consumer in CONSUMERS {
        p.login(consumer);
    }
    let buyer = p.buyer_host();
    let links: Vec<(HostId, HostId)> = p.markets().iter().map(|m| (buyer, m.host)).collect();
    let crashable: Vec<HostId> = p.markets().iter().map(|m| m.host).collect();
    let plan = ChaosPlan::generate(seed, &ChaosConfig::new(HORIZON_US, links, crashable));
    p.install_chaos(&plan);
    for consumer in CONSUMERS {
        p.submit_task(consumer, query_task());
    }
    p.run_and_drain();
    for consumer in CONSUMERS {
        p.submit_task(consumer, query_task());
    }
    p.run_and_drain();
    p.world_mut().run_until_idle();

    let t = p.telemetry();
    let context = format!("seed {seed} (repro plan: {plan})");
    assert_spans_closed_and_contained(t, &context);
    assert_degraded_replies_attributable(t, &context)
}

// ---------------------------------------------------------------- clean run

/// Fault-free runs never double-close a span, and the full figure
/// narrative (every numbered workflow step) lands as span events.
#[test]
fn clean_run_closes_every_span_exactly_once() {
    let mut p = traced_platform(42);
    p.login(ConsumerId(1));
    p.query(ConsumerId(1), &["rust"], 5);
    p.buy(
        ConsumerId(1),
        abcrm::ecp::merchandise::ItemId(1),
        0,
        abcrm::core::agents::msg::BuyMode::Direct,
    );
    p.logout(ConsumerId(1));
    p.world_mut().run_until_idle();

    let t = p.telemetry();
    assert_eq!(t.double_closes(), 0, "clean run must never double-close");
    assert_spans_closed_and_contained(t, "clean run");
    let (degraded, _) = assert_degraded_replies_attributable(t, "clean run");
    assert_eq!(degraded, 0, "clean run must not degrade any reply");

    // Figs 4.1–4.3: every numbered step is recoverable from span events.
    for (prefix, expected) in [("fig4.1/", 6), ("fig4.2/", 15), ("fig4.3/", 14)] {
        let steps = t
            .spans()
            .iter()
            .flat_map(|s| s.events.iter())
            .filter(|e| e.label.starts_with(prefix))
            .count();
        assert!(
            steps >= expected,
            "span events cover only {steps}/{expected} steps of {prefix}"
        );
    }
}

/// With telemetry off (the default), the platform mints nothing at all.
#[test]
fn disabled_telemetry_records_no_spans() {
    let mut p = Platform::builder(42)
        .marketplaces(vec![vec![listing(
            1,
            "Rust Book",
            "books",
            "programming",
            30,
            &[("rust", 1.0)],
        )]])
        .build();
    p.login(ConsumerId(1));
    p.query(ConsumerId(1), &["rust"], 5);
    assert!(p.telemetry().spans().is_empty());
    assert!(p.telemetry().registry().histograms().is_empty());
}

// ---------------------------------------------------------------- chaos sweep

#[test]
fn chaos_span_invariants_seeds_01_to_08() {
    let mut annotated_total = 0;
    for seed in 1..=8 {
        annotated_total += run_chaos_seed(seed).1;
    }
    // non-vacuity: across eight chaos plans at least one trace must have
    // actually been hit by an annotated fault
    assert!(
        annotated_total > 0,
        "no trace in seeds 1–8 carries a chaos/retry annotation — instrumentation dead?"
    );
}

#[test]
fn chaos_span_invariants_seeds_09_to_16() {
    for seed in 9..=16 {
        run_chaos_seed(seed);
    }
}

#[test]
fn chaos_span_invariants_seeds_17_to_24() {
    for seed in 17..=24 {
        run_chaos_seed(seed);
    }
}

#[test]
fn chaos_span_invariants_seeds_25_to_32() {
    for seed in 25..=32 {
        run_chaos_seed(seed);
    }
}

// ------------------------------------------------------------- dead letters

/// A message to a never-created agent dead-letters: the hop span gets a
/// `DeadLetter` event and the registry tallies the kind.
mod dead_letters {
    use agentsim::agent::{Agent, Ctx};
    use agentsim::ids::AgentId;
    use agentsim::message::Message;
    use agentsim::sim::SimWorld;
    use agentsim::telemetry::SpanEventKind;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Shouter;

    impl Agent for Shouter {
        fn agent_type(&self) -> &'static str {
            "shouter"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::json!(null)
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if msg.is("go") {
                ctx.send(AgentId(9999), Message::new("orphan"));
            }
        }
    }

    #[test]
    fn dead_lettered_messages_are_annotated_and_tallied() {
        let mut world = SimWorld::new(7);
        world.enable_telemetry();
        world.registry_mut().register_serde::<Shouter>("shouter");
        let host = world.add_host("a");
        let agent = world.create_agent(host, Box::new(Shouter)).unwrap();
        world.send_external(agent, Message::new("go")).unwrap();
        world.run_until_idle();

        let t = world.telemetry();
        assert_eq!(t.registry().dead_letter_kinds().get("orphan"), Some(&1));
        assert_eq!(t.registry().counter("dead_letters_total"), 1);
        let annotated = t.spans().iter().any(|s| {
            s.name.as_str() == "orphan"
                && s.events
                    .iter()
                    .any(|e| e.kind == SpanEventKind::DeadLetter && e.label.contains("9999"))
        });
        assert!(
            annotated,
            "the orphan hop span must carry a DeadLetter event naming the addressee"
        );
        assert_eq!(world.metrics().messages_dead_lettered, 1);
    }
}

// -------------------------------------------------- DES ≡ threaded span trees

/// The same query workflow on both runtimes yields the same span-tree
/// *signature*: identical hop structure, kinds and names. (Ids, hosts
/// and timings differ — the canonical signature sorts siblings, so
/// thread interleavings don't matter.)
mod runtime_isomorphism {
    use abcrm::core::agents::msg::{kinds as msgkinds, ConsumerTask, MarketRef, RoutedTask};
    use abcrm::core::agents::{register_all, Bsma, BsmaConfig, BuyerRecommendAgent, ProfileAgent};
    use abcrm::core::learning::LearnerConfig;
    use abcrm::core::profile::ConsumerId;
    use abcrm::core::server::listing;
    use abcrm::core::similarity::SimilarityConfig;
    use abcrm::ecp::{MarketplaceAgent, SellerAgent};
    use agentsim::agent::{Agent, Ctx};
    use agentsim::ids::AgentId;
    use agentsim::message::Message;
    use agentsim::sim::SimWorld;
    use agentsim::telemetry::Telemetry;
    use agentsim::thread_net::ThreadWorldBuilder;
    use serde::{Deserialize, Serialize};
    use std::time::Duration;

    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Probe;

    impl Agent for Probe {
        fn agent_type(&self) -> &'static str {
            "probe"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::json!(null)
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if let Some(target) = msg.payload.get("__send_to") {
                let to = AgentId(target.as_u64().unwrap());
                let inner = Message::new(msg.payload["kind"].as_str().unwrap())
                    .carrying(msg.payload.project("payload"));
                ctx.send(to, inner);
                return;
            }
            ctx.note(format!("probe-reply {}", msg.kind));
        }
    }

    fn instruction(to: AgentId, task: &RoutedTask) -> Message {
        Message::new("instr").carrying(serde_json::json!({
            "__send_to": to.0,
            "kind": msgkinds::BRA_TASK,
            "payload": serde_json::to_value(task).unwrap(),
        }))
    }

    fn catalog() -> Vec<ecp::protocol::Listing> {
        vec![
            listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
            listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
            listing(3, "Jazz LP", "music", "jazz", 18, &[("jazz", 1.0)]),
        ]
    }

    fn task() -> RoutedTask {
        RoutedTask {
            consumer: ConsumerId(1),
            task: ConsumerTask::Query {
                keywords: vec!["rust".into()],
                category: None,
                max_results: 5,
            },
            blocked_markets: Vec::new(),
        }
    }

    /// Signature of the single request trace the run produced.
    fn sole_signature(t: &Telemetry) -> String {
        let roots: Vec<_> = t.roots().collect();
        assert_eq!(roots.len(), 1, "expected exactly one request trace");
        t.signature(roots[0].trace_id)
    }

    fn run_on_des() -> String {
        let mut world = SimWorld::new(1234);
        world.enable_telemetry();
        register_all(world.registry_mut());
        world.registry_mut().register_serde::<Probe>("probe");
        let market_host = world.add_host("marketplace");
        let seller_host = world.add_host("seller");
        let buyer_host = world.add_host("buyer-agent-server");
        let market = world
            .create_agent(market_host, Box::new(MarketplaceAgent::new("m0")))
            .unwrap();
        world
            .create_agent(
                seller_host,
                Box::new(SellerAgent::new(1, "s0", catalog(), vec![market])),
            )
            .unwrap();
        world.run_until_idle();
        let markets = vec![MarketRef {
            host: market_host,
            agent: market,
        }];
        let bsma = world
            .create_agent(
                buyer_host,
                Box::new(Bsma::new(BsmaConfig {
                    target: buyer_host,
                    markets: markets.clone(),
                    ..BsmaConfig::default()
                })),
            )
            .unwrap();
        world.run_until_idle();
        let pa = world
            .create_agent(
                buyer_host,
                Box::new(ProfileAgent::new(
                    LearnerConfig::default(),
                    SimilarityConfig::default(),
                )),
            )
            .unwrap();
        let probe = world.create_agent(buyer_host, Box::new(Probe)).unwrap();
        let bra = world
            .create_agent(
                buyer_host,
                Box::new(
                    BuyerRecommendAgent::new(ConsumerId(1), bsma, pa, probe, markets)
                        .with_mba_timeout_us(300_000),
                ),
            )
            .unwrap();
        world.run_until_idle();
        world
            .send_external(probe, instruction(bra, &task()))
            .unwrap();
        world.run_until_idle();
        sole_signature(world.telemetry())
    }

    fn run_on_threads() -> String {
        let mut builder = ThreadWorldBuilder::new(1234);
        builder.enable_telemetry();
        register_all(builder.registry_mut());
        builder.registry_mut().register_serde::<Probe>("probe");
        let market_host = builder.add_host("marketplace");
        let seller_host = builder.add_host("seller");
        let buyer_host = builder.add_host("buyer-agent-server");
        let world = builder.start();
        let market = world
            .create_agent(market_host, Box::new(MarketplaceAgent::new("m0")))
            .unwrap();
        world
            .create_agent(
                seller_host,
                Box::new(SellerAgent::new(1, "s0", catalog(), vec![market])),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        let markets = vec![MarketRef {
            host: market_host,
            agent: market,
        }];
        let bsma = world
            .create_agent(
                buyer_host,
                Box::new(Bsma::new(BsmaConfig {
                    target: buyer_host,
                    markets: markets.clone(),
                    ..BsmaConfig::default()
                })),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        let pa = world
            .create_agent(
                buyer_host,
                Box::new(ProfileAgent::new(
                    LearnerConfig::default(),
                    SimilarityConfig::default(),
                )),
            )
            .unwrap();
        let probe = world.create_agent(buyer_host, Box::new(Probe)).unwrap();
        let bra = world
            .create_agent(
                buyer_host,
                Box::new(
                    BuyerRecommendAgent::new(ConsumerId(1), bsma, pa, probe, markets)
                        .with_mba_timeout_us(300_000),
                ),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        world
            .send_external(probe, instruction(bra, &task()))
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(20)).is_idle());
        let (_metrics, _trace, telemetry) = world.shutdown_with_telemetry();
        sole_signature(&telemetry)
    }

    #[test]
    fn des_and_threaded_span_trees_are_isomorphic() {
        let des = run_on_des();
        let threads = run_on_threads();
        assert!(
            des.starts_with("request:instr"),
            "DES trace must be rooted at the external instr request: {des}"
        );
        assert_eq!(
            des, threads,
            "span trees diverge between the DES and threaded runtimes"
        );
    }
}
