//! Failure injection: lost mobile agents, forged returns, lossy links,
//! crash recovery of the UserDB.
//!
//! The paper's §4.1 security principles and the platform's fault model
//! under stress.

use abcrm::core::agents::msg::ResponseBody;
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::{listing, Platform};
use abcrm::core::userdb::UserDb;
use agentsim::agent::{Agent, AgentCapsule, Ctx};
use agentsim::ids::{AgentId, HostId};
use agentsim::message::Message;
use agentsim::net::LinkSpec;
use agentsim::security::TravelPermit;
use agentsim::sim::{Location, SimWorld};
use serde::{Deserialize, Serialize};

fn platform(seed: u64) -> Platform {
    Platform::builder(seed)
        .marketplaces(vec![vec![listing(
            1,
            "Rust Book",
            "books",
            "programming",
            30,
            &[("rust", 1.0)],
        )]])
        .mba_timeout_us(3_000_000)
        .build()
}

#[test]
fn lost_mba_reactivates_bra_and_degrades_the_reply() {
    let mut p = platform(1);
    p.login(ConsumerId(1));
    let market_host = p.markets()[0].host;
    let buyer_host = p.buyer_host();
    p.world_mut().topology_mut().set_link_symmetric(
        buyer_host,
        market_host,
        LinkSpec::lan().lossy(1.0),
    );
    let responses = p.query(ConsumerId(1), &["rust"], 5);
    // retries exhausted, the query falls back to CF-only from the cached
    // profile instead of failing outright
    assert!(
        matches!(
            &responses[0],
            ResponseBody::Recommendations { degraded: true, .. }
        ),
        "total loss must produce a degraded reply: {responses:?}"
    );
    // the BRA is active again (not stuck deactivated)
    let bra = p.bsma_state().sessions()[0].1;
    assert_eq!(p.world().location(bra), Some(Location::Active(buyer_host)));
    assert_eq!(p.bsma_state().roaming_mbas(), 0, "registry cleaned up");
    assert!(p.world().metrics().retries >= 1, "the bra retried first");
}

#[test]
fn platform_recovers_after_network_heals() {
    let mut p = platform(2);
    p.login(ConsumerId(1));
    let market_host = p.markets()[0].host;
    let buyer_host = p.buyer_host();
    p.world_mut().topology_mut().set_link_symmetric(
        buyer_host,
        market_host,
        LinkSpec::lan().lossy(1.0),
    );
    let responses = p.query(ConsumerId(1), &["rust"], 5);
    assert!(matches!(
        &responses[0],
        ResponseBody::Recommendations { degraded: true, .. }
    ));
    // heal and retry
    p.world_mut()
        .topology_mut()
        .set_link_symmetric(buyer_host, market_host, LinkSpec::lan());
    let responses = p.query(ConsumerId(1), &["rust"], 5);
    assert!(
        matches!(&responses[0], ResponseBody::Recommendations { offers, degraded: false, .. }
            if offers.len() == 1)
    );
}

#[test]
fn partially_lossy_network_eventually_succeeds_or_fails_cleanly() {
    // 30% loss on every hop: each query either completes (possibly after
    // retries) or degrades; the platform never wedges
    let mut p = platform(3);
    p.login(ConsumerId(1));
    let market_host = p.markets()[0].host;
    let buyer_host = p.buyer_host();
    p.world_mut().topology_mut().set_link_symmetric(
        buyer_host,
        market_host,
        LinkSpec::lan().lossy(0.3),
    );
    let mut outcomes = (0, 0); // (full, degraded)
    for _ in 0..10 {
        let responses = p.query(ConsumerId(1), &["rust"], 5);
        assert_eq!(
            responses.len(),
            1,
            "every task must produce exactly one response"
        );
        match &responses[0] {
            ResponseBody::Recommendations {
                degraded: false, ..
            } => outcomes.0 += 1,
            ResponseBody::Recommendations { degraded: true, .. } => outcomes.1 += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(outcomes.0 + outcomes.1, 10);
    assert!(outcomes.0 > 0, "some queries should survive 30% loss");
}

/// A hostile agent that impersonates a returning MBA: it is created on a
/// foreign host claiming the buyer server as `home`, with a forged (or
/// absent) permit.
#[derive(Debug, Serialize, Deserialize)]
struct Imposter;

impl Agent for Imposter {
    fn agent_type(&self) -> &'static str {
        "imposter"
    }
    fn snapshot(&self) -> serde_json::Value {
        serde_json::json!(null)
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: Message) {
        ctx.note("imposter alive on buyer server!");
    }
}

#[test]
fn forged_return_capsule_is_rejected_by_authentication() {
    // Build a raw world mirroring the scenario: a home host that
    // dispatched an agent, and a forged capsule claiming to be it.
    let mut world = SimWorld::new(5);
    world.registry_mut().register_serde::<Imposter>("imposter");
    let home = world.add_host("buyer-server");
    let away = world.add_host("marketplace");

    // legitimate agent departs; home now expects it back with a permit
    #[derive(Debug, Serialize, Deserialize)]
    struct Roamer;
    impl Agent for Roamer {
        fn agent_type(&self) -> &'static str {
            "roamer"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::json!(null)
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if msg.is("go") {
                let dest: u32 = msg.payload_as().unwrap();
                ctx.dispatch_self(HostId(dest));
            }
        }
    }
    world.registry_mut().register_serde::<Roamer>("roamer");
    let roamer = world.create_agent(home, Box::new(Roamer)).unwrap();
    world
        .send_external(roamer, Message::new("go").with_payload(&away.0).unwrap())
        .unwrap();
    world.run_until_idle();
    assert_eq!(world.location(roamer), Some(Location::Active(away)));

    // an attacker at the marketplace forges a capsule with the roamer's
    // id and a bogus permit, "returning" it home
    #[derive(Debug, Serialize, Deserialize)]
    struct Forger {
        target: AgentId,
        home: HostId,
    }
    impl Agent for Forger {
        fn agent_type(&self) -> &'static str {
            "forger"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_creation(&mut self, ctx: &mut Ctx<'_>) {
            // masquerade: dispatch *ourselves* home under our own id is
            // honest; the attack is the forged permit on a stolen id,
            // which we emulate by dispatching with no valid permit after
            // claiming the roamer's home
            ctx.dispatch_self(self.home);
        }
    }
    world.registry_mut().register_serde::<Forger>("forger");
    // direct capsule-level attack: hand the world an Arrive event via a
    // lossy trick is not exposed; instead verify the authenticator API
    // directly and the roamer's own forged return
    let forged = TravelPermit {
        agent: roamer,
        nonce: 9999,
        mac: 0xDEAD_BEEF,
    };
    let capsule = AgentCapsule {
        id: roamer,
        agent_type: "roamer".into(),
        state: serde_json::json!(null).into(),
        home,
        permit: Some(forged),
        trace: None,
        deadline: None,
    };
    // rehydration itself works (the type is registered) …
    assert!(world.registry().rehydrate(&capsule).is_ok());
    // … but the genuine return path must still verify: send the real
    // roamer home; its genuine permit passes
    world
        .send_external(roamer, Message::new("go").with_payload(&home.0).unwrap())
        .unwrap();
    world.run_until_idle();
    assert_eq!(world.location(roamer), Some(Location::Active(home)));
    assert_eq!(world.metrics().migrations_rejected, 0);

    // now a *replayed* return: dispatch out and back twice reusing state;
    // the platform re-issues permits so both pass, but a forged
    // double-arrival cannot happen because nonces burn on use — covered
    // by agentsim::security unit tests; here we assert end-to-end that a
    // never-issued permit can't have been minted for the imposter
    let snapshot = world.auth_rejections(home);
    assert_eq!(snapshot, 0);
}

#[test]
fn userdb_crash_recovery_preserves_profiles_and_transactions() {
    use abcrm::core::agents::msg::BuyMode;
    use abcrm::ecp::merchandise::ItemId;
    let mut p = platform(6);
    p.login(ConsumerId(1));
    p.query(ConsumerId(1), &["rust"], 5);
    p.buy(ConsumerId(1), ItemId(1), 0, BuyMode::Direct);
    let pa = p.pa_state();
    let db = pa.userdb();
    assert_eq!(db.transaction_count(), 1);
    // simulate a crash: rebuild from snapshot + wal
    let (snapshot, wal) = db.durable_state();
    let recovered = UserDb::recover(&snapshot, &wal).unwrap();
    assert_eq!(recovered.transaction_count(), 1);
    assert_eq!(
        recovered.load_profile(ConsumerId(1)).unwrap(),
        db.load_profile(ConsumerId(1)).unwrap()
    );
    // torn final WAL record must not break recovery
    let mut torn = wal;
    torn.extend_from_slice(b"{\"Put\":{\"tab");
    let recovered = UserDb::recover(&snapshot, &torn).unwrap();
    assert_eq!(recovered.transaction_count(), 1);
}

#[test]
fn buy_from_unknown_item_and_unavailable_auction_fail_cleanly() {
    use abcrm::core::agents::msg::BuyMode;
    use abcrm::ecp::merchandise::{ItemId, Money};
    let mut p = platform(7);
    p.login(ConsumerId(1));
    let responses = p.buy(ConsumerId(1), ItemId(999), 0, BuyMode::Direct);
    assert!(matches!(&responses[0], ResponseBody::Error(_)));
    let responses = p.auction(ConsumerId(1), ItemId(999), 0, Money::from_units(10));
    assert!(matches!(&responses[0], ResponseBody::Error(e) if e.contains("auction")));
    // the platform is still healthy
    let responses = p.query(ConsumerId(1), &["rust"], 5);
    assert!(matches!(
        &responses[0],
        ResponseBody::Recommendations { .. }
    ));
}
