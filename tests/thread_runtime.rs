//! The same agent code, on real threads: the full buyer-server stack
//! (coordinator, marketplace, seller, BSMA/PA/HttpA/BRA/MBA) running on
//! [`agentsim::thread_net::ThreadWorld`] instead of the deterministic
//! DES. Inspection goes through the shared trace and merged metrics —
//! thread-world agents' state lives on their host threads.

use abcrm::core::agents::msg::{
    kinds as msgkinds, ConsumerTask, MarketRef, RoutedTask, SessionRequest,
};
use abcrm::core::agents::{register_all, Bsma, BsmaConfig};
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::listing;
use abcrm::ecp::{MarketplaceAgent, SellerAgent};
use agentsim::message::Message;
use agentsim::thread_net::ThreadWorldBuilder;
use std::time::Duration;

#[test]
fn full_query_workflow_runs_on_the_threaded_runtime() {
    let mut builder = ThreadWorldBuilder::new(7);
    register_all(builder.registry_mut());
    let market_host = builder.add_host("marketplace");
    let seller_host = builder.add_host("seller");
    let buyer_host = builder.add_host("buyer-agent-server");
    let world = builder.start();

    // marketplace + seller
    let market = world
        .create_agent(market_host, Box::new(MarketplaceAgent::new("m0")))
        .unwrap();
    world
        .create_agent(
            seller_host,
            Box::new(SellerAgent::new(
                1,
                "s0",
                vec![
                    listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                    listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
                ],
                vec![market],
            )),
        )
        .unwrap();
    assert!(
        world.run_until_idle(Duration::from_secs(10)).is_idle(),
        "provisioning quiesces"
    );

    // buyer agent server, created in place (no coordinator hop needed on
    // this runtime test; the DES tests cover the full Fig 4.1 path)
    let bsma = world
        .create_agent(
            buyer_host,
            Box::new(Bsma::new(BsmaConfig {
                target: buyer_host,
                markets: vec![MarketRef {
                    host: market_host,
                    agent: market,
                }],
                mba_timeout_us: 200_000, // 0.2s real time on this runtime
                ..BsmaConfig::default()
            })),
        )
        .unwrap();
    assert!(
        world.run_until_idle(Duration::from_secs(10)).is_idle(),
        "bsma setup quiesces"
    );

    // drive the workflow BSMA-first (the HttpA id lives inside the BSMA's
    // thread; the DES tests cover the browser front)
    world
        .send_external(
            bsma,
            Message::new(msgkinds::LOGIN)
                .with_payload(&SessionRequest {
                    consumer: ConsumerId(1),
                })
                .unwrap(),
        )
        .unwrap();
    assert!(
        world.run_until_idle(Duration::from_secs(10)).is_idle(),
        "login quiesces"
    );

    world
        .send_external(
            bsma,
            Message::new(msgkinds::ROUTE_TASK)
                .with_payload(&RoutedTask {
                    consumer: ConsumerId(1),
                    task: ConsumerTask::Query {
                        keywords: vec!["rust".into()],
                        category: None,
                        max_results: 5,
                    },
                    blocked_markets: Vec::new(),
                })
                .unwrap(),
        )
        .unwrap();
    assert!(
        world.run_until_idle(Duration::from_secs(20)).is_idle(),
        "query workflow (incl. watchdog timer) quiesces"
    );

    let (metrics, trace) = world.shutdown();
    // the MBA made a round trip and authenticated
    assert_eq!(metrics.migrations, 2, "mba out and back");
    assert_eq!(metrics.migrations_rejected, 0);
    // the BRA was parked while the MBA roamed, then reactivated
    assert_eq!(metrics.deactivations, 1);
    assert_eq!(metrics.activations, 1);
    // every workflow step from the BSMA handoff onward is in the trace
    let steps = abcrm::core::workflow::steps_of(&trace, "fig4.2");
    for expected in 3..=15u32 {
        assert!(
            steps.contains(&expected),
            "fig4.2 step {expected} missing on threaded runtime; got {steps:?}"
        );
    }
}
