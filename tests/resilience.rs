//! Self-healing supervision suite (experiment E15): the platform under
//! faults that are **never manually healed** — every recovery in this
//! file is performed by the supervisor (heartbeat leases, automatic
//! failover, hang bouncing, restart budgets). No test calls
//! `restart_host` or `unhang_host`; grep this file to verify.
//!
//! Coverage:
//!
//! * supervision off ⇒ byte-identical traces and every new counter zero
//!   (the oracle that the subsystem is invisible until armed);
//! * buyer-host crash mid-buy ⇒ lease expiry ⇒ automatic failover onto a
//!   standby host, with the roaming MBA re-bound (`on_rehomed`) and the
//!   two-phase purchase settling exactly once;
//! * hung host (stuck-not-dead) ⇒ detected past the hang grace and
//!   bounced, stalled deliveries replayed, nothing lost;
//! * 32-seed supervised chaos sweep where crash and hang faults never
//!   heal on their own — every request still answered, no agent leaks;
//! * crash-looping host ⇒ restart budget exhausted ⇒ agents quarantined
//!   to dead-letters instead of being restored forever;
//! * DES ≡ ThreadWorld outcome-class equivalence for a crash-failover
//!   and a hang-bounce scenario;
//! * the file-backed WAL round-trips a durable store through a real
//!   process-style reopen.

use abcrm::core::agents::msg::{BuyMode, ConsumerTask, ResponseBody};
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::{listing, Platform};
use abcrm::core::BackoffPolicy;
use agentsim::chaos::{ChaosConfig, ChaosEvent, ChaosPlan, Fault};
use agentsim::clock::SimDuration;
use agentsim::durable::{DurabilityConfig, DurableStore};
use agentsim::ids::HostId;
use agentsim::sim::Location;
use agentsim::supervise::SupervisionConfig;
use ecp::merchandise::ItemId;

const CONSUMER: ConsumerId = ConsumerId(1);
const CONSUMERS: [ConsumerId; 3] = [ConsumerId(1), ConsumerId(2), ConsumerId(3)];
const HORIZON_US: u64 = 8_000_000;

fn listings() -> Vec<Vec<ecp::protocol::Listing>> {
    vec![
        vec![
            listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
            listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
        ],
        vec![listing(
            11,
            "Systems Programming",
            "books",
            "programming",
            40,
            &[("rust", 0.8)],
        )],
    ]
}

/// Fast-detection supervision config so failover latency stays small
/// against the workflows' own 2s MBA watchdog.
fn quick_supervision() -> SupervisionConfig {
    SupervisionConfig {
        lease_interval_us: 100_000,
        lease_grace: 1,
        hang_grace_us: 200_000,
        restart_budget: 8,
        backoff_base_us: 50_000,
        backoff_max_us: 1_000_000,
    }
}

fn supervised_platform(seed: u64) -> Platform {
    Platform::builder(seed)
        .marketplaces(listings())
        .mba_timeout_us(2_000_000)
        .bra_retry(BackoffPolicy::new(200_000, 1_600_000, 3))
        .durability(DurabilityConfig::default())
        .supervision(quick_supervision())
        .build()
}

fn buy_task(p: &Platform) -> ConsumerTask {
    ConsumerTask::Buy {
        item: ItemId(1),
        market: p.markets()[0],
        mode: BuyMode::Direct,
    }
}

fn query_task() -> ConsumerTask {
    ConsumerTask::Query {
        keywords: vec!["rust".into()],
        category: None,
        max_results: 5,
    }
}

/// Units sold of `item` at marketplace 0 — the externally observable
/// purchase effect the exactly-once invariant is about.
fn units_sold(p: &Platform, item: ItemId) -> u32 {
    let snapshot = p
        .world()
        .snapshot_of(p.markets()[0].agent)
        .expect("marketplace active");
    let market: ecp::MarketplaceAgent = serde_json::from_value(snapshot).expect("state parses");
    market.units_sold(item)
}

// ---------------------------------------------------------------------
// oracle: supervision off ⇒ byte-identical, counters zero
// ---------------------------------------------------------------------

#[test]
fn supervision_off_keeps_traces_byte_identical_and_counters_zero() {
    let seed = 909;
    let build = |supervised: bool| {
        let mut b = Platform::builder(seed)
            .marketplaces(listings())
            .mba_timeout_us(2_000_000)
            .bra_retry(BackoffPolicy::new(200_000, 1_600_000, 3))
            .durability(DurabilityConfig::default());
        if supervised {
            b = b.supervision(SupervisionConfig::default());
        }
        b.build()
    };
    let mut plain = build(false);
    let mut supervised = build(true);
    for p in [&mut plain, &mut supervised] {
        p.login(CONSUMER);
        let task = buy_task(p);
        p.submit_task(CONSUMER, task);
        let wave = p.run_and_drain();
        assert!(wave
            .iter()
            .any(|(_, r)| matches!(r, ResponseBody::Receipt { .. })));
        p.query(CONSUMER, &["rust"], 5);
    }
    // a fault-free run never arms the detector: event-for-event identical
    assert_eq!(
        plain.world().trace().labels(),
        supervised.world().trace().labels(),
        "unarmed supervision must not perturb the workflow trace"
    );
    // every supervision counter is zero on both sides, and the full
    // metrics structs agree
    for p in [&plain, &supervised] {
        let m = p.world().metrics();
        assert_eq!(m.hangs_injected, 0);
        assert_eq!(m.hangs_detected, 0);
        assert_eq!(m.hosts_suspected, 0);
        assert_eq!(m.leases_expired, 0);
        assert_eq!(m.failovers, 0);
        assert_eq!(m.agents_rehomed, 0);
        assert_eq!(m.agents_retired, 0);
        assert_eq!(m.agents_quarantined, 0);
    }
    assert_eq!(
        plain.world().metrics(),
        supervised.world().metrics(),
        "unarmed supervision must be invisible in the metrics"
    );
}

// ---------------------------------------------------------------------
// crash ⇒ lease expiry ⇒ automatic failover (no restart_host anywhere)
// ---------------------------------------------------------------------

/// Probe run: drive the buy crash-free and report the sim-time of the
/// first trace event whose label contains `marker`. Supervision is
/// byte-invisible while unarmed, so the marker time transfers exactly.
fn probe_marker(seed: u64, marker: &str) -> agentsim::clock::SimTime {
    let mut p = supervised_platform(seed);
    p.login(CONSUMER);
    let task = buy_task(&p);
    p.submit_task(CONSUMER, task);
    let wave = p.run_and_drain();
    assert!(
        wave.iter()
            .any(|(_, r)| matches!(r, ResponseBody::Receipt { .. })),
        "probe run must complete cleanly: {wave:?}"
    );
    p.world()
        .trace()
        .events()
        .iter()
        .find(|e| e.label.contains(marker))
        .unwrap_or_else(|| panic!("marker {marker:?} not in probe trace"))
        .at
}

#[test]
fn buyer_crash_mid_buy_fails_over_automatically_and_settles_exactly_once() {
    let seed = 1101;
    // crash while the MBA is away at the marketplace (BRA deactivated):
    // failover must restore the buyer stack on a standby AND re-bind the
    // roaming MBA so the purchase still comes home
    let at = probe_marker(seed, "fig4.3/step08");
    let mut p = supervised_platform(seed);
    p.login(CONSUMER);
    let task = buy_task(&p);
    p.submit_task(CONSUMER, task);
    p.world_mut().run_until(at + SimDuration::from_micros(1));
    let buyer = p.buyer_host();
    p.world_mut().crash_host(buyer).unwrap();
    // no restart_host: the supervisor must notice the missed leases and
    // fail the host over on its own
    let wave = p.run_and_drain();
    let receipts = wave
        .iter()
        .filter(|(_, r)| matches!(r, ResponseBody::Receipt { .. }))
        .count();
    let errors = wave
        .iter()
        .filter(|(_, r)| matches!(r, ResponseBody::Error(_)))
        .count();
    assert_eq!(
        receipts + errors,
        1,
        "exactly one terminal reply expected, got {wave:?}"
    );
    assert_eq!(
        units_sold(&p, ItemId(1)),
        receipts as u32,
        "marketplace sales must match receipts (exactly-once through failover)"
    );

    let standby = p
        .world()
        .failover_of(buyer)
        .expect("supervisor ran a failover for the buyer host");
    let m = p.world().metrics();
    assert!(m.hosts_suspected >= 1, "{m:?}");
    assert!(m.leases_expired >= 1, "{m:?}");
    assert!(m.failovers >= 1, "{m:?}");
    assert!(m.hosts_recovered >= 1, "{m:?}");
    assert!(
        m.agents_rehomed >= 1,
        "the roaming MBA must be re-bound to the standby: {m:?}"
    );
    let labels = p.world().trace().labels().join("\n");
    assert!(labels.contains("lease expired"), "failover trace missing");
    assert!(labels.contains("mba: rehomed"), "rehome callback missing");

    // the recovered platform still serves, from the standby host
    let responses = p.query(CONSUMER, &["rust"], 5);
    assert!(matches!(
        &responses[0],
        ResponseBody::Recommendations { .. }
    ));
    let bsma = p.bsma_state();
    assert_eq!(bsma.roaming_mbas(), 0, "MBA registry must drain");
    for (_, bra) in bsma.sessions() {
        assert_eq!(
            p.world().location(*bra),
            Some(Location::Active(standby)),
            "BRA must end active on the standby host"
        );
    }
}

// ---------------------------------------------------------------------
// hang ⇒ detected past the grace ⇒ bounced, stalled deliveries replayed
// ---------------------------------------------------------------------

#[test]
fn hung_buyer_host_is_detected_and_bounced() {
    let seed = 1202;
    let mut p = supervised_platform(seed);
    p.login(CONSUMER);
    // wedge the buyer host just after login settles; the hang never
    // heals on its own (heal beyond any horizon)
    let buyer = p.buyer_host();
    let at_us = p.world().now().as_micros() + 50_000;
    let plan = ChaosPlan {
        seed,
        dup_probability: 0.0,
        reorder_probability: 0.0,
        max_jitter_us: 0,
        events: vec![ChaosEvent {
            at_us,
            heal_after_us: u64::MAX,
            fault: Fault::Hang { host: buyer },
        }],
    };
    p.install_chaos(&plan);
    // the query lands while the host is wedged: deliveries stall until
    // the supervisor bounces the host
    p.submit_task(CONSUMER, query_task());
    let wave = p.run_and_drain();
    assert_eq!(wave.len(), 1, "stalled query must still be answered");
    assert!(matches!(wave[0].1, ResponseBody::Recommendations { .. }));

    let m = p.world().metrics();
    assert_eq!(m.hangs_injected, 1, "{m:?}");
    assert!(
        m.hangs_detected >= 1,
        "supervisor must bounce the hang: {m:?}"
    );
    assert_eq!(
        m.failovers, 0,
        "a hang is bounced, never failed over: {m:?}"
    );
    let labels = p.world().trace().labels().join("\n");
    assert!(labels.contains("hung past grace, bouncing"));
    assert!(labels.contains("stalled deliveries replayed"));
}

// ---------------------------------------------------------------------
// 32-seed supervised sweep: chaos faults that never heal on their own
// ---------------------------------------------------------------------

/// One supervised chaos run. The plan's crash and hang events are made
/// permanent (`heal_after_us = MAX`), so the only path back to service is
/// the supervisor: failover for crashes, bouncing for hangs. The chaos
/// invariants still hold: every query answered (degraded allowed), no
/// leaked MBAs, quiescence.
fn run_supervised_seed(seed: u64) {
    let mut p = supervised_platform(seed);
    for consumer in CONSUMERS {
        p.login(consumer);
    }
    let buyer = p.buyer_host();
    let links: Vec<(HostId, HostId)> = p.markets().iter().map(|m| (buyer, m.host)).collect();
    let market_hosts: Vec<HostId> = p.markets().iter().map(|m| m.host).collect();
    let mut plan = ChaosPlan::generate(
        seed,
        &ChaosConfig::new(HORIZON_US, links, market_hosts.clone()).with_hangs(market_hosts),
    );
    for ev in &mut plan.events {
        if matches!(ev.fault, Fault::CrashHost { .. } | Fault::Hang { .. }) {
            ev.heal_after_us = u64::MAX;
        }
    }
    p.install_chaos(&plan);

    for consumer in CONSUMERS {
        p.submit_task(consumer, query_task());
    }
    let wave = p.run_and_drain();
    for consumer in CONSUMERS {
        let replies: Vec<_> = wave.iter().filter(|(c, _)| *c == consumer).collect();
        assert_eq!(
            replies.len(),
            1,
            "seed {seed}: consumer {consumer:?} expected exactly one reply, got {replies:?}; \
             repro plan: {plan}"
        );
        assert!(
            matches!(replies[0].1, ResponseBody::Recommendations { .. }),
            "seed {seed}: query reply must be Recommendations, got {:?}; repro plan: {plan}",
            replies[0].1
        );
    }

    // second wave against whatever the supervisor rebuilt
    for consumer in CONSUMERS {
        p.submit_task(consumer, query_task());
    }
    let wave = p.run_and_drain();
    for consumer in CONSUMERS {
        assert_eq!(
            wave.iter().filter(|(c, _)| *c == consumer).count(),
            1,
            "seed {seed} (post-heal): every query must be answered; repro plan: {plan}"
        );
    }

    p.world_mut().run_until_idle();
    let bsma = p.bsma_state();
    assert_eq!(
        bsma.roaming_mbas(),
        0,
        "seed {seed}: MBA registry not cleaned up; repro plan: {plan}"
    );
    for (consumer, bra) in bsma.sessions() {
        assert_eq!(
            p.world().location(*bra),
            Some(Location::Active(buyer)),
            "seed {seed}: BRA of consumer {consumer} stuck; repro plan: {plan}"
        );
    }
    let m = p.world().metrics();
    assert!(
        m.failovers <= m.leases_expired,
        "seed {seed}: a failover needs an expired lease first: {m:?}"
    );
    // a crash landing on an already-hung host clears the hang with the
    // host, so detection can trail injection — never exceed it
    assert!(
        m.hangs_detected <= m.hangs_injected,
        "seed {seed}: more bounces than hangs: {m:?}"
    );
}

#[test]
fn supervised_sweep_seeds_01_to_08() {
    for seed in 1..=8 {
        run_supervised_seed(seed);
    }
}

#[test]
fn supervised_sweep_seeds_09_to_16() {
    for seed in 9..=16 {
        run_supervised_seed(seed);
    }
}

#[test]
fn supervised_sweep_seeds_17_to_24() {
    for seed in 17..=24 {
        run_supervised_seed(seed);
    }
}

#[test]
fn supervised_sweep_seeds_25_to_32() {
    for seed in 25..=32 {
        run_supervised_seed(seed);
    }
}

/// Repro hook: `RESILIENCE_SEED=<n> cargo test --test resilience
/// repro_single_supervised_seed` replays one sweep entry.
#[test]
fn repro_single_supervised_seed() {
    if let Ok(seed) = std::env::var("RESILIENCE_SEED") {
        run_supervised_seed(seed.parse().expect("RESILIENCE_SEED must be a u64"));
    }
}

/// Buys under never-healing chaos settle exactly once: receipts + errors
/// equal requests, and the ledger never double-commits.
#[test]
fn buys_under_supervised_chaos_settle_exactly_once() {
    for seed in [201u64, 202, 203, 204] {
        let mut p = supervised_platform(seed);
        p.login(CONSUMER);
        let buyer = p.buyer_host();
        let links: Vec<(HostId, HostId)> = p.markets().iter().map(|m| (buyer, m.host)).collect();
        let market_hosts: Vec<HostId> = p.markets().iter().map(|m| m.host).collect();
        let mut plan = ChaosPlan::generate(
            seed,
            &ChaosConfig::new(HORIZON_US, links, market_hosts.clone()).with_hangs(market_hosts),
        );
        for ev in &mut plan.events {
            if matches!(ev.fault, Fault::CrashHost { .. } | Fault::Hang { .. }) {
                ev.heal_after_us = u64::MAX;
            }
        }
        p.install_chaos(&plan);
        let task = buy_task(&p);
        p.submit_task(CONSUMER, task);
        let wave = p.run_and_drain();
        let receipts = wave
            .iter()
            .filter(|(_, r)| matches!(r, ResponseBody::Receipt { .. }))
            .count();
        let errors = wave
            .iter()
            .filter(|(_, r)| matches!(r, ResponseBody::Error(_)))
            .count();
        assert_eq!(
            receipts + errors,
            1,
            "seed {seed}: receipts+errors must equal requests, got {wave:?}; repro plan: {plan}"
        );
        let recorded = p.pa_state().userdb().transaction_count();
        assert!(
            recorded <= 1,
            "seed {seed}: never a duplicated purchase ({recorded} recorded); repro plan: {plan}"
        );
    }
}

// ---------------------------------------------------------------------
// restart budget: crash-looping host ⇒ quarantine, not eternal restore
// ---------------------------------------------------------------------

#[test]
fn crash_looping_host_exhausts_restart_budget_and_quarantines_agents() {
    let seed = 1303;
    let mut p = Platform::builder(seed)
        .marketplaces(listings())
        .mba_timeout_us(2_000_000)
        .bra_retry(BackoffPolicy::new(200_000, 1_600_000, 3))
        .durability(DurabilityConfig::default())
        .supervision(SupervisionConfig {
            restart_budget: 1,
            ..quick_supervision()
        })
        .build();
    p.login(CONSUMER);
    p.query(CONSUMER, &["rust"], 5);

    // crash 1: the supervisor fails the buyer host over (restore #1, at
    // the budget)
    let buyer = p.buyer_host();
    p.world_mut().crash_host(buyer).unwrap();
    p.world_mut().run_until_idle();
    let standby = p
        .world()
        .failover_of(buyer)
        .expect("first crash fails over");
    let m = p.world().metrics().clone();
    assert!(m.failovers >= 1);
    assert_eq!(m.agents_quarantined, 0, "budget not exhausted yet: {m:?}");

    // crash 2 hits the standby: restore #2 exceeds the budget of 1, so
    // every capsule goes to dead-letters instead of being restored
    p.world_mut().crash_host(standby).unwrap();
    p.world_mut().run_until_idle();
    let m = p.world().metrics().clone();
    assert!(m.failovers >= 2, "{m:?}");
    assert!(
        m.agents_quarantined >= 4,
        "bsma + pa + httpa + bra all quarantined: {m:?}"
    );
    let sup = p.world().supervisor().expect("supervision enabled");
    assert!(sup.quarantined_count() >= 4);
    assert!(p
        .world()
        .trace()
        .labels()
        .iter()
        .any(|l| l.contains("quarantined (restart budget exhausted)")));
}

// ---------------------------------------------------------------------
// DES ≡ ThreadWorld outcome-class equivalence
// ---------------------------------------------------------------------

/// Outcome class of a supervised fault scenario, comparable across
/// runtimes: (request answered, supervisor recovered the host, anything
/// quarantined).
#[derive(Debug, PartialEq)]
struct Outcome {
    answered: bool,
    auto_recovered: bool,
    quarantined: bool,
}

mod runtime_equivalence {
    use super::*;
    use abcrm::core::agents::msg::{kinds as msgkinds, MarketRef, RoutedTask};
    use abcrm::core::agents::{register_all, Bsma, BsmaConfig, BuyerRecommendAgent, ProfileAgent};
    use abcrm::core::learning::LearnerConfig;
    use abcrm::core::similarity::SimilarityConfig;
    use abcrm::ecp::{MarketplaceAgent, SellerAgent};
    use agentsim::agent::{Agent, Ctx};
    use agentsim::ids::AgentId;
    use agentsim::message::Message;
    use agentsim::thread_net::ThreadWorldBuilder;
    use serde::{Deserialize, Serialize};
    use std::time::Duration;

    /// Stand-in for the HttpA front (same as the chaos suite).
    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Probe;

    impl Agent for Probe {
        fn agent_type(&self) -> &'static str {
            "probe"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::json!(null)
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if let Some(target) = msg.payload.get("__send_to") {
                let to = AgentId(target.as_u64().unwrap());
                let inner = Message::new(msg.payload["kind"].as_str().unwrap())
                    .carrying(msg.payload.project("payload"));
                ctx.send(to, inner);
                return;
            }
            ctx.note(format!("probe-reply {}", msg.kind));
        }
    }

    fn instruction(to: AgentId, task: &RoutedTask) -> Message {
        Message::new("instr").carrying(serde_json::json!({
            "__send_to": to.0,
            "kind": msgkinds::BRA_TASK,
            "payload": serde_json::to_value(task).unwrap(),
        }))
    }

    fn query_routed() -> RoutedTask {
        RoutedTask {
            consumer: ConsumerId(1),
            task: super::query_task(),
            blocked_markets: Vec::new(),
        }
    }

    /// DES side: fault the buyer host, let the supervisor recover it,
    /// then ask a question and classify the outcome.
    fn des_outcome(fault: &str) -> Outcome {
        let mut p = supervised_platform(42);
        p.login(CONSUMER);
        let buyer = p.buyer_host();
        match fault {
            "crash" => {
                p.world_mut().crash_host(buyer).unwrap();
                // sends to a dead host are lost by design: let the
                // supervisor finish the failover before asking (the
                // thread side sleeps through its wall-clock lease the
                // same way)
                p.world_mut().run_until_idle();
            }
            _ => {
                let at_us = p.world().now().as_micros() + 10_000;
                let plan = ChaosPlan {
                    seed: 42,
                    dup_probability: 0.0,
                    reorder_probability: 0.0,
                    max_jitter_us: 0,
                    events: vec![ChaosEvent {
                        at_us,
                        heal_after_us: u64::MAX,
                        fault: Fault::Hang { host: buyer },
                    }],
                };
                p.install_chaos(&plan);
            }
        }
        // queries submitted while the host is down/wedged; only the
        // supervisor brings it back
        p.submit_task(CONSUMER, super::query_task());
        let wave = p.run_and_drain();
        let m = p.world().metrics();
        Outcome {
            answered: wave
                .iter()
                .any(|(_, r)| matches!(r, ResponseBody::Recommendations { .. })),
            auto_recovered: m.failovers >= 1 || m.hangs_detected >= 1,
            quarantined: m.agents_quarantined > 0,
        }
    }

    /// ThreadWorld side: the same scenario over real threads and
    /// wall-clock leases.
    fn thread_outcome(fault: &str) -> Outcome {
        let mut builder = ThreadWorldBuilder::new(42);
        register_all(builder.registry_mut());
        builder.registry_mut().register_serde::<Probe>("probe");
        builder
            .durability(DurabilityConfig::default())
            .supervision(SupervisionConfig {
                lease_interval_us: 50_000,
                lease_grace: 1,
                hang_grace_us: 100_000,
                restart_budget: 8,
                backoff_base_us: 50_000,
                backoff_max_us: 500_000,
            });
        let market_host = builder.add_host("m0");
        let seller_host = builder.add_host("seller");
        let buyer_host = builder.add_host("buyer-agent-server");
        let world = builder.start();

        let market_agent = world
            .create_agent(market_host, Box::new(MarketplaceAgent::new("m0")))
            .unwrap();
        let markets = vec![MarketRef {
            host: market_host,
            agent: market_agent,
        }];
        world
            .create_agent(
                seller_host,
                Box::new(SellerAgent::new(
                    1,
                    "s0",
                    vec![listing(
                        1,
                        "Rust Book",
                        "books",
                        "programming",
                        30,
                        &[("rust", 1.0)],
                    )],
                    vec![market_agent],
                )),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());

        let retry = BackoffPolicy::new(100_000, 400_000, 1);
        let bsma = world
            .create_agent(
                buyer_host,
                Box::new(Bsma::new(BsmaConfig {
                    target: buyer_host,
                    markets: markets.clone(),
                    mba_timeout_us: 300_000,
                    bra_retry: retry,
                    ..BsmaConfig::default()
                })),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        let pa = world
            .create_agent(
                buyer_host,
                Box::new(ProfileAgent::new(
                    LearnerConfig::default(),
                    SimilarityConfig::default(),
                )),
            )
            .unwrap();
        let probe = world.create_agent(buyer_host, Box::new(Probe)).unwrap();
        let bra = world
            .create_agent(
                buyer_host,
                Box::new(
                    BuyerRecommendAgent::new(ConsumerId(1), bsma, pa, probe, markets)
                        .with_mba_timeout_us(300_000)
                        .with_retry_policy(retry),
                ),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());

        match fault {
            "crash" => {
                world.crash_host(buyer_host).unwrap();
                // leases run on wall time: give the supervisor room to
                // expire the lease and respawn the worker before asking
                std::thread::sleep(Duration::from_millis(400));
                assert!(world.run_until_idle(Duration::from_secs(30)).is_idle());
                world
                    .send_external(probe, instruction(bra, &query_routed()))
                    .unwrap();
            }
            _ => {
                world.hang_host(buyer_host).unwrap();
                // the query stalls in the wedged host's mailbox until the
                // supervisor bounces it — no unhang_host call
                world
                    .send_external(probe, instruction(bra, &query_routed()))
                    .unwrap();
            }
        }
        let status = world.run_until_idle(Duration::from_secs(60));
        assert!(status.is_idle(), "threaded world failed to drain: {status}");
        let (metrics, trace) = world.shutdown();
        let replies = trace.labels_with_prefix("probe-reply ");
        Outcome {
            answered: replies
                .iter()
                .any(|r| *r == format!("probe-reply {}", msgkinds::BRA_RESPONSE)),
            auto_recovered: metrics.failovers >= 1 || metrics.hangs_detected >= 1,
            quarantined: metrics.agents_quarantined > 0,
        }
    }

    #[test]
    fn crash_failover_outcome_class_matches_across_runtimes() {
        let des = des_outcome("crash");
        let thread = thread_outcome("crash");
        assert_eq!(
            des,
            Outcome {
                answered: true,
                auto_recovered: true,
                quarantined: false
            },
            "DES crash-failover outcome"
        );
        assert_eq!(des, thread, "runtimes must agree on the outcome class");
    }

    #[test]
    fn hang_bounce_outcome_class_matches_across_runtimes() {
        let des = des_outcome("hang");
        let thread = thread_outcome("hang");
        assert_eq!(
            des,
            Outcome {
                answered: true,
                auto_recovered: true,
                quarantined: false
            },
            "DES hang-bounce outcome"
        );
        assert_eq!(des, thread, "runtimes must agree on the outcome class");
    }
}

// ---------------------------------------------------------------------
// file-backed WAL: a durable store survives a real reopen
// ---------------------------------------------------------------------

#[test]
fn file_backed_store_round_trips_through_reopen() {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("resilience");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("host-0.wal");
    let _ = std::fs::remove_file(&path);
    let mut snap = path.as_os_str().to_os_string();
    snap.push(".snap");
    let _ = std::fs::remove_file(std::path::PathBuf::from(snap));

    let cfg = DurabilityConfig {
        checkpoint_every: 0,
        sync_every: 1,
    };
    {
        let mut store = DurableStore::with_file(cfg, &path).unwrap();
        assert!(store.is_file_backed());
        store
            .put_capsule(7, serde_json::json!({"x": 1}), true)
            .unwrap();
        store
            .log_intent(42, serde_json::json!({"item": 1}))
            .unwrap();
        store
            .log_commit(42, serde_json::json!({"price": 30}))
            .unwrap();
        store.log_delta(9, serde_json::json!({"d": 1})).unwrap();
        // dropped without ceremony: a process exit
    }
    {
        let store = DurableStore::with_file(cfg, &path).unwrap();
        let state = store.state();
        assert_eq!(state.capsules.get(&7).unwrap().capsule["x"], 1);
        assert!(matches!(
            state.intents.get(&42),
            Some(agentsim::durable::IntentState::Committed(_))
        ));
        assert_eq!(state.deltas_for(9).len(), 1);
        assert_eq!(store.wal_len(), 4, "the full log survived on disk");
    }
    // checkpoint writes the snapshot beside the log and truncates it;
    // reopening replays snapshot + empty log to the same state
    {
        let mut store = DurableStore::with_file(cfg, &path).unwrap();
        store.checkpoint(Vec::new()).unwrap();
        assert_eq!(store.wal_len(), 0);
    }
    {
        let store = DurableStore::with_file(cfg, &path).unwrap();
        assert_eq!(store.wal_len(), 0);
        assert_eq!(store.state().capsules.get(&7).unwrap().capsule["x"], 1);
        assert!(matches!(
            store.state().intents.get(&42),
            Some(agentsim::durable::IntentState::Committed(_))
        ));
    }
}
