//! Overload-protection integration tests: admission shedding, bounded
//! mailboxes, deadline propagation and per-marketplace circuit breakers,
//! all driven through the full platform.

use abcrm::agentsim::clock::SimDuration;
use abcrm::agentsim::message::Message;
use abcrm::agentsim::net::LinkSpec;
use abcrm::agentsim::overload::{MailboxConfig, MailboxPolicy};
use abcrm::core::admission::AdmissionConfig;
use abcrm::core::agents::msg::{
    kinds as msgkinds, ConsumerTask, FrontRequest, FrontRequestBody, ResponseBody,
};
use abcrm::core::breaker::BreakerConfig;
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::{listing, Platform, PlatformBuilder};

fn builder(seed: u64) -> PlatformBuilder {
    Platform::builder(seed)
        .telemetry(true)
        .marketplaces(vec![vec![
            listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
            listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
        ]])
        .mba_timeout_us(2_000_000)
}

/// A tight token bucket sheds the overflow with an explicit `Overloaded`
/// reply (never a silent drop), the admitted requests still complete, and
/// the shed counter records every rejection.
#[test]
fn admission_sheds_the_overflow_explicitly() {
    let mut p = builder(7)
        .admission(AdmissionConfig {
            rate_per_sec: 0.001,
            burst: 4.0,
            transaction_reserve: 0.25,
            query_reserve: 0.25,
        })
        .build();
    let consumer = ConsumerId(1);
    assert_eq!(p.login(consumer), vec![ResponseBody::LoggedIn]);

    let mut recommendations = 0u32;
    let mut overloaded = 0u32;
    for _ in 0..6 {
        for body in p.query(consumer, &["rust"], 5) {
            match body {
                ResponseBody::Recommendations { .. } => recommendations += 1,
                ResponseBody::Overloaded { retry_after_us } => {
                    assert!(retry_after_us > 0, "shed replies carry a retry hint");
                    overloaded += 1;
                }
                other => panic!("unexpected reply under overload: {other:?}"),
            }
        }
    }
    assert!(recommendations >= 1, "admitted queries still complete");
    assert!(overloaded >= 1, "the overflow is shed explicitly");
    assert_eq!(
        recommendations + overloaded,
        6,
        "every request gets exactly one reply"
    );
    assert_eq!(u64::from(overloaded), p.world().metrics().requests_shed);
}

/// Transactions survive a bucket that sheds queries: the reserve keeps
/// the last tokens for buys.
#[test]
fn transactions_outlive_queries_under_pressure() {
    let mut p = builder(11)
        .admission(AdmissionConfig {
            rate_per_sec: 0.001,
            burst: 4.0,
            transaction_reserve: 0.5,
            query_reserve: 0.25,
        })
        .build();
    let consumer = ConsumerId(1);
    p.login(consumer);
    // drain the unreserved part of the bucket with queries
    let mut saw_query_shed = false;
    for _ in 0..4 {
        for body in p.query(consumer, &["rust"], 5) {
            if matches!(body, ResponseBody::Overloaded { .. }) {
                saw_query_shed = true;
            }
        }
    }
    assert!(saw_query_shed, "queries must hit the transaction reserve");
    // a buy still gets through on the reserved tokens
    let replies = p.buy(
        consumer,
        abcrm::ecp::merchandise::ItemId(1),
        0,
        abcrm::core::agents::msg::BuyMode::Direct,
    );
    assert!(
        replies
            .iter()
            .any(|r| matches!(r, ResponseBody::Receipt { .. })),
        "the reserve keeps transactions alive: {replies:?}"
    );
}

/// A bounded mailbox under a request flood rejects the overflow, keeps
/// the observed depth at or below the bound, and the world still drains.
#[test]
fn bounded_mailbox_rejects_overflow_and_never_deadlocks() {
    let capacity = 3usize;
    let mut p = builder(3)
        .mailbox(MailboxConfig::new(capacity, MailboxPolicy::RejectNewest))
        .build();
    let consumer = ConsumerId(1);
    p.login(consumer);
    // flood the HttpA without letting the world drain in between
    let httpa = p.httpa();
    for _ in 0..24 {
        let msg = Message::new(msgkinds::FRONT_REQUEST)
            .with_payload(&FrontRequest {
                consumer,
                body: FrontRequestBody::Task(ConsumerTask::Query {
                    keywords: vec!["rust".into()],
                    category: None,
                    max_results: 5,
                }),
            })
            .expect("front request serializes");
        p.world_mut()
            .send_external(httpa, msg)
            .expect("httpa reachable");
    }
    p.world_mut().run_until_idle();
    let metrics = p.world().metrics();
    assert!(
        metrics.mailbox_rejections >= 1,
        "the flood must overflow a {capacity}-deep mailbox"
    );
    let max_depth = p.world().mailbox_max_depth();
    assert!(
        (1..=capacity).contains(&max_depth),
        "observed depth {max_depth} must stay within the bound {capacity}"
    );
}

/// With a request deadline and a marketplace link slower than the whole
/// budget, expired work is dropped mid-pipeline but the consumer still
/// hears back explicitly — a degraded reply or a deadline error, never
/// silence.
#[test]
fn deadline_expiry_still_answers_the_consumer() {
    let mut p = builder(5).request_deadline_us(50_000).build();
    let consumer = ConsumerId(1);
    p.login(consumer);
    // make the marketplace unreachable within the budget: the MBA capsule
    // lands only after the deadline and is cancelled on arrival
    let buyer = p.buyer_host();
    let market_host = p.markets()[0].host;
    p.world_mut().topology_mut().set_link_symmetric(
        buyer,
        market_host,
        LinkSpec::with_latency(SimDuration::from_micros(200_000)),
    );
    let replies = p.query(consumer, &["rust"], 5);
    assert!(
        !replies.is_empty(),
        "an expired request must still be answered"
    );
    for body in &replies {
        assert!(
            matches!(
                body,
                ResponseBody::Error(_) | ResponseBody::Recommendations { degraded: true, .. }
            ),
            "replies past the deadline are explicit about it: {body:?}"
        );
    }
    assert!(
        p.world().metrics().deadline_drops >= 1,
        "the stale work itself was dropped"
    );
}

/// Repeated marketplace failures open its breaker (requests degrade
/// immediately, without burning the MBA retry budget); after the cooldown
/// a probe closes it again and service recovers fully.
#[test]
fn breaker_opens_on_failures_and_recovers_after_cooldown() {
    // each failed query consumes several seconds of simulated time (MBA
    // watchdog plus grace), so the cooldown must comfortably outlast it
    // for the open state to be observable
    let cooldown_us = 60_000_000;
    let mut p = builder(9)
        .breaker(BreakerConfig {
            window: 4,
            failure_threshold: 0.5,
            min_samples: 2,
            cooldown_us,
        })
        .build();
    let consumer = ConsumerId(1);
    p.login(consumer);
    let buyer = p.buyer_host();
    let market_host = p.markets()[0].host;
    // partition the market: MBA dispatches fail fast and come home with
    // an Unreachable report, which is what feeds the breaker
    p.world_mut().topology_mut().partition(buyer, market_host);

    // enough failed trips to cross min_samples and open the circuit
    for _ in 0..2 {
        let replies = p.query(consumer, &["rust"], 5);
        assert!(
            replies
                .iter()
                .any(|r| matches!(r, ResponseBody::Recommendations { degraded: true, .. })),
            "a dead marketplace degrades the reply: {replies:?}"
        );
    }
    // circuit now open: the next query is served CF-only with no dispatch
    let shortcut = p.query(consumer, &["rust"], 5);
    assert!(
        shortcut
            .iter()
            .any(|r| matches!(r, ResponseBody::Recommendations { degraded: true, .. })),
        "an open circuit degrades immediately: {shortcut:?}"
    );
    assert!(
        p.world().metrics().breaker_rejections >= 1,
        "the suppressed dispatch is counted"
    );

    // heal, wait out the cooldown, and the probe restores full service
    p.world_mut()
        .topology_mut()
        .heal_partition(buyer, market_host);
    p.world_mut()
        .run_for(SimDuration::from_micros(2 * cooldown_us));
    let recovered = p.query(consumer, &["rust"], 5);
    assert!(
        recovered.iter().any(|r| matches!(
            r,
            ResponseBody::Recommendations {
                degraded: false,
                ..
            }
        )),
        "the half-open probe must close the circuit: {recovered:?}"
    );
}

/// Protection off (all defaults) leaves the workflow untouched: no shed,
/// breaker, deadline or mailbox counter ever moves.
#[test]
fn disabled_protection_never_counts_anything() {
    let mut p = builder(13).build();
    let consumer = ConsumerId(1);
    p.login(consumer);
    let replies = p.query(consumer, &["rust"], 5);
    assert!(replies.iter().any(|r| matches!(
        r,
        ResponseBody::Recommendations {
            degraded: false,
            ..
        }
    )));
    let metrics = p.world().metrics();
    assert_eq!(metrics.requests_shed, 0);
    assert_eq!(metrics.breaker_rejections, 0);
    assert_eq!(metrics.deadline_drops, 0);
    assert_eq!(metrics.mailbox_rejections, 0);
    assert_eq!(p.world().mailbox_max_depth(), 0);
}
