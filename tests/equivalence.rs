//! Indexed hot path ≡ reference implementation, and DES ≡ threaded
//! runtime.
//!
//! The store's query-serving index (flat-profile cache, posting lists,
//! bounded top-k selection, memoized item cosines, optional parallel
//! scoring) promises *byte-identical* answers to the naive full-scan
//! implementations it replaced. These tests hold it to that promise on
//! randomized stores: every comparison is exact `==` on `f64` scores —
//! no tolerances.
//!
//! The `cross_runtime` module extends the promise to the two runtimes:
//! the same seeded query workflow produces the same workflow trace
//! labels and the same reply payload *bytes* on [`agentsim::sim::SimWorld`]
//! and [`agentsim::thread_net::ThreadWorld`].

use abcrm_core::learning::BehaviorKind;
use abcrm_core::profile::ConsumerId;
use abcrm_core::recommend::{
    CfRecommender, ContentRecommender, HybridRecommender, QueryContext, Recommendation,
    Recommender, TopSellerRecommender,
};
use abcrm_core::similarity::{SimilarityConfig, SimilarityMethod};
use abcrm_core::store::RecommendStore;
use abcrm_core::{ItemCfRecommender, RandomRecommender};
use ecp::merchandise::{CategoryPath, ItemId, Merchandise, Money};
use ecp::terms::TermVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CATEGORIES: [(&str, &str); 4] = [
    ("books", "programming"),
    ("books", "scifi"),
    ("music", "jazz"),
    ("garden", "tools"),
];

fn merch(id: u64) -> Merchandise {
    let (cat, sub) = CATEGORIES[(id % CATEGORIES.len() as u64) as usize];
    Merchandise {
        id: ItemId(id),
        name: format!("item{id}"),
        category: CategoryPath::new(cat, sub),
        terms: TermVector::from_pairs([
            (format!("item{id}"), 1.0),
            (format!("shard{}", id % 7), 0.5),
            (sub.to_string(), 0.3),
        ]),
        list_price: Money::from_units(10 + id % 40),
        seller: 1 + (id % 3) as u32,
    }
}

/// A randomized store: `users` consumers exercising every behaviour kind
/// over a shared catalog, so profiles overlap partially, ratings are
/// sparse, and some consumers stay cold.
fn random_store(seed: u64, users: u64, items: u64) -> RecommendStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = RecommendStore::new();
    for id in 1..=items {
        store.upsert_item(merch(id));
    }
    let kinds = [
        BehaviorKind::Query,
        BehaviorKind::Browse,
        BehaviorKind::Negotiate,
        BehaviorKind::Bid,
        BehaviorKind::AuctionWin,
        BehaviorKind::Purchase,
    ];
    for user in 1..=users {
        // a few users stay completely cold
        if rng.gen_bool(0.1) {
            continue;
        }
        for _ in 0..rng.gen_range(1..10u32) {
            let item = ItemId(rng.gen_range(1..=items));
            let kind = kinds[rng.gen_range(0..kinds.len())];
            store.record_event(ConsumerId(user), item, kind);
        }
    }
    store
}

fn contexts() -> Vec<QueryContext> {
    vec![
        QueryContext::default(),
        QueryContext::keywords(["item3", "jazz"]),
        QueryContext {
            keywords: vec![],
            category: Some(CategoryPath::new("books", "programming")),
        },
        QueryContext {
            keywords: vec!["shard2".into()],
            category: Some(CategoryPath::new("music", "jazz")),
        },
    ]
}

fn similarity_configs() -> Vec<SimilarityConfig> {
    let mut cfgs = Vec::new();
    for method in [
        SimilarityMethod::Cosine,
        SimilarityMethod::Pearson,
        SimilarityMethod::Jaccard,
    ] {
        for discard_threshold in [Some(2.0), Some(4.0), None] {
            for min_overlap in [1usize, 2] {
                cfgs.push(SimilarityConfig {
                    method,
                    discard_threshold,
                    min_overlap,
                    ..SimilarityConfig::default()
                });
            }
        }
    }
    // negative floor: pruning is lossy there, so the store must fall
    // back to the full scan — and still match exactly
    cfgs.push(SimilarityConfig {
        method: SimilarityMethod::Pearson,
        neighbour_floor: -1.5,
        min_overlap: 2,
        ..SimilarityConfig::default()
    });
    cfgs
}

/// Exact-equality helper with a readable failure message.
fn assert_same_recs(indexed: &[Recommendation], naive: &[Recommendation], what: &str) {
    assert_eq!(indexed.len(), naive.len(), "{what}: lengths differ");
    for (a, b) in indexed.iter().zip(naive) {
        assert_eq!(a.item, b.item, "{what}: items diverge");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "{what}: score bits diverge on {:?}",
            a.item
        );
    }
}

#[test]
fn indexed_neighbour_search_matches_full_scan() {
    for seed in [1u64, 2, 3, 4, 5] {
        let store = random_store(seed, 40, 25);
        for cfg in similarity_configs() {
            for user in (1..=40u64).step_by(3) {
                for k in [1usize, 5, 100] {
                    let indexed = store.nearest_neighbours(ConsumerId(user), &cfg, k);
                    let naive = store.nearest_neighbours_naive(ConsumerId(user), &cfg, k);
                    assert_eq!(indexed, naive, "seed {seed} user {user} k {k} cfg {cfg:?}");
                }
            }
        }
    }
}

#[test]
fn hybrid_indexed_matches_naive() {
    for seed in [7u64, 8, 9] {
        let store = random_store(seed, 35, 20);
        for cfg in similarity_configs() {
            let rec = HybridRecommender {
                k_neighbours: 8,
                similarity: cfg,
                collaborative_weight: 0.7,
            };
            for ctx in contexts() {
                for user in [1u64, 5, 13, 27, 999] {
                    let indexed = rec.recommend(&store, ConsumerId(user), &ctx, 10);
                    let naive = rec.recommend_naive(&store, ConsumerId(user), &ctx, 10);
                    assert_same_recs(&indexed, &naive, &format!("hybrid seed {seed} user {user}"));
                }
            }
        }
    }
}

#[test]
fn itemcf_cached_matches_naive_and_repeated_queries() {
    for seed in [11u64, 12, 13] {
        let store = random_store(seed, 30, 18);
        let rec = ItemCfRecommender::default();
        for ctx in contexts() {
            for user in [1u64, 4, 17, 999] {
                let cached = rec.recommend(&store, ConsumerId(user), &ctx, 10);
                let naive = rec.recommend_naive(&store, ConsumerId(user), &ctx, 10);
                assert_same_recs(&cached, &naive, &format!("itemcf seed {seed} user {user}"));
                // second call answers from the warm cache — still identical
                let warm = rec.recommend(&store, ConsumerId(user), &ctx, 10);
                assert_same_recs(&warm, &naive, "itemcf warm cache");
            }
        }
    }
}

#[test]
fn mutations_invalidate_every_cache() {
    let mut store = random_store(21, 30, 18);
    let hybrid = HybridRecommender::default();
    let itemcf = ItemCfRecommender::default();
    let cfg = SimilarityConfig::default();
    let ctx = QueryContext::default();
    // warm all caches
    for user in 1..=30u64 {
        hybrid.recommend(&store, ConsumerId(user), &ctx, 10);
        itemcf.recommend(&store, ConsumerId(user), &ctx, 10);
    }
    type Mutation = Box<dyn Fn(&mut RecommendStore)>;
    let mutations: Vec<Mutation> = vec![
        Box::new(|s| s.record_event(ConsumerId(3), ItemId(5), BehaviorKind::Purchase)),
        Box::new(|s| {
            let mut p = abcrm_core::Profile::new();
            p.category_mut("garden").sub_mut("tools").set("spade", 3.0);
            s.put_profile(ConsumerId(7), p);
        }),
        Box::new(|s| s.record_basket(ConsumerId(9), &[ItemId(1), ItemId(2)])),
        Box::new(|s| s.decay_all_profiles(0.5)),
        Box::new(|s| s.decay_all_profiles(1e-12)),
    ];
    for (i, mutate) in mutations.iter().enumerate() {
        mutate(&mut store);
        for user in (1..=30u64).step_by(4) {
            assert_eq!(
                store.nearest_neighbours(ConsumerId(user), &cfg, 10),
                store.nearest_neighbours_naive(ConsumerId(user), &cfg, 10),
                "neighbours stale after mutation {i}"
            );
            assert_same_recs(
                &hybrid.recommend(&store, ConsumerId(user), &ctx, 10),
                &hybrid.recommend_naive(&store, ConsumerId(user), &ctx, 10),
                &format!("hybrid stale after mutation {i}"),
            );
            assert_same_recs(
                &itemcf.recommend(&store, ConsumerId(user), &ctx, 10),
                &itemcf.recommend_naive(&store, ConsumerId(user), &ctx, 10),
                &format!("itemcf stale after mutation {i}"),
            );
        }
    }
}

#[test]
fn serde_round_trip_preserves_every_recommender_answer() {
    let store = random_store(31, 30, 18);
    let back: RecommendStore =
        serde_json::from_value(serde_json::to_value(&store).unwrap()).unwrap();
    let recommenders: Vec<Box<dyn Recommender>> = vec![
        Box::new(HybridRecommender::default()),
        Box::new(ItemCfRecommender::default()),
        Box::new(CfRecommender::default()),
        Box::new(ContentRecommender),
        Box::new(TopSellerRecommender),
        Box::new(RandomRecommender { seed: 42 }),
    ];
    for rec in &recommenders {
        for ctx in contexts() {
            for user in [1u64, 6, 14, 999] {
                let original = rec.recommend(&store, ConsumerId(user), &ctx, 10);
                let reloaded = rec.recommend(&back, ConsumerId(user), &ctx, 10);
                assert_same_recs(&reloaded, &original, &format!("round-trip {}", rec.name()));
            }
        }
    }
    // the rebuilt index also serves neighbour queries identically
    let cfg = SimilarityConfig::default();
    for user in 1..=30u64 {
        assert_eq!(
            back.nearest_neighbours(ConsumerId(user), &cfg, 10),
            store.nearest_neighbours(ConsumerId(user), &cfg, 10),
        );
    }
}

#[test]
fn cloned_store_serves_identical_answers_independently() {
    let mut store = random_store(41, 25, 15);
    let copy = store.clone();
    let hybrid = HybridRecommender::default();
    let ctx = QueryContext::default();
    let before: Vec<_> = (1..=25u64)
        .map(|u| hybrid.recommend(&copy, ConsumerId(u), &ctx, 10))
        .collect();
    // mutating the original must not leak into the clone (separate
    // indexes, separate caches)
    store.record_event(ConsumerId(1), ItemId(2), BehaviorKind::Purchase);
    store.decay_all_profiles(0.1);
    for (u, expected) in (1..=25u64).zip(before) {
        assert_same_recs(
            &hybrid.recommend(&copy, ConsumerId(u), &ctx, 10),
            &expected,
            "clone drifted",
        );
        assert_same_recs(
            &hybrid.recommend(&copy, ConsumerId(u), &ctx, 10),
            &hybrid.recommend_naive(&copy, ConsumerId(u), &ctx, 10),
            "clone index stale",
        );
    }
}

/// DES ≡ threaded runtime: the same query workflow — profile load, MBA
/// round trip with BRA deactivation, recommendation generation — yields
/// the same fig4.2 trace labels and byte-identical reply payloads on
/// both runtimes.
mod cross_runtime {
    use abcrm::core::agents::msg::{kinds as msgkinds, ConsumerTask, MarketRef, RoutedTask};
    use abcrm::core::agents::{register_all, Bsma, BsmaConfig, BuyerRecommendAgent, ProfileAgent};
    use abcrm::core::learning::LearnerConfig;
    use abcrm::core::profile::ConsumerId;
    use abcrm::core::server::listing;
    use abcrm::core::similarity::SimilarityConfig;
    use abcrm::ecp::{MarketplaceAgent, SellerAgent};
    use agentsim::agent::{Agent, Ctx};
    use agentsim::ids::AgentId;
    use agentsim::message::Message;
    use agentsim::sim::SimWorld;
    use agentsim::thread_net::ThreadWorldBuilder;
    use agentsim::trace::Trace;
    use serde::{Deserialize, Serialize};
    use std::time::Duration;

    /// Stands in for the HttpA front: forwards `__send_to` instructions
    /// and writes every reply's kind + payload bytes into the trace, the
    /// one observation channel both runtimes share.
    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Probe;

    impl Agent for Probe {
        fn agent_type(&self) -> &'static str {
            "probe"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::json!(null)
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if let Some(target) = msg.payload.get("__send_to") {
                let to = AgentId(target.as_u64().unwrap());
                let inner = Message::new(msg.payload["kind"].as_str().unwrap())
                    .carrying(msg.payload.project("payload"));
                ctx.send(to, inner);
                return;
            }
            ctx.note(format!("probe-reply {} {}", msg.kind, msg.payload));
        }
    }

    fn instruction(to: AgentId, kind: &str, payload: &impl Serialize) -> Message {
        Message::new("instr").carrying(serde_json::json!({
            "__send_to": to.0,
            "kind": kind,
            "payload": serde_json::to_value(payload).unwrap(),
        }))
    }

    fn catalog() -> Vec<ecp::protocol::Listing> {
        vec![
            listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
            listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
            listing(3, "Jazz LP", "music", "jazz", 18, &[("jazz", 1.0)]),
        ]
    }

    fn task() -> RoutedTask {
        RoutedTask {
            consumer: ConsumerId(1),
            task: ConsumerTask::Query {
                keywords: vec!["rust".into()],
                category: None,
                max_results: 5,
            },
            blocked_markets: Vec::new(),
        }
    }

    /// Workflow-step labels (sorted: thread scheduling may interleave
    /// hosts) plus the probe's captured reply bytes, in arrival order.
    fn observations(trace: &Trace) -> (Vec<String>, Vec<String>) {
        let mut steps: Vec<String> = trace
            .labels_with_prefix("fig4.2/")
            .into_iter()
            .map(String::from)
            .collect();
        steps.sort();
        let replies = trace
            .labels_with_prefix("probe-reply ")
            .into_iter()
            .map(String::from)
            .collect();
        (steps, replies)
    }

    fn run_on_des() -> (Vec<String>, Vec<String>) {
        let mut world = SimWorld::new(1234);
        register_all(world.registry_mut());
        world.registry_mut().register_serde::<Probe>("probe");
        let market_host = world.add_host("marketplace");
        let seller_host = world.add_host("seller");
        let buyer_host = world.add_host("buyer-agent-server");
        let market = world
            .create_agent(market_host, Box::new(MarketplaceAgent::new("m0")))
            .unwrap();
        world
            .create_agent(
                seller_host,
                Box::new(SellerAgent::new(1, "s0", catalog(), vec![market])),
            )
            .unwrap();
        world.run_until_idle();
        let markets = vec![MarketRef {
            host: market_host,
            agent: market,
        }];
        let bsma = world
            .create_agent(
                buyer_host,
                Box::new(Bsma::new(BsmaConfig {
                    target: buyer_host,
                    markets: markets.clone(),
                    ..BsmaConfig::default()
                })),
            )
            .unwrap();
        world.run_until_idle();
        let pa = world
            .create_agent(
                buyer_host,
                Box::new(ProfileAgent::new(
                    LearnerConfig::default(),
                    SimilarityConfig::default(),
                )),
            )
            .unwrap();
        let probe = world.create_agent(buyer_host, Box::new(Probe)).unwrap();
        let bra = world
            .create_agent(
                buyer_host,
                Box::new(BuyerRecommendAgent::new(
                    ConsumerId(1),
                    bsma,
                    pa,
                    probe,
                    markets,
                )),
            )
            .unwrap();
        world.run_until_idle();
        world
            .send_external(probe, instruction(bra, msgkinds::BRA_TASK, &task()))
            .unwrap();
        world.run_until_idle();
        observations(world.trace())
    }

    fn run_on_threads() -> (Vec<String>, Vec<String>) {
        let mut builder = ThreadWorldBuilder::new(1234);
        register_all(builder.registry_mut());
        builder.registry_mut().register_serde::<Probe>("probe");
        let market_host = builder.add_host("marketplace");
        let seller_host = builder.add_host("seller");
        let buyer_host = builder.add_host("buyer-agent-server");
        let world = builder.start();
        let market = world
            .create_agent(market_host, Box::new(MarketplaceAgent::new("m0")))
            .unwrap();
        world
            .create_agent(
                seller_host,
                Box::new(SellerAgent::new(1, "s0", catalog(), vec![market])),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        let markets = vec![MarketRef {
            host: market_host,
            agent: market,
        }];
        let bsma = world
            .create_agent(
                buyer_host,
                Box::new(Bsma::new(BsmaConfig {
                    target: buyer_host,
                    markets: markets.clone(),
                    ..BsmaConfig::default()
                })),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        let pa = world
            .create_agent(
                buyer_host,
                Box::new(ProfileAgent::new(
                    LearnerConfig::default(),
                    SimilarityConfig::default(),
                )),
            )
            .unwrap();
        let probe = world.create_agent(buyer_host, Box::new(Probe)).unwrap();
        let bra = world
            .create_agent(
                buyer_host,
                Box::new(
                    BuyerRecommendAgent::new(ConsumerId(1), bsma, pa, probe, markets)
                        // the MBA watchdog timer runs on the wall clock
                        // here; keep the idle-wait short
                        .with_mba_timeout_us(300_000),
                ),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        world
            .send_external(probe, instruction(bra, msgkinds::BRA_TASK, &task()))
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(20)).is_idle());
        let (_metrics, trace) = world.shutdown();
        observations(&trace)
    }

    #[test]
    fn query_workflow_is_identical_across_runtimes() {
        let (des_steps, des_replies) = run_on_des();
        let (thread_steps, thread_replies) = run_on_threads();
        assert!(
            !des_steps.is_empty(),
            "workflow must produce fig4.2 steps on the DES"
        );
        assert_eq!(des_steps, thread_steps, "workflow step labels diverge");
        assert_eq!(
            des_replies.len(),
            1,
            "exactly one recommendation reply: {des_replies:?}"
        );
        assert_eq!(
            des_replies, thread_replies,
            "reply payload bytes diverge between runtimes"
        );
        assert!(
            des_replies[0].starts_with(&format!("probe-reply {} ", msgkinds::BRA_RESPONSE)),
            "reply is the BRA's recommendation response: {}",
            des_replies[0]
        );
    }
}

/// DES ≡ threaded runtime under *faults*: the four failure-injection
/// scenarios (total loss degrades the reply, the platform recovers after
/// healing, a dead marketplace yields a partial result, a doomed buy
/// fails cleanly) produce the same *outcome class* on both runtimes.
///
/// Only the synchronous fault vocabulary (partitions, host crashes) is
/// used here — those are the faults whose semantics the two runtimes
/// share exactly, so the equivalence is deterministic, not statistical.
mod cross_runtime_faults {
    use abcrm::core::agents::msg::{
        kinds as msgkinds, BraResponse, BuyMode, ConsumerTask, MarketRef, ResponseBody, RoutedTask,
    };
    use abcrm::core::agents::{register_all, Bsma, BsmaConfig, BuyerRecommendAgent, ProfileAgent};
    use abcrm::core::learning::LearnerConfig;
    use abcrm::core::profile::ConsumerId;
    use abcrm::core::server::listing;
    use abcrm::core::similarity::SimilarityConfig;
    use abcrm::core::BackoffPolicy;
    use abcrm::ecp::merchandise::ItemId;
    use abcrm::ecp::{MarketplaceAgent, SellerAgent};
    use agentsim::agent::{Agent, Ctx};
    use agentsim::ids::AgentId;
    use agentsim::message::Message;
    use agentsim::sim::SimWorld;
    use agentsim::thread_net::ThreadWorldBuilder;
    use agentsim::trace::Trace;
    use serde::{Deserialize, Serialize};
    use std::time::Duration;

    /// What a fault scenario does between queries.
    #[derive(Clone, Copy)]
    enum Step {
        /// Partition the buyer server from market `i`.
        Partition(usize),
        /// Heal that partition.
        Heal(usize),
        /// Crash market host `i`.
        Crash(usize),
        /// Run a query task.
        Query,
        /// Try to buy a nonexistent item from market 0.
        BuyUnknown,
    }

    /// Collapse a reply into its outcome class — the unit of equivalence.
    fn classify(body: &ResponseBody) -> String {
        match body {
            ResponseBody::Recommendations { degraded: true, .. } => "degraded".into(),
            ResponseBody::Recommendations {
                unreachable_markets,
                ..
            } if !unreachable_markets.is_empty() => {
                format!("partial:{}", unreachable_markets.len())
            }
            ResponseBody::Recommendations { .. } => "full".into(),
            ResponseBody::Receipt { .. } => "receipt".into(),
            ResponseBody::Error(_) => "error".into(),
            other => format!("other:{other:?}"),
        }
    }

    /// Front stand-in: forwards instructions, classifies every reply.
    #[derive(Debug, Default, Serialize, Deserialize)]
    struct ClassifierProbe;

    impl Agent for ClassifierProbe {
        fn agent_type(&self) -> &'static str {
            "classifier-probe"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::json!(null)
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if let Some(target) = msg.payload.get("__send_to") {
                let to = AgentId(target.as_u64().unwrap());
                let inner = Message::new(msg.payload["kind"].as_str().unwrap())
                    .carrying(msg.payload.project("payload"));
                ctx.send(to, inner);
                return;
            }
            if msg.kind == msgkinds::BRA_RESPONSE {
                let reply: BraResponse = msg.payload_as().expect("bra response parses");
                ctx.note(format!("outcome {}", classify(&reply.body)));
            }
        }
    }

    fn instruction(to: AgentId, task: &ConsumerTask) -> Message {
        let routed = RoutedTask {
            consumer: ConsumerId(1),
            task: task.clone(),
            blocked_markets: Vec::new(),
        };
        Message::new("instr").carrying(serde_json::json!({
            "__send_to": to.0,
            "kind": msgkinds::BRA_TASK,
            "payload": serde_json::to_value(&routed).unwrap(),
        }))
    }

    fn query() -> ConsumerTask {
        ConsumerTask::Query {
            keywords: vec!["rust".into()],
            category: None,
            max_results: 5,
        }
    }

    fn catalogs() -> Vec<Vec<ecp::protocol::Listing>> {
        vec![
            vec![listing(
                1,
                "Rust Book",
                "books",
                "programming",
                30,
                &[("rust", 1.0)],
            )],
            vec![listing(
                11,
                "Systems Programming",
                "books",
                "programming",
                40,
                &[("rust", 0.8)],
            )],
        ]
    }

    fn outcomes(trace: &Trace) -> Vec<String> {
        trace
            .labels_with_prefix("outcome ")
            .into_iter()
            .map(String::from)
            .collect()
    }

    // Both runtimes share this timeout: timers are wall-clock threads on
    // the threaded runtime, so the window must be short.
    const MBA_TIMEOUT_US: u64 = 300_000;

    fn retry() -> BackoffPolicy {
        BackoffPolicy::new(100_000, 400_000, 1)
    }

    fn run_on_des(steps: &[Step]) -> Vec<String> {
        let mut world = SimWorld::new(77);
        register_all(world.registry_mut());
        world
            .registry_mut()
            .register_serde::<ClassifierProbe>("classifier-probe");
        let market_hosts = [world.add_host("m0"), world.add_host("m1")];
        let seller_host = world.add_host("seller");
        let buyer_host = world.add_host("buyer-agent-server");
        let mut markets = Vec::new();
        for (i, (host, catalog)) in market_hosts.iter().zip(catalogs()).enumerate() {
            let agent = world
                .create_agent(*host, Box::new(MarketplaceAgent::new(format!("m{i}"))))
                .unwrap();
            markets.push(MarketRef { host: *host, agent });
            world
                .create_agent(
                    seller_host,
                    Box::new(SellerAgent::new(1, format!("s{i}"), catalog, vec![agent])),
                )
                .unwrap();
        }
        world.run_until_idle();
        let bsma = world
            .create_agent(
                buyer_host,
                Box::new(Bsma::new(BsmaConfig {
                    target: buyer_host,
                    markets: markets.clone(),
                    mba_timeout_us: MBA_TIMEOUT_US,
                    bra_retry: retry(),
                    ..BsmaConfig::default()
                })),
            )
            .unwrap();
        world.run_until_idle();
        let pa = world
            .create_agent(
                buyer_host,
                Box::new(ProfileAgent::new(
                    LearnerConfig::default(),
                    SimilarityConfig::default(),
                )),
            )
            .unwrap();
        let probe = world
            .create_agent(buyer_host, Box::new(ClassifierProbe))
            .unwrap();
        let bra = world
            .create_agent(
                buyer_host,
                Box::new(
                    BuyerRecommendAgent::new(ConsumerId(1), bsma, pa, probe, markets.clone())
                        .with_mba_timeout_us(MBA_TIMEOUT_US)
                        .with_retry_policy(retry()),
                ),
            )
            .unwrap();
        world.run_until_idle();
        for step in steps {
            match *step {
                Step::Partition(i) => {
                    world.topology_mut().partition(buyer_host, market_hosts[i]);
                }
                Step::Heal(i) => {
                    world
                        .topology_mut()
                        .heal_partition(buyer_host, market_hosts[i]);
                }
                Step::Crash(i) => world.crash_host(market_hosts[i]).unwrap(),
                Step::Query => {
                    world
                        .send_external(probe, instruction(bra, &query()))
                        .unwrap();
                    world.run_until_idle();
                }
                Step::BuyUnknown => {
                    let task = ConsumerTask::Buy {
                        item: ItemId(999),
                        market: markets[0],
                        mode: BuyMode::Direct,
                    };
                    world.send_external(probe, instruction(bra, &task)).unwrap();
                    world.run_until_idle();
                }
            }
        }
        outcomes(world.trace())
    }

    fn run_on_threads(steps: &[Step]) -> Vec<String> {
        let mut builder = ThreadWorldBuilder::new(77);
        register_all(builder.registry_mut());
        builder
            .registry_mut()
            .register_serde::<ClassifierProbe>("classifier-probe");
        let market_hosts = [builder.add_host("m0"), builder.add_host("m1")];
        let seller_host = builder.add_host("seller");
        let buyer_host = builder.add_host("buyer-agent-server");
        let world = builder.start();
        let mut markets = Vec::new();
        for (i, (host, catalog)) in market_hosts.iter().zip(catalogs()).enumerate() {
            let agent = world
                .create_agent(*host, Box::new(MarketplaceAgent::new(format!("m{i}"))))
                .unwrap();
            markets.push(MarketRef { host: *host, agent });
            world
                .create_agent(
                    seller_host,
                    Box::new(SellerAgent::new(1, format!("s{i}"), catalog, vec![agent])),
                )
                .unwrap();
        }
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        let bsma = world
            .create_agent(
                buyer_host,
                Box::new(Bsma::new(BsmaConfig {
                    target: buyer_host,
                    markets: markets.clone(),
                    mba_timeout_us: MBA_TIMEOUT_US,
                    bra_retry: retry(),
                    ..BsmaConfig::default()
                })),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        let pa = world
            .create_agent(
                buyer_host,
                Box::new(ProfileAgent::new(
                    LearnerConfig::default(),
                    SimilarityConfig::default(),
                )),
            )
            .unwrap();
        let probe = world
            .create_agent(buyer_host, Box::new(ClassifierProbe))
            .unwrap();
        let bra = world
            .create_agent(
                buyer_host,
                Box::new(
                    BuyerRecommendAgent::new(ConsumerId(1), bsma, pa, probe, markets.clone())
                        .with_mba_timeout_us(MBA_TIMEOUT_US)
                        .with_retry_policy(retry()),
                ),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        for step in steps {
            match *step {
                Step::Partition(i) => world.partition(buyer_host, market_hosts[i]),
                Step::Heal(i) => world.heal_partition(buyer_host, market_hosts[i]),
                Step::Crash(i) => world.crash_host(market_hosts[i]).unwrap(),
                Step::Query => {
                    world
                        .send_external(probe, instruction(bra, &query()))
                        .unwrap();
                    assert!(world.run_until_idle(Duration::from_secs(30)).is_idle());
                }
                Step::BuyUnknown => {
                    let task = ConsumerTask::Buy {
                        item: ItemId(999),
                        market: markets[0],
                        mode: BuyMode::Direct,
                    };
                    world.send_external(probe, instruction(bra, &task)).unwrap();
                    assert!(world.run_until_idle(Duration::from_secs(30)).is_idle());
                }
            }
        }
        let (_metrics, trace) = world.shutdown();
        outcomes(&trace)
    }

    fn assert_equivalent(steps: &[Step], expected: &[&str], what: &str) {
        let des = run_on_des(steps);
        let threads = run_on_threads(steps);
        let expected: Vec<String> = expected.iter().map(|c| format!("outcome {c}")).collect();
        assert_eq!(des, expected, "{what}: DES outcome classes");
        assert_eq!(des, threads, "{what}: runtimes disagree on outcome classes");
    }

    /// failure_injection scenario 1: total loss of every marketplace
    /// degrades the reply to CF-only instead of erroring or hanging.
    #[test]
    fn total_partition_degrades_identically() {
        assert_equivalent(
            &[Step::Partition(0), Step::Partition(1), Step::Query],
            &["degraded"],
            "total partition",
        );
    }

    /// failure_injection scenario 2: once the network heals the next
    /// query is served in full again.
    #[test]
    fn platform_recovers_after_heal_identically() {
        assert_equivalent(
            &[
                Step::Partition(0),
                Step::Partition(1),
                Step::Query,
                Step::Heal(0),
                Step::Heal(1),
                Step::Query,
            ],
            &["degraded", "full"],
            "heal recovery",
        );
    }

    /// One dead marketplace out of two: the reply is partial — offers
    /// from the live market, the dead one tagged unreachable.
    #[test]
    fn crashed_market_yields_partial_result_identically() {
        assert_equivalent(
            &[Step::Crash(1), Step::Query],
            &["partial:1"],
            "crashed market",
        );
    }

    /// failure_injection scenario 6: a doomed buy fails cleanly and the
    /// platform stays healthy for the next query.
    #[test]
    fn doomed_buy_fails_cleanly_identically() {
        assert_equivalent(
            &[Step::BuyUnknown, Step::Query],
            &["error", "full"],
            "doomed buy",
        );
    }
}

/// Unsharded ≡ sharded platform: a 1-shard [`ShardedPlatform`] replays
/// the unsharded [`Platform`] byte for byte, and at 2/4/8 shards the
/// fig 4.2/4.3 workflows — clean and under a seeded fault sweep —
/// produce the same *outcome class* as the unsharded run.
///
/// Outcome classes (full / partial:N / degraded / receipt / error) are
/// the unit of equivalence across shard counts: shard RNG streams and
/// boundary latencies legitimately change timings and tie-breaks, but
/// never whether a workflow succeeds, degrades or fails.
mod shard_sweep {
    use abcrm::core::agents::msg::{BuyMode, ResponseBody};
    use abcrm::core::profile::ConsumerId;
    use abcrm::core::server::{listing, Platform, ShardedPlatform};
    use abcrm::ecp::merchandise::ItemId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn catalogs() -> Vec<Vec<ecp::protocol::Listing>> {
        vec![
            vec![
                listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
            ],
            vec![listing(
                11,
                "Systems Programming",
                "books",
                "programming",
                40,
                &[("rust", 0.8)],
            )],
        ]
    }

    fn platform(seed: u64) -> Platform {
        Platform::builder(seed).marketplaces(catalogs()).build()
    }

    fn sharded(seed: u64, shards: usize) -> ShardedPlatform {
        ShardedPlatform::builder(seed, shards)
            .marketplaces(catalogs())
            .build()
    }

    /// Collapse a reply into its outcome class — the unit of equivalence.
    fn classify(body: &ResponseBody) -> String {
        match body {
            ResponseBody::Recommendations { degraded: true, .. } => "degraded".into(),
            ResponseBody::Recommendations {
                unreachable_markets,
                ..
            } if !unreachable_markets.is_empty() => {
                format!("partial:{}", unreachable_markets.len())
            }
            ResponseBody::Recommendations { .. } => "full".into(),
            ResponseBody::Receipt { .. } => "receipt".into(),
            ResponseBody::Error(_) => "error".into(),
            other => format!("other:{other:?}"),
        }
    }

    fn classify_all(responses: &[ResponseBody]) -> Vec<String> {
        responses.iter().map(classify).collect()
    }

    /// The 1-shard sharded platform is *byte-identical* to the unsharded
    /// one over the whole fig 4.1/4.2/4.3 surface: same trace labels in
    /// the same order, same responses, same metrics.
    #[test]
    fn one_shard_run_is_byte_identical_to_unsharded() {
        let mut flat = platform(1234);
        let mut one = sharded(1234, 1);
        let alice = ConsumerId(1);
        assert_eq!(flat.login(alice), one.login(alice));
        assert_eq!(
            flat.query(alice, &["rust"], 5),
            one.query(alice, &["rust"], 5)
        );
        assert_eq!(
            flat.buy(alice, ItemId(1), 0, BuyMode::Direct),
            one.buy(alice, ItemId(1), 0, BuyMode::Direct)
        );
        assert_eq!(flat.logout(alice), one.logout(alice));
        let flat_labels: Vec<String> = flat
            .world()
            .trace()
            .labels()
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            flat_labels,
            one.world().trace_labels(),
            "1-shard trace must replay the unsharded trace byte for byte"
        );
        assert_eq!(flat.world().metrics(), &one.metrics());
        assert_eq!(one.metrics().boundary_messages, 0);
        assert_eq!(one.metrics().boundary_migrations, 0);
    }

    /// Clean fig 4.2 query and fig 4.3 buy keep their outcome classes at
    /// every shard count, for a consumer on every shard.
    #[test]
    fn clean_workflows_keep_outcome_class_at_2_4_8_shards() {
        // unsharded baseline
        let mut flat = platform(55);
        flat.login(ConsumerId(1));
        let base_query = classify_all(&flat.query(ConsumerId(1), &["rust"], 5));
        let base_buy = classify_all(&flat.buy(ConsumerId(1), ItemId(1), 0, BuyMode::Direct));
        assert_eq!(base_query, vec!["full"]);
        assert_eq!(base_buy, vec!["receipt"]);
        for shards in [2usize, 4, 8] {
            let mut p = sharded(55, shards);
            // one consumer per shard, found by walking the hash
            let mut picks: Vec<Option<ConsumerId>> = vec![None; shards];
            for c in 1..10_000u64 {
                let s = p.shard_of(ConsumerId(c));
                if picks[s].is_none() {
                    picks[s] = Some(ConsumerId(c));
                }
                if picks.iter().all(Option::is_some) {
                    break;
                }
            }
            for consumer in picks.into_iter().map(Option::unwrap) {
                p.login(consumer);
                assert_eq!(
                    classify_all(&p.query(consumer, &["rust"], 5)),
                    base_query,
                    "{shards}-shard query class for {consumer:?}"
                );
                assert_eq!(
                    classify_all(&p.buy(consumer, ItemId(1), 0, BuyMode::Direct)),
                    base_buy,
                    "{shards}-shard buy class for {consumer:?}"
                );
            }
            assert_eq!(p.metrics().migrations_rejected, 0);
        }
    }

    /// What a seeded fault scenario does between tasks. Only the
    /// synchronous fault vocabulary (partitions, host crashes) is used —
    /// its semantics are identical on both platform shapes, so the
    /// equivalence is deterministic, not statistical.
    #[derive(Clone, Copy, Debug)]
    enum Step {
        /// Partition the consumer's buyer host from market `i`.
        Partition(usize),
        /// Heal that partition.
        Heal(usize),
        /// Crash market host `i`.
        Crash(usize),
        /// Run a fig 4.2 query.
        Query,
        /// Direct-buy item 1 from market 0 (fig 4.3).
        Buy,
    }

    /// A deterministic scenario per seed: a few faults/heals interleaved
    /// with tasks, always ending with a query and a buy so every seed
    /// exercises both workflows.
    fn scenario(seed: u64) -> Vec<Step> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut steps = Vec::new();
        for _ in 0..rng.gen_range(2..=4u32) {
            steps.push(match rng.gen_range(0..7u32) {
                0 => Step::Partition(0),
                1 => Step::Partition(1),
                2 => Step::Heal(0),
                3 => Step::Heal(1),
                4 => Step::Crash(1),
                5 => Step::Query,
                _ => Step::Buy,
            });
        }
        steps.push(Step::Query);
        steps.push(Step::Buy);
        steps
    }

    fn run_flat(seed: u64, steps: &[Step]) -> Vec<String> {
        let mut p = platform(seed);
        let consumer = ConsumerId(1);
        p.login(consumer);
        let buyer = p.buyer_host();
        let market_hosts = [p.markets()[0].host, p.markets()[1].host];
        let mut classes = Vec::new();
        for step in steps {
            match *step {
                Step::Partition(i) => {
                    p.world_mut()
                        .topology_mut()
                        .partition(buyer, market_hosts[i]);
                }
                Step::Heal(i) => {
                    p.world_mut()
                        .topology_mut()
                        .heal_partition(buyer, market_hosts[i]);
                }
                Step::Crash(i) => p.world_mut().crash_host(market_hosts[i]).unwrap(),
                Step::Query => classes.extend(classify_all(&p.query(consumer, &["rust"], 5))),
                Step::Buy => classes.extend(classify_all(&p.buy(
                    consumer,
                    ItemId(1),
                    0,
                    BuyMode::Direct,
                ))),
            }
        }
        classes
    }

    fn run_sharded(seed: u64, shards: usize, steps: &[Step]) -> Vec<String> {
        let mut p = sharded(seed, shards);
        // pick a consumer on the last shard so every fault scenario
        // crosses the boundary (shard 0 would stay local)
        let consumer = (1..10_000u64)
            .map(ConsumerId)
            .find(|c| p.shard_of(*c) == shards - 1)
            .expect("hash covers the last shard");
        p.login(consumer);
        let buyer = p.buyer_host(p.shard_of(consumer));
        let market_hosts = [p.markets()[0].host, p.markets()[1].host];
        let mut classes = Vec::new();
        for step in steps {
            match *step {
                Step::Partition(i) => p.world_mut().partition(buyer, market_hosts[i]),
                Step::Heal(i) => p.world_mut().heal_partition(buyer, market_hosts[i]),
                Step::Crash(i) => p.world_mut().crash_host(market_hosts[i]).unwrap(),
                Step::Query => classes.extend(classify_all(&p.query(consumer, &["rust"], 5))),
                Step::Buy => classes.extend(classify_all(&p.buy(
                    consumer,
                    ItemId(1),
                    0,
                    BuyMode::Direct,
                ))),
            }
        }
        classes
    }

    /// 32-seed fault sweep: every seeded scenario produces the same
    /// outcome-class sequence unsharded and at 2 and 4 shards.
    #[test]
    fn fault_sweep_keeps_outcome_classes_across_shard_counts() {
        for seed in 0..32u64 {
            let steps = scenario(seed);
            let flat = run_flat(seed, &steps);
            for shards in [2usize, 4] {
                let got = run_sharded(seed, shards, &steps);
                assert_eq!(
                    flat, got,
                    "seed {seed} {shards}-shard outcome classes diverge on {steps:?}"
                );
            }
        }
    }
}
