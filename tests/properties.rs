//! Property-based tests over the core data structures and protocol
//! invariants (proptest).

use abcrm::core::learning::{BehaviorEvent, BehaviorKind, LearnerConfig, ProfileLearner};
use abcrm::core::profile::{ConsumerId, Profile};
use abcrm::core::ratings::RatingsMatrix;
use abcrm::core::similarity::{profile_similarity, SimilarityConfig};
use abcrm::ecp::auction::{BidderId, EnglishAuction, VickreyAuction};
use abcrm::ecp::merchandise::{CategoryPath, ItemId, Money};
use abcrm::ecp::negotiation::{negotiate, BuyerPolicy, Outcome, SellerPolicy};
use abcrm::ecp::terms::TermVector;
use abcrm::simdb::{JsonStore, Wal};
use proptest::prelude::*;

fn term_vector_strategy() -> impl Strategy<Value = TermVector> {
    proptest::collection::vec(("[a-f]{1,4}", 0.01f64..10.0), 0..8).prop_map(TermVector::from_pairs)
}

fn profile_strategy() -> impl Strategy<Value = Profile> {
    proptest::collection::vec(("[a-c]{1}", "[x-z]{1}", "[a-f]{1,4}", 0.01f64..5.0), 0..10).prop_map(
        |entries| {
            let mut p = Profile::new();
            for (cat, sub, term, w) in entries {
                p.category_mut(&cat).sub_mut(&sub).add(term, w);
            }
            p
        },
    )
}

proptest! {
    #[test]
    fn cosine_is_bounded_and_symmetric(a in term_vector_strategy(), b in term_vector_strategy()) {
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-9);
        // self-similarity is 1 for non-empty vectors
        if !a.is_empty() {
            prop_assert!((a.cosine(&a) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn term_vector_weights_never_negative(
        ops in proptest::collection::vec(("[a-d]{1,2}", -5.0f64..5.0), 0..30)
    ) {
        let mut v = TermVector::new();
        for (t, delta) in ops {
            v.add(t, delta);
        }
        for (_, w) in v.iter() {
            prop_assert!(w > 0.0, "stored weights are strictly positive: {w}");
        }
    }

    #[test]
    fn profile_similarity_bounded_symmetric(a in profile_strategy(), b in profile_strategy()) {
        let cfg = SimilarityConfig::default();
        let ab = profile_similarity(&a, &b, &cfg);
        let ba = profile_similarity(&b, &a, &cfg);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn learner_never_creates_unbounded_profiles(
        events in proptest::collection::vec(
            ("[a-c]{1}", "[x-z]{1}", proptest::collection::vec(("[a-f]{1,3}", 0.01f64..3.0), 1..5)),
            0..40,
        ),
        alpha in 0.01f64..1.0,
    ) {
        let learner = ProfileLearner::new(LearnerConfig { alpha, max_terms: 16, ..LearnerConfig::default() });
        let mut profile = Profile::new();
        for (cat, sub, terms) in events {
            let event = BehaviorEvent::new(
                BehaviorKind::Purchase,
                CategoryPath::new(cat, sub),
                TermVector::from_pairs(terms),
            );
            learner.apply(&mut profile, &event);
        }
        for (_, cp) in profile.iter() {
            prop_assert!(cp.terms.len() <= 16);
            for (_, sub) in cp.subs.iter() {
                prop_assert!(sub.len() <= 16);
            }
        }
        prop_assert!(profile.total_interest().is_finite());
    }

    #[test]
    fn negotiation_deals_respect_both_parties(
        list in 10u64..500,
        reservation_frac in 0.1f64..1.0,
        budget in 1u64..600,
        opening in 0.1f64..1.0,
        raise in 0.01f64..0.5,
        concession in 0.01f64..0.5,
    ) {
        let seller = SellerPolicy {
            list: Money::from_units(list),
            reservation: Money::from_units(list).scale(reservation_frac),
            concession,
            strategy: Default::default(),
        };
        let buyer = BuyerPolicy {
            budget: Money::from_units(budget),
            opening_fraction: opening,
            raise,
            max_rounds: 30,
        };
        match negotiate(seller, buyer) {
            Outcome::Deal { price, rounds } => {
                prop_assert!(price >= seller.reservation, "deal below reservation: {price}");
                prop_assert!(price <= buyer.budget, "deal above budget: {price}");
                prop_assert!(price <= seller.list, "deal above list: {price}");
                prop_assert!((1..=30).contains(&rounds));
            }
            Outcome::NoDeal { rounds } => {
                prop_assert!(rounds <= 30);
            }
        }
    }

    #[test]
    fn english_auction_winner_paid_a_valid_bid(
        reserve in 1u64..100,
        increment in 1u64..10,
        bids in proptest::collection::vec((1u64..20, 1u64..500), 0..30),
    ) {
        let mut auction = EnglishAuction::open(
            ItemId(1),
            Money::from_units(reserve),
            Money::from_units(increment),
        );
        let mut highest_accepted: Option<Money> = None;
        for (bidder, amount) in bids {
            let amount = Money::from_units(amount);
            if auction.place_bid(BidderId(bidder), amount).is_ok() {
                if let Some(prev) = highest_accepted {
                    prop_assert!(amount >= prev + Money::from_units(increment));
                }
                highest_accepted = Some(amount);
            }
        }
        match auction.close() {
            abcrm::ecp::auction::AuctionOutcome::Sold { price, .. } => {
                prop_assert_eq!(Some(price), highest_accepted);
                prop_assert!(price >= Money::from_units(reserve));
            }
            abcrm::ecp::auction::AuctionOutcome::Unsold => {
                prop_assert!(highest_accepted.is_none());
            }
        }
    }

    #[test]
    fn vickrey_price_never_exceeds_winning_bid(
        reserve in 1u64..100,
        bids in proptest::collection::vec((1u64..50, 1u64..500), 0..20),
    ) {
        let mut auction = VickreyAuction::open(ItemId(1), Money::from_units(reserve));
        let mut accepted: Vec<(BidderId, Money)> = Vec::new();
        for (bidder, amount) in bids {
            let amount = Money::from_units(amount);
            if auction.place_bid(BidderId(bidder), amount).is_ok() {
                accepted.push((BidderId(bidder), amount));
            }
        }
        match auction.close() {
            abcrm::ecp::auction::AuctionOutcome::Sold { winner, price } => {
                let winning_bid = accepted
                    .iter()
                    .find(|(b, _)| *b == winner)
                    .map(|(_, a)| *a)
                    .expect("winner placed a bid");
                let max_bid = accepted.iter().map(|(_, a)| *a).max().unwrap();
                prop_assert_eq!(winning_bid, max_bid, "highest bidder wins");
                prop_assert!(price <= winning_bid, "second-price never above the winning bid");
                prop_assert!(price >= Money::from_units(reserve));
            }
            abcrm::ecp::auction::AuctionOutcome::Unsold => {
                prop_assert!(accepted.is_empty());
            }
        }
    }

    #[test]
    fn ratings_observe_is_monotone_and_bounded(
        observations in proptest::collection::vec((1u64..10, 1u64..10, -1.0f64..2.0), 0..50)
    ) {
        let mut m = RatingsMatrix::new();
        for (user, item, rating) in observations {
            let before = m.rating(ConsumerId(user), ItemId(item));
            m.observe(ConsumerId(user), ItemId(item), rating);
            let after = m.rating(ConsumerId(user), ItemId(item)).unwrap();
            prop_assert!((0.0..=1.0).contains(&after));
            if let Some(b) = before {
                prop_assert!(after >= b, "ratings keep the strongest signal");
            }
        }
        prop_assert!((0.0..=1.0).contains(&m.sparsity()));
    }

    #[test]
    fn wal_encode_decode_round_trips(
        records in proptest::collection::vec(
            ("[a-z]{1,6}", "[a-z0-9]{1,8}", 0i64..1000),
            0..30,
        )
    ) {
        let mut wal = Wal::new();
        for (table, key, value) in &records {
            wal.append(abcrm::simdb::LogRecord::Put {
                table: table.clone(),
                key: key.clone(),
                value: serde_json::json!(value),
            });
        }
        let decoded = Wal::decode(&wal.encode()).unwrap();
        prop_assert_eq!(decoded, wal);
    }

    #[test]
    fn store_recovery_equals_live_state(
        ops in proptest::collection::vec(
            (0usize..3, "[a-c]{1}", "[a-d]{1,3}", 0i64..100),
            0..40,
        )
    ) {
        let mut live = JsonStore::new("t");
        for (op, table, key, value) in &ops {
            live.create_table(table).unwrap();
            match op {
                0 | 1 => live.put(table, key, serde_json::json!(value)).unwrap(),
                _ => {
                    let _ = live.delete(table, key).unwrap();
                }
            }
        }
        let recovered = JsonStore::recover("t", b"", &live.wal_bytes()).unwrap();
        for table in live.table_names() {
            let live_rows: Vec<_> = live.scan(table).unwrap().collect();
            let rec_rows: Vec<_> = recovered.scan(table).unwrap().collect();
            prop_assert_eq!(live_rows, rec_rows);
        }
    }

    #[test]
    fn money_scale_is_monotone_and_bounded(cents in 0u64..1_000_000, f in 0.0f64..4.0) {
        let m = Money(cents);
        let scaled = m.scale(f);
        if f <= 1.0 {
            prop_assert!(scaled <= m + Money(1)); // rounding slack
        }
        prop_assert!(scaled.cents() < u64::MAX);
    }

    #[test]
    fn payload_encoded_len_matches_serialization(tokens in proptest::collection::vec(0u64..u64::MAX, 1..48)) {
        let value = arbitrary_json(&tokens);
        let payload = Payload::from(value.clone());
        let text = serde_json::to_string(&value).unwrap();
        // the cached length is exact, stable, and consistent with the
        // materialized encoding
        prop_assert_eq!(payload.encoded_len(), text.len());
        prop_assert_eq!(payload.encoded_len(), text.len());
        prop_assert_eq!(&payload.encoded()[..], text.as_bytes());
        prop_assert_eq!(payload.encoded_len(), text.len());
    }

    #[test]
    fn capsule_wire_size_is_stable_and_matches_encoding(
        tokens in proptest::collection::vec(0u64..u64::MAX, 1..48),
        agent_type in "[a-z-]{1,12}",
    ) {
        let state = arbitrary_json(&tokens);
        let encoded = serde_json::to_string(&state).unwrap();
        let capsule = AgentCapsule {
            id: AgentId(1),
            agent_type: agent_type.as_str().into(),
            state: state.into(),
            home: HostId(0),
            permit: None,
            trace: None,
            deadline: None,
        };
        // wire_size no longer re-serializes: repeated calls agree with
        // each other and with encoded length + header
        let first = capsule.wire_size();
        prop_assert_eq!(first, 64 + agent_type.len() + encoded.len());
        for _ in 0..3 {
            prop_assert_eq!(capsule.wire_size(), first);
        }
        // clones share the cached encoding and report the same size
        let copy = capsule.state.clone();
        prop_assert_eq!(copy.encoded_len(), capsule.state.encoded_len());
        prop_assert_eq!(copy.encoded_len(), encoded.len());
    }
}

use abcrm::agentsim::agent::AgentCapsule;
use abcrm::agentsim::ids::{AgentId, HostId};
use abcrm::agentsim::payload::Payload;

// --- fault-model properties -------------------------------------------

proptest! {
    /// The retry schedule is a pure function of the attempt number:
    /// deterministic, monotone non-decreasing, and capped.
    #[test]
    fn backoff_is_deterministic_monotone_and_capped(
        base in 0u64..10_000_000,
        cap in 0u64..20_000_000,
        retries in 0u32..10,
        attempts in 0u32..80,
    ) {
        let policy = abcrm::core::BackoffPolicy::new(base, cap, retries);
        let twin = abcrm::core::BackoffPolicy::new(base, cap, retries);
        let mut prev = 0u64;
        for attempt in 0..attempts {
            let delay = policy.delay_us(attempt);
            prop_assert_eq!(delay, twin.delay_us(attempt), "deterministic");
            prop_assert!(delay <= cap, "capped: {delay} > {cap}");
            prop_assert!(delay >= prev, "monotone: {delay} < {prev} at attempt {attempt}");
            prev = delay;
        }
        // the round-tripped policy replays the same schedule
        let back: abcrm::core::BackoffPolicy =
            serde_json::from_str(&serde_json::to_string(&policy).unwrap()).unwrap();
        prop_assert_eq!(back.delay_us(attempts), policy.delay_us(attempts));
    }

    /// `LinkSpec::lossy` always stores a probability: any input — NaN,
    /// infinities, negatives, huge values — clamps into `[0, 1]`.
    #[test]
    fn link_loss_always_clamps_to_unit_interval(raw in -1.0e12f64..1.0e12, scale in 0.0f64..4.0) {
        for input in [
            raw,
            raw * scale,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            -1.0,
            2.0,
            f64::MIN_POSITIVE,
        ] {
            let spec = abcrm::agentsim::net::LinkSpec::lan().lossy(input);
            prop_assert!(
                (0.0..=1.0).contains(&spec.loss),
                "loss {} escaped [0,1] for input {input}", spec.loss
            );
        }
    }
}

// --- overload-protection properties -----------------------------------

proptest! {
    /// The circuit breaker is a deterministic FSM: identical event
    /// sequences produce identical states (and a serde round trip mid-run
    /// changes nothing); an Open breaker refuses dispatch until its
    /// cooldown elapses; a failure never closes the circuit.
    #[test]
    fn breaker_fsm_is_deterministic_and_open_refuses(
        window in 1usize..12,
        min_samples in 1usize..8,
        cooldown_us in 1u64..10_000,
        ops in proptest::collection::vec((0u8..3, 0u64..5_000), 1..60),
    ) {
        use abcrm::core::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
        let config = BreakerConfig {
            window,
            failure_threshold: 0.5,
            min_samples,
            cooldown_us,
        };
        let mut breaker = CircuitBreaker::new(config);
        let mut twin = CircuitBreaker::new(config);
        let mut now = 0u64;
        for (op, dt) in ops {
            now += dt;
            match op {
                0 => {
                    let before = breaker.state();
                    let allowed = breaker.allow(now);
                    prop_assert_eq!(allowed, twin.allow(now), "deterministic allow");
                    if before == BreakerState::Open && dt < cooldown_us && allowed {
                        // an Open breaker may only admit once a full
                        // cooldown has passed since it opened; dt alone
                        // can't prove that, but an instant re-allow after
                        // opening must fail
                        prop_assert!(now >= cooldown_us, "open breaker admitted too early");
                    }
                }
                1 => {
                    breaker.record_success(now);
                    twin.record_success(now);
                }
                _ => {
                    let before = breaker.state();
                    breaker.record_failure(now);
                    twin.record_failure(now);
                    prop_assert!(
                        !(before != BreakerState::Closed
                            && breaker.state() == BreakerState::Closed),
                        "a failure never closes the circuit"
                    );
                }
            }
            prop_assert_eq!(breaker.state(), twin.state(), "twin states agree");
            // serde round trip preserves the whole FSM
            let back: CircuitBreaker =
                serde_json::from_str(&serde_json::to_string(&breaker).unwrap()).unwrap();
            prop_assert_eq!(&back, &breaker);
        }
    }

    /// Deadline arithmetic never panics, never goes negative, and the
    /// expiry predicate is exactly `now > deadline` (a zero-latency hop
    /// at the deadline instant still delivers).
    #[test]
    fn deadline_arithmetic_saturates_and_expiry_is_strict(
        deadline in 0u64..u64::MAX,
        now in 0u64..u64::MAX,
    ) {
        use abcrm::agentsim::clock::SimTime;
        use abcrm::agentsim::overload::{deadline_expired, remaining_us};
        prop_assert_eq!(remaining_us(None, SimTime(now)), None);
        prop_assert!(!deadline_expired(None, SimTime(now)));
        let d = Some(SimTime(deadline));
        let rem = remaining_us(d, SimTime(now)).expect("a set deadline always yields a budget");
        prop_assert_eq!(rem, deadline.saturating_sub(now), "saturating, never negative");
        prop_assert_eq!(deadline_expired(d, SimTime(now)), now > deadline, "strictly past");
        if deadline_expired(d, SimTime(now)) {
            prop_assert_eq!(rem, 0, "an expired deadline has no budget left");
        }
    }

    /// A deadline-clamped retry never outlives the remaining budget: the
    /// schedule either fits strictly inside it or refuses outright.
    #[test]
    fn clamped_retries_fit_inside_the_budget(
        base in 0u64..1_000_000,
        cap in 0u64..2_000_000,
        attempt in 0u32..70,
        bounded in 0u8..2,
        budget in 0u64..2_000_000,
    ) {
        let remaining = (bounded == 1).then_some(budget);
        let policy = abcrm::core::BackoffPolicy::new(base, cap, 3);
        match policy.delay_within(attempt, remaining) {
            Some(delay) => {
                prop_assert_eq!(delay, policy.delay_us(attempt), "clamping never stretches");
                if let Some(rem) = remaining {
                    prop_assert!(delay < rem, "a scheduled retry lands before the reply is due");
                }
            }
            None => {
                let rem = remaining.expect("only a finite budget can refuse");
                prop_assert!(policy.delay_us(attempt) >= rem, "refusal only when it cannot fit");
            }
        }
    }
}

// --- query-tier properties (ANN index, incremental maintenance) -------

proptest! {
    /// The incremental index maintenance path (Fig 4.5 learning applied
    /// as a [`ProfileDelta`], folded in with `apply_delta`) is
    /// indistinguishable from rebuilding the whole index, no matter how
    /// feedback events, wholesale profile replacements and removals
    /// interleave: same consumers, same flat vectors (exact `==`), same
    /// norm *bits*, same posting-list answers.
    #[test]
    fn incremental_index_matches_rebuild_after_interleavings(
        ops in proptest::collection::vec(
            (
                1u64..6,
                0u8..8,
                "[a-c]{1}",
                "[x-z]{1}",
                proptest::collection::vec(("[a-f]{1,3}", 0.01f64..3.0), 1..5),
            ),
            1..40,
        ),
        decay in 0.8f64..1.0,
    ) {
        use abcrm::core::index::ProfileIndex;
        use std::collections::BTreeMap;

        let learner = ProfileLearner::new(LearnerConfig {
            decay,
            max_terms: 8,
            ..LearnerConfig::default()
        });
        let mut mirror: BTreeMap<u64, Profile> = BTreeMap::new();
        let mut index = ProfileIndex::new();
        for (id, op, cat, sub, terms) in ops {
            match op {
                // rare: the consumer is forgotten outright
                0 => {
                    mirror.remove(&id);
                    index.remove(id);
                }
                // occasional wholesale replacement (profile import)
                1 => {
                    let mut p = Profile::new();
                    for (t, w) in &terms {
                        p.category_mut(&cat).sub_mut(&sub).add(t.clone(), *w);
                    }
                    index.update(id, &p);
                    mirror.insert(id, p);
                }
                // the common case: one feedback event through the
                // incremental O(changed terms) path
                _ => {
                    let profile = mirror.entry(id).or_default();
                    let event = BehaviorEvent::new(
                        BehaviorKind::Purchase,
                        CategoryPath::new(cat, sub),
                        TermVector::from_pairs(terms),
                    );
                    let delta = learner.apply_indexed(profile, &event);
                    index.apply_delta(id, &delta);
                }
            }
        }
        let rebuilt = ProfileIndex::rebuild(mirror.iter().map(|(id, p)| (*id, p)));
        prop_assert_eq!(index.len(), rebuilt.len(), "consumer count drifted");
        prop_assert_eq!(index.term_count(), rebuilt.term_count(), "posting lists drifted");
        for (id, fresh) in rebuilt.flats() {
            let live = index.flat(id).expect("incrementally maintained entry exists");
            prop_assert_eq!(&live.vector, &fresh.vector, "flat vector drifted for {}", id);
            prop_assert_eq!(
                live.norm.to_bits(),
                fresh.norm.to_bits(),
                "cached norm drifted for {}", id
            );
            prop_assert_eq!(
                index.candidates(&fresh.vector),
                rebuilt.candidates(&fresh.vector),
                "candidate pruning drifted for {}", id
            );
        }
    }

    /// The ANN path never *invents* neighbours: with arbitrary LSH
    /// parameters, every `(consumer, score)` it returns also appears in
    /// the exact scan with the same score; repeated queries are
    /// deterministic. And with structurally exhaustive parameters (one
    /// table, one bit, one probe — the probe flips the only bit, so the
    /// two buckets together cover every consumer) recall@k is exactly
    /// 1.0 under tie-tolerant matching.
    #[test]
    fn ann_neighbours_subset_of_exact_and_exhaustive_probing_has_full_recall(
        events in proptest::collection::vec((1u64..12, 0u64..6), 1..60),
        bits in 1u8..5,
        tables in 1u8..4,
        probes in 0u8..3,
        seed in 0u64..1_000,
    ) {
        use abcrm::core::store::RecommendStore;
        use abcrm::core::AnnConfig;
        use abcrm::ecp::merchandise::{Merchandise, Money};
        use std::collections::HashMap;

        const CATS: [(&str, &str); 3] =
            [("books", "programming"), ("music", "jazz"), ("garden", "tools")];
        let mut store = RecommendStore::new();
        for id in 1..=6u64 {
            let (cat, sub) = CATS[(id % 3) as usize];
            store.upsert_item(Merchandise {
                id: ItemId(id),
                name: format!("item{id}"),
                category: CategoryPath::new(cat, sub),
                terms: TermVector::from_pairs([
                    (format!("item{id}"), 1.0),
                    (sub.to_string(), 0.4),
                ]),
                list_price: Money::from_units(10 + id),
                seller: 1,
            });
        }
        for &(user, item) in &events {
            store.record_event(
                ConsumerId(user),
                ItemId(1 + item),
                BehaviorKind::Purchase,
            );
        }

        let exact_cfg = SimilarityConfig::default();
        let ann_cfg = SimilarityConfig {
            ann: Some(AnnConfig { bits, tables, probes, seed }),
            ..SimilarityConfig::default()
        };
        // one bit, one table, one probe: the probe flips the only bit,
        // so candidates = both buckets = every consumer
        let exhaustive_cfg = SimilarityConfig {
            ann: Some(AnnConfig { bits: 1, tables: 1, probes: 1, seed }),
            ..SimilarityConfig::default()
        };
        for user in 1..12u64 {
            let consumer = ConsumerId(user);
            let exact_all = store.nearest_neighbours(consumer, &exact_cfg, 1_000);
            let exact: HashMap<u64, f64> =
                exact_all.iter().map(|(c, s)| (c.0, *s)).collect();

            let approx = store.nearest_neighbours(consumer, &ann_cfg, 1_000);
            prop_assert_eq!(
                &approx,
                &store.nearest_neighbours(consumer, &ann_cfg, 1_000),
                "ANN query is not deterministic for {}", user
            );
            for (c, s) in &approx {
                let reference = exact.get(&c.0);
                prop_assert!(
                    reference.is_some(),
                    "ANN invented neighbour {} (score {}) absent from the exact scan", c, s
                );
                prop_assert!(
                    (reference.unwrap() - s).abs() < 1e-9,
                    "ANN score {} for {} disagrees with exact {}", s, c, reference.unwrap()
                );
            }

            // tie-tolerant recall@10: every exact top-10 neighbour is
            // either returned by id or substituted by an equal-score tie
            let k = 10;
            let exact_top = store.nearest_neighbours(consumer, &exact_cfg, k);
            let ann_top = store.nearest_neighbours(consumer, &exhaustive_cfg, k);
            for (c, s) in &exact_top {
                prop_assert!(
                    ann_top.iter().any(|(ac, asc)| ac == c || (asc - s).abs() < 1e-9),
                    "exhaustive probing missed {} (score {}) for {}", c, s, user
                );
            }
        }
    }
}

/// Message duplication and bounded reordering are *masked* faults: the
/// dedupe layer and per-pair FIFO clamp mean an idempotent query returns
/// byte-identical recommendations with and without them. (Each case runs
/// two full platforms, so this is a hand-rolled sweep rather than a
/// 128-case `proptest!` block.)
mod dup_reorder_idempotence {
    use abcrm::agentsim::chaos::ChaosPlan;
    use abcrm::core::agents::msg::ResponseBody;
    use abcrm::core::profile::ConsumerId;
    use abcrm::core::server::{listing, Platform};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn platform(seed: u64) -> Platform {
        Platform::builder(seed)
            .marketplaces(vec![
                vec![
                    listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                    listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
                ],
                vec![listing(
                    11,
                    "Systems Programming",
                    "books",
                    "programming",
                    40,
                    &[("rust", 0.8)],
                )],
            ])
            .mba_timeout_us(2_000_000)
            .build()
    }

    fn query_bytes(p: &mut Platform) -> Vec<String> {
        p.login(ConsumerId(1));
        p.query(ConsumerId(1), &["rust"], 5)
            .iter()
            .map(|r| {
                assert!(
                    matches!(
                        r,
                        ResponseBody::Recommendations {
                            degraded: false,
                            ..
                        }
                    ),
                    "dup/reorder alone must not degrade a reply: {r:?}"
                );
                serde_json::to_string(r).unwrap()
            })
            .collect()
    }

    #[test]
    fn dup_and_reorder_never_change_recommendation_bytes() {
        let mut params = StdRng::seed_from_u64(0xd0_0b1e);
        for case in 0..12u64 {
            let seed = params.gen_range(0u64..10_000);
            let dup = params.gen_range(0.0..1.0);
            let reorder = params.gen_range(0.0..1.0);
            let jitter = params.gen_range(1u64..5_000);
            let clean = query_bytes(&mut platform(seed));
            let mut mangled_world = platform(seed);
            // dup/reorder knobs only — no loss, no partitions, no crashes
            mangled_world.install_chaos(&ChaosPlan {
                seed,
                dup_probability: dup,
                reorder_probability: reorder,
                max_jitter_us: jitter,
                events: Vec::new(),
            });
            let mangled = query_bytes(&mut mangled_world);
            assert_eq!(
                clean, mangled,
                "case {case}: seed={seed} dup={dup} reorder={reorder} jitter={jitter}us \
                 changed the reply bytes"
            );
        }
    }
}

/// Deterministic arbitrary JSON tree from a token stream: each token picks
/// a node shape (scalars, strings with escapes, arrays, objects), so the
/// generated values cover every encoder arm without needing a recursive
/// strategy.
fn arbitrary_json(tokens: &[u64]) -> serde_json::Value {
    fn build(tokens: &mut std::slice::Iter<'_, u64>, depth: u32) -> serde_json::Value {
        let Some(&t) = tokens.next() else {
            return serde_json::Value::Null;
        };
        match t % if depth == 0 { 7 } else { 9 } {
            0 => serde_json::json!(null),
            1 => serde_json::json!(t % 2 == 0),
            2 => serde_json::json!(t),
            3 => serde_json::json!(-((t % 1_000_000) as i64)),
            4 => serde_json::json!((t as f64) / 7.0 - 1e15),
            5 => serde_json::json!((t % 1000) as f64),
            6 => {
                // strings exercising escapes, control chars and unicode
                let palette = ['a', '"', '\\', '\n', '\t', '\u{01}', 'ü', '✓'];
                let s: String = (0..t % 12)
                    .map(|i| palette[((t >> (i % 8)) % 8) as usize])
                    .collect();
                serde_json::json!(s)
            }
            7 => serde_json::Value::Array((0..t % 4).map(|_| build(tokens, depth - 1)).collect()),
            _ => {
                let mut map = serde_json::Map::new();
                for i in 0..t % 4 {
                    map.insert(format!("k{i}"), build(tokens, depth - 1));
                }
                serde_json::Value::Object(map)
            }
        }
    }
    build(&mut tokens.iter(), 3)
}

// --- durability / WAL replay properties -------------------------------

use abcrm::agentsim::durable::{DurabilityConfig, DurableStore, IntentState};

/// One durability op per tuple: `(kind, agent, intent, value)`.
fn durable_ops_strategy() -> impl Strategy<Value = Vec<(u8, u64, u64, i64)>> {
    proptest::collection::vec((0u8..8, 0u64..6, 0u64..24, 0i64..1000), 1..60)
}

fn apply_durable_op(store: &mut DurableStore, op: (u8, u64, u64, i64)) {
    let (kind, agent, intent, value) = op;
    let v = serde_json::json!({ "v": value });
    match kind {
        0 | 1 => store.put_capsule(agent, v, value % 2 == 0).unwrap(),
        2 => store.remove_capsule(agent).unwrap(),
        3 => store.log_intent(intent, v).unwrap(),
        4 => store.log_commit(intent, v).unwrap(),
        5 => store.log_abort(intent, format!("abort {value}")).unwrap(),
        6 => store.log_delta(agent, v).unwrap(),
        _ => store.checkpoint(Vec::new()).unwrap(),
    }
}

proptest! {
    /// Recovery (snapshot + WAL replay) materializes exactly the live
    /// state, for any interleaving of capsule journals, removals,
    /// two-phase purchase records, profile deltas and checkpoints — and
    /// it is a pure function: recovering twice from the same bytes gives
    /// the same state.
    #[test]
    fn durable_replay_equals_live_state_for_any_interleaving(
        ops in durable_ops_strategy(),
        sync_every in 1usize..5,
    ) {
        let mut store = DurableStore::new(DurabilityConfig {
            checkpoint_every: 0,
            sync_every,
        });
        for op in ops {
            apply_durable_op(&mut store, op);
        }
        let first =
            DurableStore::replay_bytes(store.snapshot_bytes(), &store.wal_bytes()).unwrap();
        prop_assert_eq!(&first.state, store.state(), "recovery diverged from live state");
        let second =
            DurableStore::replay_bytes(store.snapshot_bytes(), &store.wal_bytes()).unwrap();
        prop_assert_eq!(first.state, second.state, "recovery is not a pure function");
    }

    /// A log torn at *any* record boundary still recovers (the fsync
    /// model only ever loses whole-record suffixes), and growing the
    /// surviving prefix never un-commits a purchase: once an intent is
    /// `Committed` at prefix `n`, it is `Committed` at every longer
    /// prefix.
    #[test]
    fn any_torn_log_prefix_recovers_and_never_loses_a_commit(
        ops in durable_ops_strategy(),
    ) {
        let mut store = DurableStore::new(DurabilityConfig {
            checkpoint_every: 0,
            sync_every: 1,
        });
        for op in ops {
            apply_durable_op(&mut store, op);
        }
        let snapshot = store.snapshot_bytes().to_vec();
        let full = Wal::decode(&store.wal_bytes()).unwrap();
        let mut prev_committed: Vec<u64> = Vec::new();
        for n in 0..=full.len() {
            let mut prefix = full.clone();
            prefix.retain_prefix(n);
            let rec = DurableStore::replay_bytes(&snapshot, &prefix.encode())
                .unwrap_or_else(|e| panic!("prefix {n} failed to recover: {e:?}"));
            prop_assert_eq!(rec.replayed, n, "replayed record count at prefix {}", n);
            let committed: Vec<u64> = rec
                .state
                .intents
                .iter()
                .filter(|(_, s)| matches!(s, IntentState::Committed(_)))
                .map(|(id, _)| *id)
                .collect();
            for id in &prev_committed {
                prop_assert!(
                    committed.contains(id),
                    "intent {} committed at prefix {} was lost at prefix {}", id, n - 1, n
                );
            }
            prev_committed = committed;
        }
    }

    /// Crashing loses only the unsynced suffix: every *forced* record
    /// (intent, commit, abort — the two-phase purchase protocol) survives
    /// any crash, committed purchases stay committed, and crashing twice
    /// without new writes changes nothing.
    #[test]
    fn crash_preserves_every_forced_purchase_record(
        ops in durable_ops_strategy(),
        sync_every in 1usize..6,
    ) {
        let mut store = DurableStore::new(DurabilityConfig {
            checkpoint_every: 0,
            sync_every,
        });
        let mut forced_intents = std::collections::BTreeSet::new();
        let mut forced_commits = std::collections::BTreeSet::new();
        for op in ops {
            match op.0 {
                3 | 5 => {
                    forced_intents.insert(op.2);
                }
                4 => {
                    forced_intents.insert(op.2);
                    forced_commits.insert(op.2);
                }
                _ => {}
            }
            apply_durable_op(&mut store, op);
        }
        store.crash().unwrap();
        for id in &forced_commits {
            prop_assert!(
                matches!(store.state().intents.get(id), Some(IntentState::Committed(_))),
                "commit for intent {} was lost in the crash", id
            );
        }
        for id in &forced_intents {
            prop_assert!(
                store.state().intents.contains_key(id),
                "forced intent {} vanished in the crash", id
            );
        }
        let after = store.state().clone();
        store.crash().unwrap();
        prop_assert_eq!(store.state(), &after, "crash is not idempotent");
    }
}
