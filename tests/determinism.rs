//! Determinism and serde robustness of the full platform.

use abcrm::core::agents::msg::ResponseBody;
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::{listing, Platform};

fn run_scenario(seed: u64) -> (Vec<String>, u64, String) {
    let mut p = Platform::builder(seed)
        .marketplaces(vec![
            vec![
                listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
            ],
            vec![listing(
                11,
                "Jazz LP",
                "music",
                "jazz",
                20,
                &[("jazz", 1.0)],
            )],
        ])
        .build();
    for c in 1..=3u64 {
        p.login(ConsumerId(c));
        p.query(ConsumerId(c), &["rust"], 5);
    }
    p.buy(
        ConsumerId(1),
        abcrm::ecp::merchandise::ItemId(1),
        0,
        abcrm::core::agents::msg::BuyMode::Direct,
    );
    let labels = p
        .world()
        .trace()
        .labels()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let delivered = p.world().metrics().messages_delivered;
    let pa = serde_json::to_string(&agentsim::agent::Agent::snapshot(&p.pa_state())).unwrap();
    (labels, delivered, pa)
}

#[test]
fn identical_seeds_produce_identical_runs() {
    let a = run_scenario(77);
    let b = run_scenario(77);
    assert_eq!(a.0, b.0, "trace labels must match exactly");
    assert_eq!(a.1, b.1, "message counts must match");
    assert_eq!(a.2, b.2, "final PA state must be byte-identical");
}

#[test]
fn different_seeds_still_complete_all_workflows() {
    for seed in [1, 99, 12345] {
        let (labels, delivered, _) = run_scenario(seed);
        assert!(delivered > 0);
        assert!(labels.iter().any(|l| l.starts_with("fig4.2/step15")));
        assert!(labels.iter().any(|l| l.starts_with("fig4.3/step14")));
    }
}

#[test]
fn every_platform_agent_survives_snapshot_round_trip() {
    let mut p = Platform::builder(5)
        .marketplaces(vec![vec![listing(
            1,
            "Rust Book",
            "books",
            "programming",
            30,
            &[("rust", 1.0)],
        )]])
        .build();
    p.login(ConsumerId(1));
    p.query(ConsumerId(1), &["rust"], 5);
    // snapshot every live agent and re-parse through the registry types
    let mut checked = 0;
    for host in p.world().hosts() {
        for agent in p.world().agents_on(host) {
            let snapshot = p.world().snapshot_of(agent).unwrap();
            // serialized form must reach a fixpoint (floats settle after
            // one round trip; thereafter text is stable)
            let text = serde_json::to_string(&snapshot).unwrap();
            let back: serde_json::Value = serde_json::from_str(&text).unwrap();
            let text2 = serde_json::to_string(&back).unwrap();
            let back2: serde_json::Value = serde_json::from_str(&text2).unwrap();
            let text3 = serde_json::to_string(&back2).unwrap();
            assert_eq!(text2, text3, "agent {agent} state must serialize stably");
            checked += 1;
        }
    }
    assert!(
        checked >= 6,
        "coordinator, market, seller, bsma, pa, httpa, bra: {checked}"
    );
}

#[test]
fn query_response_is_reproducible_across_platform_rebuilds() {
    fn offers_of(seed: u64) -> Vec<String> {
        let mut p = Platform::builder(seed)
            .marketplaces(vec![vec![
                listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                listing(
                    2,
                    "Rust Atlas",
                    "books",
                    "programming",
                    28,
                    &[("rust", 0.9)],
                ),
            ]])
            .build();
        p.login(ConsumerId(1));
        let responses = p.query(ConsumerId(1), &["rust"], 5);
        match &responses[0] {
            ResponseBody::Recommendations { offers, .. } => {
                offers.iter().map(|o| o.item.name.clone()).collect()
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(offers_of(9), offers_of(9));
}
