//! Crash-point recovery matrix: durable platforms killed at every named
//! stage of the Fig 4.3 buy workflow, then restarted and driven to
//! quiescence (experiment E14).
//!
//! Each stage crashes the Buyer Agent Server host at a specific point of
//! the two-phase purchase protocol and asserts the two invariants the
//! durability layer promises:
//!
//! * **exactly-once observable purchase effects** — the marketplace's
//!   `units_sold` equals the number of receipts the consumer got, no
//!   matter how many retries or replays the crash provokes;
//! * **completion or clean abort** — the consumer always receives either
//!   a `Receipt` or an explicit `Error` naming the abort; silence and
//!   double-receipts are both failures.
//!
//! Crash points are targeted with a probe run: the same seed is first
//! run crash-free to record the sim-time of each workflow marker, then
//! re-run with `run_until(marker)` + `crash_host` + `restart_host`.
//! Determinism makes the two runs identical up to the crash.
//!
//! Stages covered (with the marker each anchors to):
//!
//! | stage                     | anchor                      | recovery path              |
//! |---------------------------|-----------------------------|----------------------------|
//! | pre-migration             | step04 profile request      | BRA re-requests profile    |
//! | at-marketplace            | step08 BRA deactivated      | MBA home-retry + watchdog  |
//! | post-intent / pre-commit  | step08 + lossy dispatch     | ledger "unknown" → retry   |
//! | post-commit / pre-return  | step09 + lossy return       | ledger "committed" → receipt |
//! | mid-profile-update        | after receipt               | PA delta replay            |

use abcrm::core::agents::msg::{BuyMode, ConsumerTask, ResponseBody};
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::{listing, Platform, ShardedPlatform};
use abcrm::core::BackoffPolicy;
use agentsim::clock::{SimDuration, SimTime};
use agentsim::durable::DurabilityConfig;
use agentsim::net::LinkSpec;
use ecp::merchandise::ItemId;

const CONSUMER: ConsumerId = ConsumerId(1);

fn listings() -> Vec<Vec<ecp::protocol::Listing>> {
    vec![vec![
        listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
        listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
    ]]
}

fn durable_platform_with(seed: u64, retry: BackoffPolicy) -> Platform {
    Platform::builder(seed)
        .marketplaces(listings())
        .mba_timeout_us(2_000_000)
        .bra_retry(retry)
        .durability(DurabilityConfig::default())
        .build()
}

fn durable_platform(seed: u64) -> Platform {
    durable_platform_with(seed, BackoffPolicy::new(200_000, 1_600_000, 3))
}

fn buy_task(p: &Platform) -> ConsumerTask {
    ConsumerTask::Buy {
        item: ItemId(1),
        market: p.markets()[0],
        mode: BuyMode::Direct,
    }
}

/// Units sold of `item` at marketplace 0 — the externally observable
/// purchase effect the exactly-once invariant is about.
fn units_sold(p: &Platform, item: ItemId) -> u32 {
    let snapshot = p
        .world()
        .snapshot_of(p.markets()[0].agent)
        .expect("marketplace active");
    let market: ecp::MarketplaceAgent = serde_json::from_value(snapshot).expect("state parses");
    market.units_sold(item)
}

/// Probe run: drive the buy crash-free and report the sim-time of the
/// first trace event whose label contains `marker`.
fn probe_marker_with(seed: u64, retry: BackoffPolicy, marker: &str) -> SimTime {
    let mut p = durable_platform_with(seed, retry);
    p.login(CONSUMER);
    let task = buy_task(&p);
    p.submit_task(CONSUMER, task);
    let wave = p.run_and_drain();
    assert!(
        wave.iter()
            .any(|(_, r)| matches!(r, ResponseBody::Receipt { .. })),
        "probe run must complete cleanly: {wave:?}"
    );
    p.world()
        .trace()
        .events()
        .iter()
        .find(|e| e.label.contains(marker))
        .unwrap_or_else(|| panic!("marker {marker:?} not in probe trace"))
        .at
}

fn probe_marker(seed: u64, marker: &str) -> SimTime {
    probe_marker_with(seed, BackoffPolicy::new(200_000, 1_600_000, 3), marker)
}

/// The matrix invariant: exactly one terminal reply, and observable
/// sales equal to the number of receipts.
fn assert_exactly_once(p: &Platform, wave: &[(ConsumerId, ResponseBody)], stage: &str) {
    let receipts = wave
        .iter()
        .filter(|(_, r)| matches!(r, ResponseBody::Receipt { .. }))
        .count();
    let errors = wave
        .iter()
        .filter(|(_, r)| matches!(r, ResponseBody::Error(_)))
        .count();
    assert_eq!(
        receipts + errors,
        1,
        "{stage}: exactly one terminal reply expected, got {wave:?}"
    );
    assert_eq!(
        units_sold(p, ItemId(1)),
        receipts as u32,
        "{stage}: marketplace sales must match receipts (exactly-once)"
    );
}

// ---------------------------------------------------------------------
// stage 1: crash pre-migration (BRA waiting for the PA profile)
// ---------------------------------------------------------------------

#[test]
fn stage_pre_migration_crash_recovers_and_completes() {
    let seed = 101;
    let at = probe_marker(seed, "fig4.3/step04");
    let mut p = durable_platform(seed);
    p.login(CONSUMER);
    let task = buy_task(&p);
    p.submit_task(CONSUMER, task);
    p.world_mut().run_until(at + SimDuration::from_micros(1));
    let host = p.buyer_host();
    p.world_mut().crash_host(host).unwrap();
    p.world_mut().run_for(SimDuration::from_micros(100));
    p.world_mut().restart_host(host).unwrap();
    let wave = p.run_and_drain();
    assert_exactly_once(&p, &wave, "pre-migration");
    assert!(
        wave.iter()
            .any(|(_, r)| matches!(r, ResponseBody::Receipt { .. })),
        "a pre-migration crash must still complete the buy: {wave:?}"
    );
    let m = p.world().metrics();
    assert_eq!(m.hosts_recovered, 1);
    assert!(
        m.agents_recovered >= 4,
        "bsma + pa + httpa + bra restored: {m:?}"
    );
    assert!(m.wal_records_replayed > 0);
    // the BRA re-requested the profile rather than stalling
    assert!(p
        .world()
        .trace()
        .labels()
        .iter()
        .any(|l| l.contains("re-requesting profile")));
}

// ---------------------------------------------------------------------
// stage 2: crash at-marketplace (MBA away, BRA capsule in the store)
// ---------------------------------------------------------------------

#[test]
fn stage_at_marketplace_crash_mba_retries_home_until_restart() {
    let seed = 202;
    let dispatched = probe_marker(seed, "fig4.3/step08");
    let mut p = durable_platform(seed);
    p.login(CONSUMER);
    let task = buy_task(&p);
    p.submit_task(CONSUMER, task);
    // the MBA is in flight to the marketplace; the BRA is deactivated
    p.world_mut()
        .run_until(dispatched + SimDuration::from_micros(50));
    assert_eq!(p.world().metrics().deactivations, 1, "bra parked");
    let host = p.buyer_host();
    p.world_mut().crash_host(host).unwrap();
    // stay down long enough that the MBA's first return attempt finds
    // the host dead and has to back off
    p.world_mut().run_for(SimDuration::from_micros(500));
    p.world_mut().restart_host(host).unwrap();
    let wave = p.run_and_drain();
    assert_exactly_once(&p, &wave, "at-marketplace");
    assert!(
        wave.iter()
            .any(|(_, r)| matches!(r, ResponseBody::Receipt { .. })),
        "the roaming mba must deliver its result after the restart: {wave:?}"
    );
    let m = p.world().metrics();
    assert_eq!(m.hosts_recovered, 1);
    assert_eq!(m.purchases_committed, 1);
    assert_eq!(m.intents_logged, 1);
}

// ---------------------------------------------------------------------
// stage 3: crash post-intent / pre-commit (MBA lost before the market,
// ledger shows no commit → safe retry with the SAME intent)
// ---------------------------------------------------------------------

#[test]
fn stage_post_intent_crash_resolves_via_ledger_and_retries_same_intent() {
    let seed = 303;
    let dispatched = probe_marker(seed, "fig4.3/step08");
    let mut p = durable_platform(seed);
    p.login(CONSUMER);
    let market_host = p.markets()[0].host;
    let buyer_host = p.buyer_host();
    // the dispatch link eats the MBA: the intent is journalled but no
    // purchase ever happens at the marketplace
    p.world_mut().topology_mut().set_link_symmetric(
        buyer_host,
        market_host,
        LinkSpec::lan().lossy(1.0),
    );
    let task = buy_task(&p);
    p.submit_task(CONSUMER, task);
    p.world_mut()
        .run_until(dispatched + SimDuration::from_micros(50));
    p.world_mut().crash_host(buyer_host).unwrap();
    p.world_mut().run_for(SimDuration::from_micros(500));
    p.world_mut().restart_host(buyer_host).unwrap();
    // the outage that killed the MBA heals; the retry can go through
    p.world_mut()
        .topology_mut()
        .set_link_symmetric(buyer_host, market_host, LinkSpec::lan());
    let wave = p.run_and_drain();
    assert_exactly_once(&p, &wave, "post-intent");
    assert!(
        wave.iter()
            .any(|(_, r)| matches!(r, ResponseBody::Receipt { .. })),
        "ledger-unknown must lead to a retried, completed buy: {wave:?}"
    );
    let m = p.world().metrics();
    assert_eq!(
        m.intents_logged, 1,
        "the retry must reuse the journalled intent, not mint a second: {m:?}"
    );
    assert_eq!(m.purchases_committed, 1);
    assert_eq!(m.purchases_aborted, 0);
    assert!(m.retries >= 1, "the lost mba must have been retried: {m:?}");
    assert_eq!(
        m.intents_resolved_by_ledger, 0,
        "the commit came from the real second trip, not the ledger"
    );
}

#[test]
fn stage_post_intent_without_retries_aborts_cleanly() {
    let seed = 313;
    let retry = BackoffPolicy::none();
    let dispatched = probe_marker_with(seed, retry, "fig4.3/step08");
    let mut p = durable_platform_with(seed, retry);
    p.login(CONSUMER);
    let market_host = p.markets()[0].host;
    let buyer_host = p.buyer_host();
    p.world_mut().topology_mut().set_link_symmetric(
        buyer_host,
        market_host,
        LinkSpec::lan().lossy(1.0),
    );
    let task = buy_task(&p);
    p.submit_task(CONSUMER, task);
    p.world_mut()
        .run_until(dispatched + SimDuration::from_micros(50));
    p.world_mut().crash_host(buyer_host).unwrap();
    p.world_mut().run_for(SimDuration::from_micros(500));
    p.world_mut().restart_host(buyer_host).unwrap();
    p.world_mut()
        .topology_mut()
        .set_link_symmetric(buyer_host, market_host, LinkSpec::lan());
    let wave = p.run_and_drain();
    assert_exactly_once(&p, &wave, "post-intent abort");
    match &wave[0].1 {
        ResponseBody::Error(e) => assert!(
            e.contains("aborted") && e.contains("ledger"),
            "the abort must name the ledger check: {e}"
        ),
        other => panic!("retries exhausted must abort explicitly, got {other:?}"),
    }
    let m = p.world().metrics();
    assert_eq!(m.purchases_aborted, 1, "{m:?}");
    assert_eq!(m.purchases_committed, 0);
    assert_eq!(units_sold(&p, ItemId(1)), 0, "nothing was ever sold");
}

// ---------------------------------------------------------------------
// stage 4: crash post-commit / pre-return (sale recorded, MBA dies on
// the way home, ledger answers "committed" → receipt without re-buying)
// ---------------------------------------------------------------------

#[test]
fn stage_post_commit_crash_recovers_receipt_from_ledger() {
    let seed = 404;
    let at_market = probe_marker(seed, "fig4.3/step09");
    let mut p = durable_platform(seed);
    p.login(CONSUMER);
    let market_host = p.markets()[0].host;
    let buyer_host = p.buyer_host();
    let task = buy_task(&p);
    p.submit_task(CONSUMER, task);
    // let the MBA arrive and execute the buy, then cut the return path:
    // the sale is recorded at the marketplace but the MBA never gets home
    p.world_mut().run_until(at_market);
    p.world_mut().topology_mut().set_link_symmetric(
        buyer_host,
        market_host,
        LinkSpec::lan().lossy(1.0),
    );
    // crash the buyer host while the outcome is in doubt
    p.world_mut().run_for(SimDuration::from_micros(100_000));
    p.world_mut().crash_host(buyer_host).unwrap();
    p.world_mut().run_for(SimDuration::from_micros(50_000));
    p.world_mut().restart_host(buyer_host).unwrap();
    p.world_mut()
        .topology_mut()
        .set_link_symmetric(buyer_host, market_host, LinkSpec::lan());
    let wave = p.run_and_drain();
    assert_exactly_once(&p, &wave, "post-commit");
    match &wave[0].1 {
        ResponseBody::Receipt { item, channel, .. } => {
            assert_eq!(item.id, ItemId(1));
            assert!(
                channel.contains("ledger"),
                "the receipt must be marked as ledger-recovered: {channel}"
            );
        }
        other => panic!("a committed sale must produce a receipt, got {other:?}"),
    }
    assert_eq!(
        units_sold(&p, ItemId(1)),
        1,
        "the ledger answer must prevent a second purchase"
    );
    let m = p.world().metrics();
    assert_eq!(m.intents_resolved_by_ledger, 1, "{m:?}");
    assert_eq!(m.intents_logged, 1);
    assert_eq!(
        m.purchases_committed, 1,
        "the ledger resolution journals the commit exactly once"
    );
}

// ---------------------------------------------------------------------
// stage 5: crash mid/after profile update (receipt delivered, learned
// profile must survive via delta replay)
// ---------------------------------------------------------------------

#[test]
fn stage_profile_update_crash_replays_deltas() {
    let seed = 505;
    let mut p = durable_platform(seed);
    p.login(CONSUMER);
    let task = buy_task(&p);
    p.submit_task(CONSUMER, task);
    let wave = p.run_and_drain();
    assert_exactly_once(&p, &wave, "clean run");
    let interest_before = p
        .pa_state()
        .store()
        .profile(CONSUMER)
        .expect("profile learned")
        .total_interest();
    assert!(interest_before > 0.0);
    assert_eq!(p.pa_state().userdb().transaction_count(), 1);

    let host = p.buyer_host();
    p.world_mut().crash_host(host).unwrap();
    p.world_mut().run_for(SimDuration::from_micros(100));
    p.world_mut().restart_host(host).unwrap();
    p.world_mut().run_until_idle();

    // the learned profile came back from the journalled deltas
    let pa = p.pa_state();
    let interest_after = pa
        .store()
        .profile(CONSUMER)
        .expect("profile survives the crash")
        .total_interest();
    assert!(
        (interest_after - interest_before).abs() < 1e-9,
        "replayed profile must match the learned one: {interest_before} vs {interest_after}"
    );
    assert_eq!(
        pa.userdb().transaction_count(),
        1,
        "the transaction record is replayed exactly once"
    );
    assert_eq!(units_sold(&p, ItemId(1)), 1, "no replay-driven re-buy");
    let m = p.world().metrics();
    assert!(m.profile_deltas_replayed >= 1, "{m:?}");
    assert_eq!(m.purchases_committed, 1);

    // the platform is fully operational after recovery: a second,
    // different buy completes and learns on top of the replayed profile
    let wave = {
        p.submit_task(
            CONSUMER,
            ConsumerTask::Buy {
                item: ItemId(2),
                market: p.markets()[0],
                mode: BuyMode::Direct,
            },
        );
        p.run_and_drain()
    };
    assert!(
        wave.iter()
            .any(|(_, r)| matches!(r, ResponseBody::Receipt { .. })),
        "post-recovery buy must work: {wave:?}"
    );
    assert_eq!(units_sold(&p, ItemId(2)), 1);
    assert_eq!(p.pa_state().userdb().transaction_count(), 2);
}

// ---------------------------------------------------------------------
// dead-agent leak regression: capsules stranded by a crash must be
// restored, and the stable store must return to its quiescent baseline
// ---------------------------------------------------------------------

#[test]
fn crashed_capsules_are_restored_and_store_returns_to_baseline() {
    let seed = 606;
    let dispatched = probe_marker(seed, "fig4.3/step08");
    let mut p = durable_platform(seed);
    p.login(CONSUMER);
    let host = p.buyer_host();
    let baseline_bytes = p.world().stored_bytes(host);
    let baseline_count = p.world().stored_count(host);
    let task = buy_task(&p);
    p.submit_task(CONSUMER, task);
    p.world_mut()
        .run_until(dispatched + SimDuration::from_micros(50));
    // the BRA capsule is in the stable store right now; the crash strands
    // it and the recovery pass must bring it back (pre-durability this
    // was the dead-agent leak: the capsule was unreachable forever)
    assert!(p.world().stored_count(host) > baseline_count);
    p.world_mut().crash_host(host).unwrap();
    p.world_mut().run_for(SimDuration::from_micros(500));
    p.world_mut().restart_host(host).unwrap();
    let wave = p.run_and_drain();
    assert_exactly_once(&p, &wave, "leak regression");
    // at quiescence every recovered capsule has been re-activated or
    // consumed: the store is back to its pre-task baseline
    assert_eq!(
        p.world().stored_count(host),
        baseline_count,
        "no capsule may be stranded in the store after recovery"
    );
    assert_eq!(
        p.world().stored_bytes(host),
        baseline_bytes,
        "stored bytes must return to baseline after recovery"
    );
    // and the restored BRA still serves: a follow-up query answers
    let responses = p.query(CONSUMER, &["rust"], 5);
    assert!(
        matches!(&responses[0], ResponseBody::Recommendations { .. }),
        "recovered session must keep serving: {responses:?}"
    );
}

// ---------------------------------------------------------------------
// crash sweep: deterministic crash points swept across the whole buy
// window, every one exactly-once
// ---------------------------------------------------------------------

#[test]
fn crash_sweep_over_the_buy_window_is_exactly_once_everywhere() {
    for seed in 0..16u64 {
        // the ingress hops (HttpA → BSMA → BRA) are outside the durable
        // protocol — a request that never reached a BRA has no intent to
        // recover — so the sweep starts at the first BRA-owned stage
        let from = probe_marker(seed, "fig4.3/step04").as_micros();
        let to = probe_marker(seed, "fig4.3/step14").as_micros();
        let crash_at = from + (seed * 97) % (to - from + 1);
        let down_for = 200 + (seed * 53) % 800;

        let mut p = durable_platform(seed);
        p.login(CONSUMER);
        let task = buy_task(&p);
        p.submit_task(CONSUMER, task);
        p.world_mut().run_until(SimTime(crash_at));
        let host = p.buyer_host();
        p.world_mut().crash_host(host).unwrap();
        p.world_mut().run_for(SimDuration::from_micros(down_for));
        p.world_mut().restart_host(host).unwrap();
        let wave = p.run_and_drain();
        assert_exactly_once(&p, &wave, &format!("sweep seed {seed} crash@{crash_at}us"));
        let m = p.world().metrics();
        assert_eq!(m.hosts_recovered, 1, "seed {seed}: {m:?}");
        assert!(
            m.purchases_committed <= 1,
            "seed {seed}: at most one commit ever: {m:?}"
        );
    }
}

// ---------------------------------------------------------------------
// durability off: byte-identical traces, zero counters
// ---------------------------------------------------------------------

#[test]
fn durability_off_keeps_traces_byte_identical_and_counters_zero() {
    let seed = 707;
    let build_plain = || {
        Platform::builder(seed)
            .marketplaces(listings())
            .mba_timeout_us(2_000_000)
            .bra_retry(BackoffPolicy::new(200_000, 1_600_000, 3))
            .build()
    };
    let mut plain = build_plain();
    let mut durable = durable_platform(seed);

    for p in [&mut plain, &mut durable] {
        p.login(CONSUMER);
        let task = buy_task(p);
        p.submit_task(CONSUMER, task);
        let wave = p.run_and_drain();
        assert!(wave
            .iter()
            .any(|(_, r)| matches!(r, ResponseBody::Receipt { .. })));
        p.query(CONSUMER, &["rust"], 5);
    }

    // identical trace, event for event (journaling adds no trace noise)
    assert_eq!(
        plain.world().trace().labels(),
        durable.world().trace().labels(),
        "durability must not perturb the workflow trace"
    );
    // the plain platform has every durability counter at zero…
    let pm = plain.world().metrics().clone();
    assert_eq!(pm.wal_records_appended, 0);
    assert_eq!(pm.wal_records_replayed, 0);
    assert_eq!(pm.checkpoints, 0);
    assert_eq!(pm.hosts_recovered, 0);
    assert_eq!(pm.agents_recovered, 0);
    assert_eq!(pm.intents_logged, 0);
    assert_eq!(pm.purchases_committed, 0);
    assert_eq!(pm.purchases_aborted, 0);
    assert_eq!(pm.intents_resolved_by_ledger, 0);
    assert_eq!(pm.profile_deltas_logged, 0);
    assert_eq!(pm.profile_deltas_replayed, 0);
    // …and the durable run matches it on every legacy counter. The one
    // sanctioned difference besides the counters: a durable buy's MBA
    // carries its intent id on the wire, so migrated capsules are a few
    // bytes larger.
    let mut dm = durable.world().metrics().clone();
    dm.wal_records_appended = 0;
    dm.checkpoints = 0;
    dm.intents_logged = 0;
    dm.purchases_committed = 0;
    dm.profile_deltas_logged = 0;
    assert!(
        dm.migration_bytes >= pm.migration_bytes,
        "the intent id only ever adds bytes"
    );
    dm.migration_bytes = pm.migration_bytes;
    assert_eq!(pm, dm, "durability must be invisible outside its counters");
}

// ---------------------------------------------------------------------
// checkpointing bounds replay
// ---------------------------------------------------------------------

#[test]
fn checkpoints_bound_replay_cost() {
    let run = |checkpoint_every: usize| {
        let mut p = Platform::builder(808)
            .marketplaces(listings())
            .mba_timeout_us(2_000_000)
            .bra_retry(BackoffPolicy::new(200_000, 1_600_000, 3))
            .durability(DurabilityConfig {
                checkpoint_every,
                sync_every: 1,
            })
            .build();
        p.login(CONSUMER);
        for _ in 0..6 {
            p.query(CONSUMER, &["rust"], 5);
        }
        let host = p.buyer_host();
        p.world_mut().crash_host(host).unwrap();
        p.world_mut().run_for(SimDuration::from_micros(100));
        p.world_mut().restart_host(host).unwrap();
        p.world_mut().run_until_idle();
        let m = p.world().metrics().clone();
        // recovered platform still serves
        let responses = p.query(CONSUMER, &["rust"], 5);
        assert!(matches!(
            &responses[0],
            ResponseBody::Recommendations { .. }
        ));
        m
    };
    let without = run(0);
    let with = run(32);
    assert_eq!(without.checkpoints, 0);
    assert!(with.checkpoints >= 1, "{with:?}");
    assert!(
        with.wal_records_replayed < without.wal_records_replayed,
        "checkpointing must shrink the replayed log: {} vs {}",
        with.wal_records_replayed,
        without.wal_records_replayed
    );
}

// ---------------------------------------------------------------------
// sharded platforms: the same crash-and-recover path at 1, 2 and 4 shards
// ---------------------------------------------------------------------

#[test]
fn sharded_buy_survives_buyer_host_crash_at_1_2_4_shards() {
    for shards in [1usize, 2, 4] {
        let seed = 900 + shards as u64;
        let build = || {
            ShardedPlatform::builder(seed, shards)
                .marketplaces(listings())
                .mba_timeout_us(2_000_000)
                .bra_retry(BackoffPolicy::new(200_000, 1_600_000, 3))
                .durability(DurabilityConfig::default())
                .build()
        };
        // pick a consumer owned by the LAST shard so the crash exercises
        // a cross-shard trip whenever shards > 1
        let probe = build();
        let consumer = (1..10_000u64)
            .map(ConsumerId)
            .find(|c| probe.shard_of(*c) == shards - 1)
            .expect("hash covers the last shard");
        // probe the dispatch marker on a clean run
        let mut clean = build();
        clean.login(consumer);
        clean.submit_task(
            consumer,
            ConsumerTask::Buy {
                item: ItemId(1),
                market: clean.markets()[0],
                mode: BuyMode::Direct,
            },
        );
        let wave = clean.run_and_drain();
        assert!(
            wave.iter()
                .any(|(_, r)| matches!(r, ResponseBody::Receipt { .. })),
            "{shards}-shard probe run must complete: {wave:?}"
        );
        let dispatched = clean
            .world()
            .trace_events()
            .iter()
            .find(|e| e.label.contains("fig4.3/step08"))
            .expect("dispatch marker present")
            .at;

        let mut p = build();
        p.login(consumer);
        p.submit_task(
            consumer,
            ConsumerTask::Buy {
                item: ItemId(1),
                market: p.markets()[0],
                mode: BuyMode::Direct,
            },
        );
        p.world_mut()
            .run_until(dispatched + SimDuration::from_micros(50));
        let buyer_host = p.buyer_host(shards - 1);
        p.world_mut().crash_host(buyer_host).unwrap();
        p.world_mut()
            .run_until(dispatched + SimDuration::from_micros(550));
        p.world_mut().restart_host(buyer_host).unwrap();
        p.world_mut().run_until_idle();
        let wave = p.run_and_drain();
        let receipts = wave
            .iter()
            .filter(|(_, r)| matches!(r, ResponseBody::Receipt { .. }))
            .count();
        assert_eq!(receipts, 1, "{shards} shards: {wave:?}");
        let snapshot = p
            .world()
            .shard(0)
            .snapshot_of(p.markets()[0].agent)
            .expect("marketplace active");
        let market: ecp::MarketplaceAgent = serde_json::from_value(snapshot).expect("state parses");
        assert_eq!(
            market.units_sold(ItemId(1)),
            1,
            "{shards} shards: exactly one sale"
        );
        let m = p.metrics();
        assert_eq!(m.hosts_recovered, 1, "{shards} shards: {m:?}");
        assert_eq!(m.purchases_committed, 1, "{shards} shards: {m:?}");
    }
}

// ---------------------------------------------------------------------
// DES ≡ ThreadWorld: the same crash plan lands in the same outcome class
// on both runtimes
// ---------------------------------------------------------------------

/// The recovery outcome class both runtimes must agree on for the
/// buy → crash → restart → buy scenario.
#[derive(Debug, PartialEq, Eq)]
struct OutcomeClass {
    receipts: usize,
    intents_logged: u64,
    purchases_committed: u64,
    purchases_aborted: u64,
    hosts_recovered: u64,
}

/// Drive the scenario on the deterministic DES.
fn des_outcome(seed: u64) -> OutcomeClass {
    let mut p = durable_platform(seed);
    p.login(CONSUMER);
    let mut receipts = 0usize;
    for item in [ItemId(1), ItemId(2)] {
        p.submit_task(
            CONSUMER,
            ConsumerTask::Buy {
                item,
                market: p.markets()[0],
                mode: BuyMode::Direct,
            },
        );
        let wave = p.run_and_drain();
        receipts += wave
            .iter()
            .filter(|(_, r)| matches!(r, ResponseBody::Receipt { .. }))
            .count();
        if item == ItemId(1) {
            let host = p.buyer_host();
            p.world_mut().crash_host(host).unwrap();
            p.world_mut().run_for(SimDuration::from_micros(500));
            p.world_mut().restart_host(host).unwrap();
            p.world_mut().run_until_idle();
        }
    }
    let m = p.world().metrics();
    OutcomeClass {
        receipts,
        intents_logged: m.intents_logged,
        purchases_committed: m.purchases_committed,
        purchases_aborted: m.purchases_aborted,
        hosts_recovered: m.hosts_recovered,
    }
}

/// Drive the same scenario on real threads.
fn thread_outcome(seed: u64, workers: usize) -> OutcomeClass {
    use abcrm::core::agents::msg::{kinds as msgkinds, MarketRef, RoutedTask, SessionRequest};
    use abcrm::core::agents::{register_all, Bsma, BsmaConfig};
    use agentsim::message::Message;
    use agentsim::thread_net::ThreadWorldBuilder;
    use std::time::Duration;

    let mut builder = ThreadWorldBuilder::new(seed);
    builder
        .workers(workers)
        .durability(DurabilityConfig::default());
    register_all(builder.registry_mut());
    let market_host = builder.add_host("marketplace");
    let seller_host = builder.add_host("seller");
    let buyer_host = builder.add_host("buyer-agent-server");
    let world = builder.start();

    let market = world
        .create_agent(market_host, Box::new(ecp::MarketplaceAgent::new("m0")))
        .unwrap();
    world
        .create_agent(
            seller_host,
            Box::new(ecp::SellerAgent::new(
                1,
                "s0",
                listings().remove(0),
                vec![market],
            )),
        )
        .unwrap();
    assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());

    let bsma = world
        .create_agent(
            buyer_host,
            Box::new(Bsma::new(BsmaConfig {
                target: buyer_host,
                markets: vec![MarketRef {
                    host: market_host,
                    agent: market,
                }],
                mba_timeout_us: 400_000, // 0.4s real time on this runtime
                durable: true,
                ..BsmaConfig::default()
            })),
        )
        .unwrap();
    assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());

    world
        .send_external(
            bsma,
            Message::new(msgkinds::LOGIN)
                .with_payload(&SessionRequest { consumer: CONSUMER })
                .unwrap(),
        )
        .unwrap();
    assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());

    for item in [ItemId(1), ItemId(2)] {
        world
            .send_external(
                bsma,
                Message::new(msgkinds::ROUTE_TASK)
                    .with_payload(&RoutedTask {
                        consumer: CONSUMER,
                        task: ConsumerTask::Buy {
                            item,
                            market: MarketRef {
                                host: market_host,
                                agent: market,
                            },
                            mode: BuyMode::Direct,
                        },
                        blocked_markets: Vec::new(),
                    })
                    .unwrap(),
            )
            .unwrap();
        assert!(
            world.run_until_idle(Duration::from_secs(30)).is_idle(),
            "buy of {item:?} quiesces"
        );
        if item == ItemId(1) {
            world.crash_host(buyer_host).unwrap();
            std::thread::sleep(Duration::from_millis(20));
            world.restart_host(buyer_host).unwrap();
            assert!(
                world.run_until_idle(Duration::from_secs(30)).is_idle(),
                "recovery quiesces"
            );
        }
    }

    let (metrics, trace) = world.shutdown();
    let receipts = trace
        .labels()
        .iter()
        .filter(|l| l.contains("bra responds with receipt"))
        .count();
    OutcomeClass {
        receipts,
        intents_logged: metrics.intents_logged,
        purchases_committed: metrics.purchases_committed,
        purchases_aborted: metrics.purchases_aborted,
        hosts_recovered: metrics.hosts_recovered,
    }
}

#[test]
fn des_and_thread_world_recover_to_the_same_outcome_class() {
    let expected = OutcomeClass {
        receipts: 2,
        intents_logged: 2,
        purchases_committed: 2,
        purchases_aborted: 0,
        hosts_recovered: 1,
    };
    assert_eq!(des_outcome(1111), expected, "DES outcome");
    assert_eq!(thread_outcome(1111, 1), expected, "1-worker thread outcome");
}

#[test]
fn multi_worker_thread_world_recovers_the_same_outcome() {
    let expected = OutcomeClass {
        receipts: 2,
        intents_logged: 2,
        purchases_committed: 2,
        purchases_aborted: 0,
        hosts_recovered: 1,
    };
    assert_eq!(thread_outcome(2222, 3), expected, "3-worker thread outcome");
}
