//! E2–E4 — the paper's numbered workflows as executable traces.
//!
//! Fig 4.1 (creation, 6 steps), Fig 4.2 (merchandise query, 15 steps),
//! Fig 4.3 (buy/auction, 14 steps). Tests assert the traces are
//! complete, ordered and attributable to the right actors.

use abcrm::core::agents::msg::{BuyMode, ResponseBody};
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::{listing, Platform};
use abcrm::core::workflow::{self, FIG_CREATION, FIG_QUERY, FIG_TRANSACT};
use abcrm::ecp::merchandise::{ItemId, Money};
use agentsim::clock::SimDuration;

fn platform(seed: u64) -> Platform {
    Platform::builder(seed)
        .marketplaces(vec![
            vec![
                listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
            ],
            vec![listing(
                11,
                "Rust Atlas",
                "books",
                "programming",
                28,
                &[("rust", 0.9)],
            )],
            vec![listing(
                21,
                "Rust Map",
                "books",
                "programming",
                26,
                &[("rust", 0.8)],
            )],
        ])
        .build()
}

#[test]
fn fig_4_1_creation_runs_exactly_six_steps() {
    let p = platform(1);
    workflow::validate(p.world().trace(), FIG_CREATION).unwrap();
    let steps = workflow::steps_of(p.world().trace(), FIG_CREATION);
    assert_eq!(
        steps,
        vec![1, 2, 3, 4, 5, 6],
        "creation steps run exactly once, in order"
    );
}

#[test]
fn fig_4_2_query_covers_all_15_steps_across_three_marketplaces() {
    let mut p = platform(2);
    p.login(ConsumerId(1));
    let responses = p.query(ConsumerId(1), &["rust"], 5);
    assert!(
        matches!(&responses[0], ResponseBody::Recommendations { offers, .. } if offers.len() == 3)
    );
    workflow::validate(p.world().trace(), FIG_QUERY).unwrap();
    let steps = workflow::steps_of(p.world().trace(), FIG_QUERY);
    // the market-visit steps (10, 11) repeat once per marketplace
    assert_eq!(steps.iter().filter(|s| **s == 10).count(), 3);
    assert_eq!(steps.iter().filter(|s| **s == 11).count(), 3);
    // the terminal steps run once
    assert_eq!(steps.iter().filter(|s| **s == 15).count(), 1);
}

#[test]
fn fig_4_2_step_times_are_monotone() {
    let mut p = platform(3);
    p.login(ConsumerId(1));
    p.query(ConsumerId(1), &["rust"], 5);
    let times = workflow::step_times(p.world().trace(), FIG_QUERY);
    let mut last = None;
    for (step, time) in times.iter().enumerate().skip(1) {
        let t = time.unwrap_or_else(|| panic!("step {step} missing"));
        if let Some(prev) = last {
            assert!(
                t >= prev,
                "step {step} at {t} precedes its predecessor at {prev}"
            );
        }
        last = Some(t);
    }
}

#[test]
fn fig_4_3_direct_buy_covers_all_14_steps() {
    let mut p = platform(4);
    p.login(ConsumerId(1));
    let responses = p.buy(ConsumerId(1), ItemId(1), 0, BuyMode::Direct);
    assert!(matches!(&responses[0], ResponseBody::Receipt { .. }));
    workflow::validate(p.world().trace(), FIG_TRANSACT).unwrap();
}

#[test]
fn fig_4_3_negotiated_buy_also_covers_the_workflow() {
    let mut p = platform(5);
    p.login(ConsumerId(1));
    let responses = p.buy(
        ConsumerId(1),
        ItemId(1),
        0,
        BuyMode::Negotiate {
            budget: Money::from_units(29),
            opening_fraction: 0.5,
            raise: 0.15,
            max_rounds: 15,
        },
    );
    match &responses[0] {
        ResponseBody::Receipt { price, channel, .. } => {
            assert!(*price <= Money::from_units(29));
            assert!(channel.contains("negotiated"));
        }
        other => panic!("unexpected {other:?}"),
    }
    workflow::validate(p.world().trace(), FIG_TRANSACT).unwrap();
}

#[test]
fn fig_4_3_auction_covers_the_workflow() {
    let mut p = platform(6);
    p.login(ConsumerId(1));
    p.open_auction(
        0,
        ItemId(2),
        Money::from_units(10),
        Money::from_units(1),
        SimDuration::from_secs(20),
    );
    let responses = p.auction(ConsumerId(1), ItemId(2), 0, Money::from_units(50));
    assert!(matches!(
        &responses[0],
        ResponseBody::AuctionResult { won: true, .. }
    ));
    workflow::validate(p.world().trace(), FIG_TRANSACT).unwrap();
}

#[test]
fn sealed_auction_two_bidders_pay_second_price() {
    let mut p = platform(16);
    for c in [1u64, 2] {
        p.login(ConsumerId(c));
    }
    p.open_sealed_auction(
        0,
        ItemId(2),
        Money::from_units(5),
        SimDuration::from_secs(30),
    );
    // both bidders' MBAs bid their true limits (Vickrey dominant strategy)
    let market = p.markets()[0];
    p.submit_task(
        ConsumerId(1),
        abcrm::core::agents::msg::ConsumerTask::Auction {
            item: ItemId(2),
            market,
            limit: Money::from_units(20),
        },
    );
    p.submit_task(
        ConsumerId(2),
        abcrm::core::agents::msg::ConsumerTask::Auction {
            item: ItemId(2),
            market,
            limit: Money::from_units(30),
        },
    );
    let responses = p.run_and_drain();
    let mut winner_price = None;
    let mut losers = 0;
    for (consumer, response) in responses {
        if let ResponseBody::AuctionResult { won, price, .. } = response {
            if won {
                assert_eq!(consumer, ConsumerId(2), "the higher true limit wins");
                winner_price = price;
            } else {
                losers += 1;
            }
        }
    }
    assert_eq!(losers, 1);
    assert_eq!(
        winner_price,
        Some(Money::from_units(20)),
        "Vickrey: the winner pays the second price (the loser's limit)"
    );
    workflow::validate(p.world().trace(), FIG_TRANSACT).unwrap();
}

#[test]
fn dutch_auction_mba_takes_at_the_clock_price() {
    let mut p = platform(17);
    p.login(ConsumerId(1));
    // clock: $50 start, $20 floor, -$5 per second; consumer limit $33
    p.open_dutch_auction(
        0,
        ItemId(2),
        Money::from_units(50),
        Money::from_units(20),
        Money::from_units(5),
        SimDuration::from_secs(1),
    );
    let responses = p.auction(ConsumerId(1), ItemId(2), 0, Money::from_units(33));
    match &responses[0] {
        ResponseBody::AuctionResult { won, price, .. } => {
            assert!(
                *won,
                "the MBA must take the item once the clock is affordable"
            );
            // clock prices: 50,45,40,35,30 — first affordable is 30
            assert_eq!(*price, Some(Money::from_units(30)));
        }
        other => panic!("expected auction result, got {other:?}"),
    }
    workflow::validate(p.world().trace(), FIG_TRANSACT).unwrap();
}

#[test]
fn dutch_auction_floors_out_when_nobody_can_pay() {
    let mut p = platform(18);
    p.login(ConsumerId(1));
    p.open_dutch_auction(
        0,
        ItemId(2),
        Money::from_units(50),
        Money::from_units(40),
        Money::from_units(5),
        SimDuration::from_secs(1),
    );
    // limit below the floor: the clock runs out
    let responses = p.auction(ConsumerId(1), ItemId(2), 0, Money::from_units(10));
    match &responses[0] {
        ResponseBody::AuctionResult { won, price, .. } => {
            assert!(!won);
            assert_eq!(*price, None, "floored-out auction is unsold");
        }
        other => panic!("expected auction result, got {other:?}"),
    }
}

#[test]
fn profile_grows_with_every_workflow() {
    let mut p = platform(7);
    p.login(ConsumerId(1));
    let interest = |p: &Platform| -> f64 {
        p.pa_state()
            .store()
            .profile(ConsumerId(1))
            .map(|pr| pr.total_interest())
            .unwrap_or(0.0)
    };
    assert_eq!(interest(&p), 0.0);
    p.query(ConsumerId(1), &["rust"], 5);
    let after_query = interest(&p);
    assert!(
        after_query > 0.0,
        "query behaviour must update the profile (§3.3 PA role)"
    );
    p.buy(ConsumerId(1), ItemId(1), 0, BuyMode::Direct);
    let after_buy = interest(&p);
    assert!(after_buy > after_query, "purchase reinforces more");
    // UserDB persisted both
    assert!(p.pa_state().userdb().profile_count() >= 1);
    assert_eq!(p.pa_state().userdb().transaction_count(), 1);
}

#[test]
fn busy_bra_rejects_overlapping_tasks() {
    let mut p = platform(8);
    p.login(ConsumerId(1));
    // submit two tasks back to back without draining
    p.submit_task(
        ConsumerId(1),
        abcrm::core::agents::msg::ConsumerTask::Query {
            keywords: vec!["rust".into()],
            category: None,
            max_results: 5,
        },
    );
    p.submit_task(
        ConsumerId(1),
        abcrm::core::agents::msg::ConsumerTask::Query {
            keywords: vec!["go".into()],
            category: None,
            max_results: 5,
        },
    );
    let responses = p.run_and_drain();
    let errors = responses
        .iter()
        .filter(|(_, r)| matches!(r, ResponseBody::Error(e) if e.contains("busy")))
        .count();
    let recs = responses
        .iter()
        .filter(|(_, r)| matches!(r, ResponseBody::Recommendations { .. }))
        .count();
    assert_eq!(
        errors, 1,
        "the second task must be refused while the first runs"
    );
    assert_eq!(recs, 1, "the first task must still complete");
}

#[test]
fn consecutive_workflows_reuse_the_same_bra() {
    let mut p = platform(9);
    p.login(ConsumerId(1));
    let bra = p.bsma_state().sessions()[0].1;
    for _ in 0..3 {
        let r = p.query(ConsumerId(1), &["rust"], 5);
        assert!(matches!(&r[0], ResponseBody::Recommendations { .. }));
    }
    assert_eq!(p.bsma_state().sessions()[0].1, bra);
    // three query workflows = three deactivate/activate cycles
    assert_eq!(p.world().metrics().deactivations, 3);
    assert_eq!(p.world().metrics().activations, 3);
}
