//! Seed-sweep fault-model suite: the platform under deterministic chaos.
//!
//! Every run derives a [`ChaosPlan`] from its seed — partition windows
//! with scheduled healing, lossy and slow links, marketplace host
//! crashes, message duplication and bounded-jitter reordering — installs
//! it on the world, and drives real query workflows through the faults.
//! Whatever the plan does, four invariants must hold at quiescence:
//!
//! 1. every submitted query produces exactly one [`ResponseBody`]
//!    (degraded CF-only replies are acceptable; silence is not);
//! 2. no BRA is stuck deactivated — each ends `Location::Active` on the
//!    buyer host;
//! 3. the BSMA's roaming-MBA registry is empty (`roaming_mbas() == 0`);
//! 4. the world drains to quiescence (`run_until_idle` returns).
//!
//! Failures print the `(seed, plan)` pair; the plan's `Display` is one
//! JSON line, so a failing run reproduces exactly:
//!
//! ```bash
//! CHAOS_SEED=<seed> cargo test --test chaos repro_single_seed -- --nocapture
//! ```
//!
//! The DES sweep always covers 32 seeds. The threaded sweep applies the
//! same plans through [`ThreadWorld`]'s live fault switches (partitions
//! and crashes — the synchronous faults whose semantics are identical on
//! both runtimes) and defaults to 8 seeds; set `CHAOS_SEEDS=32` for the
//! full sweep.

use abcrm::core::agents::msg::{ConsumerTask, ResponseBody};
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::{listing, Platform};
use abcrm::core::BackoffPolicy;
use agentsim::chaos::{ChaosConfig, ChaosPlan, Fault};
use agentsim::ids::HostId;
use agentsim::sim::Location;

/// Faults may strike anywhere in the first 8 simulated seconds — wide
/// enough to straddle the query workflows, retries and watchdog grace
/// periods they trigger.
const HORIZON_US: u64 = 8_000_000;

const CONSUMERS: [ConsumerId; 3] = [ConsumerId(1), ConsumerId(2), ConsumerId(3)];

fn two_market_platform(seed: u64) -> Platform {
    Platform::builder(seed)
        .marketplaces(vec![
            vec![
                listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
            ],
            vec![listing(
                11,
                "Systems Programming",
                "books",
                "programming",
                40,
                &[("rust", 0.8)],
            )],
        ])
        .mba_timeout_us(2_000_000)
        .bra_retry(BackoffPolicy::new(200_000, 1_600_000, 2))
        .build()
}

fn query_task() -> ConsumerTask {
    ConsumerTask::Query {
        keywords: vec!["rust".into()],
        category: None,
        max_results: 5,
    }
}

/// Invariant 1: each consumer got exactly one reply, and a query reply is
/// always `Recommendations` — possibly degraded, never an error and never
/// missing.
fn assert_one_reply_each(
    wave: &[(ConsumerId, ResponseBody)],
    seed: u64,
    plan: &ChaosPlan,
    when: &str,
) {
    for consumer in CONSUMERS {
        let replies: Vec<_> = wave.iter().filter(|(c, _)| *c == consumer).collect();
        assert_eq!(
            replies.len(),
            1,
            "seed {seed} ({when}): consumer {consumer:?} expected exactly one reply, \
             got {replies:?}; repro plan: {plan}"
        );
        assert!(
            matches!(replies[0].1, ResponseBody::Recommendations { .. }),
            "seed {seed} ({when}): query reply must be Recommendations, got {:?}; \
             repro plan: {plan}",
            replies[0].1
        );
    }
}

/// One full DES chaos run: generate the plan, install it, drive a query
/// wave through the fault windows, a second wave after everything healed,
/// and check all four invariants.
fn run_des_seed(seed: u64) {
    let mut p = two_market_platform(seed);
    for consumer in CONSUMERS {
        p.login(consumer);
    }
    let buyer = p.buyer_host();
    let links: Vec<(HostId, HostId)> = p.markets().iter().map(|m| (buyer, m.host)).collect();
    let crashable: Vec<HostId> = p.markets().iter().map(|m| m.host).collect();
    let plan = ChaosPlan::generate(seed, &ChaosConfig::new(HORIZON_US, links, crashable));
    p.install_chaos(&plan);

    // Wave 1 rides through the fault windows: all three workflows are in
    // flight while partitions open, hosts crash and messages duplicate.
    for consumer in CONSUMERS {
        p.submit_task(consumer, query_task());
    }
    let wave = p.run_and_drain();
    assert_one_reply_each(&wave, seed, &plan, "mid-chaos");

    // run_and_drain ran until idle, so every scheduled fault has now both
    // struck and healed. Wave 2 exercises the recovered platform; a
    // crashed marketplace restarts empty, so degraded replies are still
    // legitimate — silence or an error is not.
    for consumer in CONSUMERS {
        p.submit_task(consumer, query_task());
    }
    let wave = p.run_and_drain();
    assert_one_reply_each(&wave, seed, &plan, "post-heal");

    // Invariant 4: quiescence. run_until_idle returning *is* the check —
    // a retry loop that never converges would hang the test here.
    p.world_mut().run_until_idle();

    let bsma = p.bsma_state();
    assert_eq!(
        bsma.roaming_mbas(),
        0,
        "seed {seed}: MBA registry not cleaned up at quiescence; repro plan: {plan}"
    );
    for (consumer, bra) in bsma.sessions() {
        assert_eq!(
            p.world().location(*bra),
            Some(Location::Active(buyer)),
            "seed {seed}: BRA of consumer {consumer} stuck deactivated; repro plan: {plan}"
        );
    }
}

// The 32-seed DES sweep, split so test threads run the quarters in
// parallel.

#[test]
fn des_sweep_seeds_01_to_08() {
    for seed in 1..=8 {
        run_des_seed(seed);
    }
}

#[test]
fn des_sweep_seeds_09_to_16() {
    for seed in 9..=16 {
        run_des_seed(seed);
    }
}

#[test]
fn des_sweep_seeds_17_to_24() {
    for seed in 17..=24 {
        run_des_seed(seed);
    }
}

#[test]
fn des_sweep_seeds_25_to_32() {
    for seed in 25..=32 {
        run_des_seed(seed);
    }
}

/// Repro hook: `CHAOS_SEED=<n> cargo test --test chaos repro_single_seed`
/// replays exactly one failing sweep entry.
#[test]
fn repro_single_seed() {
    if let Ok(seed) = std::env::var("CHAOS_SEED") {
        let seed: u64 = seed.parse().expect("CHAOS_SEED must be a u64");
        run_des_seed(seed);
    }
}

/// Buys under chaos must settle cleanly: a `Receipt` when the purchase
/// went through, an `Error` when the MBA or marketplace was lost — never
/// silence, and never a duplicated purchase.
#[test]
fn buys_under_chaos_settle_cleanly() {
    for seed in [101u64, 102, 103, 104] {
        let mut p = two_market_platform(seed);
        p.login(ConsumerId(1));
        let buyer = p.buyer_host();
        let links: Vec<(HostId, HostId)> = p.markets().iter().map(|m| (buyer, m.host)).collect();
        let crashable: Vec<HostId> = p.markets().iter().map(|m| m.host).collect();
        let plan = ChaosPlan::generate(seed, &ChaosConfig::new(HORIZON_US, links, crashable));
        p.install_chaos(&plan);
        let responses = p.buy(
            ConsumerId(1),
            abcrm::ecp::merchandise::ItemId(1),
            0,
            abcrm::core::agents::msg::BuyMode::Direct,
        );
        assert_eq!(
            responses.len(),
            1,
            "seed {seed}: buy must produce exactly one response; repro plan: {plan}"
        );
        assert!(
            matches!(
                responses[0],
                ResponseBody::Receipt { .. } | ResponseBody::Error(_)
            ),
            "seed {seed}: buy must settle as Receipt or Error, got {:?}; repro plan: {plan}",
            responses[0]
        );
        let receipts = p.pa_state().userdb().transaction_count();
        assert!(
            receipts <= 1,
            "seed {seed}: chaos must never duplicate a purchase ({receipts} recorded); \
             repro plan: {plan}"
        );
    }
}

/// The same fault model on the threaded runtime: plans derived from the
/// same generator, applied through [`ThreadWorld`]'s live switches. Link
/// faults map to partitions (the synchronous fault class whose semantics
/// the two runtimes share exactly); crashes map to crashes.
mod threaded {
    use super::{ChaosConfig, ChaosPlan, Fault, HostId};
    use abcrm::core::agents::msg::{kinds as msgkinds, ConsumerTask, MarketRef, RoutedTask};
    use abcrm::core::agents::{register_all, Bsma, BsmaConfig, BuyerRecommendAgent, ProfileAgent};
    use abcrm::core::learning::LearnerConfig;
    use abcrm::core::profile::ConsumerId;
    use abcrm::core::server::listing;
    use abcrm::core::similarity::SimilarityConfig;
    use abcrm::core::BackoffPolicy;
    use abcrm::ecp::{MarketplaceAgent, SellerAgent};
    use agentsim::agent::{Agent, Ctx};
    use agentsim::ids::AgentId;
    use agentsim::message::Message;
    use agentsim::thread_net::ThreadWorldBuilder;
    use serde::{Deserialize, Serialize};
    use std::time::Duration;

    /// Stand-in for the HttpA front (same as the equivalence suite): it
    /// forwards instructions and traces every reply it receives.
    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Probe;

    impl Agent for Probe {
        fn agent_type(&self) -> &'static str {
            "probe"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::json!(null)
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if let Some(target) = msg.payload.get("__send_to") {
                let to = AgentId(target.as_u64().unwrap());
                let inner = Message::new(msg.payload["kind"].as_str().unwrap())
                    .carrying(msg.payload.project("payload"));
                ctx.send(to, inner);
                return;
            }
            ctx.note(format!("probe-reply {}", msg.kind));
        }
    }

    fn instruction(to: AgentId, task: &RoutedTask) -> Message {
        Message::new("instr").carrying(serde_json::json!({
            "__send_to": to.0,
            "kind": msgkinds::BRA_TASK,
            "payload": serde_json::to_value(task).unwrap(),
        }))
    }

    /// One threaded chaos run. Wall-clock timers mean wait windows must
    /// stay short: 300 ms MBA watchdog, 100 ms retry base.
    fn run_thread_seed(seed: u64) {
        let mut builder = ThreadWorldBuilder::new(seed);
        register_all(builder.registry_mut());
        builder.registry_mut().register_serde::<Probe>("probe");
        let market_hosts = [builder.add_host("m0"), builder.add_host("m1")];
        let seller_host = builder.add_host("seller");
        let buyer_host = builder.add_host("buyer-agent-server");
        let world = builder.start();

        let mut markets = Vec::new();
        for (i, host) in market_hosts.iter().enumerate() {
            let agent = world
                .create_agent(*host, Box::new(MarketplaceAgent::new(format!("m{i}"))))
                .unwrap();
            markets.push(MarketRef { host: *host, agent });
        }
        world
            .create_agent(
                seller_host,
                Box::new(SellerAgent::new(
                    1,
                    "s0",
                    vec![
                        listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                        listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
                    ],
                    markets.iter().map(|m| m.agent).collect(),
                )),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());

        let retry = BackoffPolicy::new(100_000, 400_000, 1);
        let bsma = world
            .create_agent(
                buyer_host,
                Box::new(Bsma::new(BsmaConfig {
                    target: buyer_host,
                    markets: markets.clone(),
                    mba_timeout_us: 300_000,
                    bra_retry: retry,
                    ..BsmaConfig::default()
                })),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        let pa = world
            .create_agent(
                buyer_host,
                Box::new(ProfileAgent::new(
                    LearnerConfig::default(),
                    SimilarityConfig::default(),
                )),
            )
            .unwrap();
        let probe = world.create_agent(buyer_host, Box::new(Probe)).unwrap();
        let bra = world
            .create_agent(
                buyer_host,
                Box::new(
                    BuyerRecommendAgent::new(ConsumerId(1), bsma, pa, probe, markets.clone())
                        .with_mba_timeout_us(300_000)
                        .with_retry_policy(retry),
                ),
            )
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());

        // Derive the plan from the same generator the DES sweep uses,
        // then apply its faults through the live switches.
        let links: Vec<(HostId, HostId)> = market_hosts.iter().map(|m| (buyer_host, *m)).collect();
        let plan = ChaosPlan::generate(
            seed,
            &ChaosConfig::new(super::HORIZON_US, links, market_hosts.to_vec()),
        );
        let mut partitions = Vec::new();
        let mut crashed = Vec::new();
        let mut hung = Vec::new();
        for ev in &plan.events {
            match ev.fault {
                // every link-fault class maps to the runtime-shared
                // synchronous fault: a hard partition
                Fault::Partition { a, b }
                | Fault::LinkLoss { a, b, .. }
                | Fault::SlowLink { a, b, .. } => {
                    world.partition(a, b);
                    partitions.push((a, b));
                }
                Fault::CrashHost { host } => {
                    world.crash_host(host).unwrap();
                    crashed.push(host);
                }
                // this config declares no hangable hosts, so the plan
                // never draws one — the arm keeps the mapping total
                Fault::Hang { host } => {
                    world.hang_host(host).unwrap();
                    hung.push(host);
                }
            }
        }
        world.set_duplication_probability(plan.dup_probability);

        let task = RoutedTask {
            consumer: ConsumerId(1),
            task: ConsumerTask::Query {
                keywords: vec!["rust".into()],
                category: None,
                max_results: 5,
            },
            blocked_markets: Vec::new(),
        };
        // Query 1 runs against the broken world.
        world.send_external(probe, instruction(bra, &task)).unwrap();
        let status = world.run_until_idle(Duration::from_secs(60));
        assert!(
            status.is_idle(),
            "seed {seed}: threaded world failed to drain mid-chaos: {status}; repro plan: {plan}"
        );
        // Heal everything; query 2 runs against the recovered world.
        for (a, b) in partitions {
            world.heal_partition(a, b);
        }
        for host in crashed {
            world.restart_host(host).unwrap();
        }
        for host in hung {
            world.unhang_host(host).unwrap();
        }
        world.send_external(probe, instruction(bra, &task)).unwrap();
        let status = world.run_until_idle(Duration::from_secs(60));
        assert!(
            status.is_idle(),
            "seed {seed}: threaded world failed to drain post-heal: {status}; repro plan: {plan}"
        );

        // run_until_idle returning true is the quiescence check: it only
        // returns once the in-flight counter has settled at zero.
        let (_metrics, trace) = world.shutdown();
        let replies = trace.labels_with_prefix("probe-reply ");
        assert_eq!(
            replies.len(),
            2,
            "seed {seed}: both queries must be answered (got {replies:?}); repro plan: {plan}"
        );
        for reply in &replies {
            assert_eq!(
                *reply,
                format!("probe-reply {}", msgkinds::BRA_RESPONSE),
                "seed {seed}: reply must be a BRA response; repro plan: {plan}"
            );
        }
    }

    /// `CHAOS_SEEDS=<n>` widens the sweep (full mode uses 32);
    /// `CHAOS_SEED=<n>` pins it to a single seed for reproduction.
    #[test]
    fn threaded_sweep_honours_the_same_fault_model() {
        if let Ok(seed) = std::env::var("CHAOS_SEED") {
            run_thread_seed(seed.parse().expect("CHAOS_SEED must be a u64"));
            return;
        }
        let count: u64 = std::env::var("CHAOS_SEEDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8);
        for seed in 1..=count {
            run_thread_seed(seed);
        }
    }
}
