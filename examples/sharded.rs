//! Sharded quickstart: the Fig 3.1 platform partitioned across parallel
//! DES shards. Shard 0 hosts the Coordinator, marketplaces and sellers;
//! every shard runs its own Buyer Agent Server, and consumers hash onto
//! shards by id. One consumer per shard logs in, queries (Fig 4.2) and
//! buys (Fig 4.3); their MBAs cross the conservative time-window
//! boundary to reach the shard-0 marketplaces.
//!
//! With one shard, the run also replays the same session on the plain
//! unsharded [`Platform`] and asserts the traces are byte-identical —
//! the CI shard-smoke step relies on this self-check.
//!
//! ```bash
//! cargo run --example sharded -- 4
//! ```

use abcrm::core::agents::msg::{BuyMode, ResponseBody};
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::{listing, Platform, ShardedPlatform};
use abcrm::core::workflow;
use abcrm::ecp::merchandise::ItemId;
use ecp::protocol::Listing;

fn catalogs() -> Vec<Vec<Listing>> {
    vec![
        vec![
            listing(
                1,
                "Rust in Action",
                "books",
                "programming",
                35,
                &[("rust", 1.0)],
            ),
            listing(2, "The Go Book", "books", "programming", 30, &[("go", 1.0)]),
        ],
        vec![
            listing(
                11,
                "Systems Programming",
                "books",
                "programming",
                40,
                &[("rust", 0.8)],
            ),
            listing(12, "Kind of Blue LP", "music", "jazz", 25, &[("jazz", 1.0)]),
        ],
    ]
}

fn main() {
    let shards: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2);

    let mut platform = ShardedPlatform::builder(42, shards)
        .marketplaces(catalogs())
        .build();
    println!(
        "sharded platform up: {} shards, {} marketplaces (all on shard 0)",
        platform.shard_count(),
        platform.markets().len()
    );

    // The Fig 4.1 creation workflow ran once per shard during build.
    workflow::validate(&platform.world().merged_trace(), workflow::FIG_CREATION)
        .expect("fig 4.1 creation trace");
    println!("fig 4.1 creation workflow: OK on every shard");

    // One consumer per shard, found by walking the consistent hash.
    let mut consumers: Vec<Option<ConsumerId>> = vec![None; shards];
    for c in 1..10_000u64 {
        let s = platform.shard_of(ConsumerId(c));
        if consumers[s].is_none() {
            consumers[s] = Some(ConsumerId(c));
        }
        if consumers.iter().all(Option::is_some) {
            break;
        }
    }
    let consumers: Vec<ConsumerId> = consumers.into_iter().map(Option::unwrap).collect();

    for (shard, &consumer) in consumers.iter().enumerate() {
        platform.login(consumer);
        let responses = platform.query(consumer, &["rust"], 5);
        let offers = match &responses[..] {
            [ResponseBody::Recommendations { offers, .. }] => offers.len(),
            other => panic!("shard {shard} query failed: {other:?}"),
        };
        let responses = platform.buy(consumer, ItemId(1), 0, BuyMode::Direct);
        assert!(
            matches!(&responses[..], [ResponseBody::Receipt { .. }]),
            "shard {shard} buy failed: {responses:?}"
        );
        println!(
            "shard {shard}: consumer {} queried ({offers} offers) and bought item 1",
            consumer.0
        );
    }
    let merged = platform.world().merged_trace();
    workflow::validate(&merged, workflow::FIG_QUERY).expect("fig 4.2 query trace");
    workflow::validate(&merged, workflow::FIG_TRANSACT).expect("fig 4.3 buy trace");
    println!("fig 4.2 + fig 4.3 workflows: OK across shards");

    let m = platform.metrics();
    println!(
        "metrics: {} messages delivered, {} migrations ({} crossed a shard boundary), \
         {} boundary messages, 0 rejected: {}",
        m.messages_delivered,
        m.migrations,
        m.boundary_migrations,
        m.boundary_messages,
        m.migrations_rejected == 0
    );
    assert_eq!(m.migrations_rejected, 0, "boundary auth must hold");

    if shards == 1 {
        // Self-check: the 1-shard run must be byte-identical to the
        // plain unsharded platform, trace and metrics both.
        let mut flat = Platform::builder(42).marketplaces(catalogs()).build();
        let consumer = consumers[0];
        flat.login(consumer);
        flat.query(consumer, &["rust"], 5);
        flat.buy(consumer, ItemId(1), 0, BuyMode::Direct);
        let flat_labels: Vec<String> = flat
            .world()
            .trace()
            .labels()
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            flat_labels,
            platform.world().trace_labels(),
            "1-shard trace diverged from the unsharded platform"
        );
        assert_eq!(flat.world().metrics(), &platform.metrics());
        println!("1-shard trace byte-identical to the unsharded platform: OK");
    }
}
