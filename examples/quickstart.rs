//! Quickstart: build the full platform of the paper's Fig 3.1, log a
//! consumer in, run a merchandise query (Fig 4.2) and a purchase
//! (Fig 4.3), and print the numbered workflow trace.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use abcrm::core::agents::msg::{BuyMode, ResponseBody};
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::{listing, Platform};
use abcrm::core::workflow;
use abcrm::ecp::merchandise::ItemId;

fn main() {
    // Two marketplaces, each provisioned by its own seller server.
    // Telemetry on: every external request grows a causal span tree.
    let mut platform = Platform::builder(42)
        .telemetry(true)
        .marketplaces(vec![
            vec![
                listing(
                    1,
                    "Rust in Action",
                    "books",
                    "programming",
                    35,
                    &[("rust", 1.0)],
                ),
                listing(2, "The Go Book", "books", "programming", 30, &[("go", 1.0)]),
                listing(
                    3,
                    "Sourdough Basics",
                    "books",
                    "cooking",
                    20,
                    &[("bread", 1.0)],
                ),
            ],
            vec![
                listing(
                    11,
                    "Systems Programming",
                    "books",
                    "programming",
                    40,
                    &[("rust", 0.8)],
                ),
                listing(12, "Kind of Blue LP", "music", "jazz", 25, &[("jazz", 1.0)]),
            ],
        ])
        .build();

    println!(
        "platform up: {} marketplaces, buyer server on {}\n",
        platform.markets().len(),
        platform.buyer_host()
    );

    // The Fig 4.1 creation workflow already ran during build; verify it.
    workflow::validate(platform.world().trace(), workflow::FIG_CREATION)
        .expect("fig 4.1 creation trace");
    println!("fig 4.1 creation workflow: OK (6 steps)");

    let alice = ConsumerId(1);
    platform.login(alice);
    println!("alice logged in (BRA created)\n");

    // Fig 4.2: merchandise query. The MBA visits both marketplaces.
    let responses = platform.query(alice, &["rust"], 5);
    for response in &responses {
        if let ResponseBody::Recommendations {
            offers,
            recommendations,
            ..
        } = response
        {
            println!("query \"rust\" returned {} offers:", offers.len());
            for offer in offers {
                println!(
                    "  {} at {} (marketplace {})",
                    offer.item.name, offer.price, offer.marketplace
                );
            }
            println!("recommendations:");
            for rec in recommendations {
                println!("  {:.3}  {}  ({})", rec.score, rec.item.name, rec.reason);
            }
        }
    }
    workflow::validate(platform.world().trace(), workflow::FIG_QUERY).expect("fig 4.2 query trace");
    println!("fig 4.2 query workflow: OK (15 steps)\n");

    // Fig 4.3: negotiated purchase.
    let responses = platform.buy(
        alice,
        ItemId(1),
        0,
        BuyMode::Negotiate {
            budget: abcrm::ecp::merchandise::Money::from_units(32),
            opening_fraction: 0.6,
            raise: 0.1,
            max_rounds: 20,
        },
    );
    for response in &responses {
        if let ResponseBody::Receipt {
            item,
            price,
            channel,
        } = response
        {
            println!("bought {} for {price} ({channel})", item.name);
        }
    }
    workflow::validate(platform.world().trace(), workflow::FIG_TRANSACT)
        .expect("fig 4.3 buy trace");
    println!("fig 4.3 buy workflow: OK (14 steps)\n");

    platform.logout(alice);

    // Show the numbered steps the run produced.
    println!("--- fig 4.2 trace ---");
    for label in platform.world().trace().labels_with_prefix("fig4.2/") {
        println!("  {label}");
    }

    let m = platform.world().metrics();
    println!(
        "\nplatform metrics: {} messages, {} migrations, {} bytes over the network",
        m.messages_delivered,
        m.migrations,
        m.total_network_bytes()
    );

    // Telemetry: the same run as causal span trees + stage latencies.
    let t = platform.telemetry();
    println!(
        "\ntelemetry: {} request traces, {} spans, {} double closes",
        t.roots().count(),
        t.spans().len(),
        t.double_closes()
    );
    let reg = t.registry();
    for stage in [
        "stage.transfer_us",
        "stage.migration_us",
        "stage.timer_wait_us",
    ] {
        if let Some(h) = reg.histograms().get(stage) {
            println!(
                "  {stage}: count {} p50 {} p99 {} max {}",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max()
            );
        }
    }
    println!(
        "export: `cargo run --release -p bench --bin telemetry_report -- --chrome-out trace.json`\n\
         then load trace.json in ui.perfetto.dev"
    );
}
