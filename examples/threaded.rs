//! The same agents on real OS threads: the full buyer-server stack on
//! [`agentsim::thread_net::ThreadWorld`] — one thread per server, crossbeam
//! channels as the network, wall-clock time instead of the simulated
//! clock. Demonstrates that every agent in the reproduction is
//! runtime-agnostic serde state.
//!
//! ```bash
//! cargo run --example threaded
//! ```

use abcrm::core::agents::msg::{
    kinds as msgkinds, ConsumerTask, MarketRef, RoutedTask, SessionRequest,
};
use abcrm::core::agents::{register_all, Bsma, BsmaConfig};
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::listing;
use abcrm::ecp::{MarketplaceAgent, SellerAgent};
use agentsim::message::Message;
use agentsim::thread_net::ThreadWorldBuilder;
use std::time::{Duration, Instant};

fn main() {
    let start = Instant::now();
    let mut builder = ThreadWorldBuilder::new(42);
    register_all(builder.registry_mut());
    let market_host = builder.add_host("marketplace");
    let seller_host = builder.add_host("seller");
    let buyer_host = builder.add_host("buyer-agent-server");
    let world = builder.start();
    println!("three hosts running on three OS threads");

    let market = world
        .create_agent(market_host, Box::new(MarketplaceAgent::new("m0")))
        .expect("create marketplace");
    world
        .create_agent(
            seller_host,
            Box::new(SellerAgent::new(
                1,
                "s0",
                vec![
                    listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                    listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
                ],
                vec![market],
            )),
        )
        .expect("create seller");
    world.run_until_idle(Duration::from_secs(10));

    let bsma = world
        .create_agent(
            buyer_host,
            Box::new(Bsma::new(BsmaConfig {
                target: buyer_host,
                markets: vec![MarketRef {
                    host: market_host,
                    agent: market,
                }],
                mba_timeout_us: 200_000,
                ..BsmaConfig::default()
            })),
        )
        .expect("create bsma");
    world.run_until_idle(Duration::from_secs(10));
    println!("buyer agent server ready (BSMA, PA, HttpA created)");

    world
        .send_external(
            bsma,
            Message::new(msgkinds::LOGIN)
                .with_payload(&SessionRequest {
                    consumer: ConsumerId(1),
                })
                .unwrap(),
        )
        .unwrap();
    world.run_until_idle(Duration::from_secs(10));

    world
        .send_external(
            bsma,
            Message::new(msgkinds::ROUTE_TASK)
                .with_payload(&RoutedTask {
                    consumer: ConsumerId(1),
                    task: ConsumerTask::Query {
                        keywords: vec!["rust".into()],
                        category: None,
                        max_results: 5,
                    },
                    blocked_markets: Vec::new(),
                })
                .unwrap(),
        )
        .unwrap();
    world.run_until_idle(Duration::from_secs(20));

    let (metrics, trace) = world.shutdown();
    println!(
        "\nquery workflow completed on threads in {:?} wall time:",
        start.elapsed()
    );
    println!("  messages delivered: {}", metrics.messages_delivered);
    println!(
        "  MBA migrations:     {} (out + authenticated return)",
        metrics.migrations
    );
    println!("  BRA deactivations:  {}", metrics.deactivations);
    println!("  BRA activations:    {}", metrics.activations);
    println!("\nworkflow steps observed (real-time ordering):");
    for label in trace.labels_with_prefix("fig4.2/") {
        println!("  {label}");
    }
}
