//! Cold-start and sparsity: reproduce §2.3's claims offline.
//!
//! *"For a CF system to work well; several users must evaluate each
//! item; even then, new items cannot be recommended until some users
//! have taken the time to evaluate them. These limitations often
//! referred to as the sparsity and cold-start problems."*
//!
//! This example sweeps history density (sparsity) and runs the
//! cold-user / cold-item scenarios, printing the EXPERIMENTS.md E6
//! tables.
//!
//! ```bash
//! cargo run --release --example cold_start
//! ```

use abcrm::eval::sweep::{alpha_convergence, cold_start_eval, sparsity_sweep, SweepSpec};

fn main() {
    let spec = SweepSpec {
        items: 80,
        consumers: 30,
        clusters: 3,
        ..SweepSpec::default()
    };

    println!("{}", sparsity_sweep(&spec, &[1, 3, 7, 15, 30]));
    println!();
    println!("{}", cold_start_eval(&spec, 15));
    println!();
    println!(
        "{}",
        alpha_convergence(&spec, &[0.05, 0.1, 0.3, 0.6, 1.0], 60)
    );
    println!();
    println!(
        "Reading guide: cf-knn collapses at high sparsity and scores zero on\n\
         cold items; content-if and the paper's hybrid keep working because\n\
         they match profiles against item content (the §2.3 IF property)."
    );
}
