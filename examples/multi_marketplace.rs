//! Multi-marketplace price discovery — the paper's §5.1 claim 3: *"The
//! MBA can collect merchandise information between more then two online
//! marketplaces in the E-Commerce platform."*
//!
//! The same catalog is replicated across 1..=6 marketplaces with ±20%
//! price jitter; one MBA tours all of them per query. More marketplaces
//! ⇒ better best price found, at the cost of a longer tour.
//!
//! ```bash
//! cargo run --release --example multi_marketplace
//! ```

use abcrm::core::agents::msg::ResponseBody;
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::Platform;
use abcrm::workload::catalog::{generate_listings, replicate_with_price_jitter, CatalogSpec};
use abcrm::workload::taxonomy::{Taxonomy, TaxonomySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let taxonomy = Taxonomy::generate(TaxonomySpec::default());
    let mut rng = StdRng::seed_from_u64(55);
    let base = generate_listings(
        &taxonomy,
        &CatalogSpec {
            items: 20,
            ..CatalogSpec::default()
        },
        1,
        &mut rng,
    );
    let probe_name = base[0].item.name.clone();

    // Jitter once for 6 marketplaces, then use prefixes: visiting more
    // marketplaces means seeing a superset of prices, so the best found
    // price is monotone by construction — the pure discovery effect.
    let all_markets = replicate_with_price_jitter(&base, 6, 0.2, &mut rng);

    println!("item probed: {probe_name}");
    println!(
        "{:>12} {:>12} {:>14} {:>14}",
        "marketplaces", "offers", "best price", "tour (ms)"
    );

    for n in 1..=6usize {
        let markets = all_markets[..n].to_vec();
        let mut platform = Platform::builder(100 + n as u64)
            .marketplaces(markets)
            .build();
        let alice = ConsumerId(1);
        platform.login(alice);
        let responses = platform.query(alice, &[probe_name.as_str()], 3);
        // tour latency: first step01 to first step15 in the trace (the
        // world clock itself runs on past the MBA watchdog timer)
        let times = abcrm::core::workflow::step_times(platform.world().trace(), "fig4.2");
        let elapsed = match (
            times.get(1).copied().flatten(),
            times.get(15).copied().flatten(),
        ) {
            (Some(t1), Some(t15)) => t15.since(t1).as_millis_f64(),
            _ => f64::NAN,
        };
        for r in responses {
            if let ResponseBody::Recommendations { offers, .. } = r {
                let best = offers.iter().map(|o| o.price).min();
                println!(
                    "{:>12} {:>12} {:>14} {:>14.2}",
                    n,
                    offers.len(),
                    best.map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
                    elapsed
                );
            }
        }
        platform.logout(alice);
    }

    println!(
        "\nbest price improves (or holds) with marketplace count while the\n\
         MBA's tour time grows linearly — the trade the paper's conclusion\n\
         claims the mobile agent makes worthwhile."
    );
}
