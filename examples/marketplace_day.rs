//! A day at the marketplace: a synthetic population shops on the full
//! platform, with and without the recommendation mechanism, and the
//! commerce effects of §2.3 (browsers→buyers, cross-sell, loyalty) are
//! compared.
//!
//! ```bash
//! cargo run --release --example marketplace_day
//! ```

use abcrm::core::server::Platform;
use abcrm::workload::catalog::{generate_listings, split_across_markets, CatalogSpec};
use abcrm::workload::population::{Population, PopulationSpec};
use abcrm::workload::session::{run_population_sessions, SessionConfig};
use abcrm::workload::taxonomy::{Taxonomy, TaxonomySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let taxonomy = Taxonomy::generate(TaxonomySpec {
        categories: 4,
        subs_per_category: 3,
        terms_per_sub: 10,
    });
    let mut rng = StdRng::seed_from_u64(2004);
    let listings = generate_listings(
        &taxonomy,
        &CatalogSpec {
            items: 60,
            ..CatalogSpec::default()
        },
        1,
        &mut rng,
    );
    let population = Population::generate(
        &PopulationSpec {
            consumers: 12,
            clusters: 3,
            ..PopulationSpec::default()
        },
        &listings,
        &mut rng,
    );

    println!(
        "catalog: {} items across {} marketplaces",
        listings.len(),
        2
    );
    println!(
        "population: {} consumers in 3 taste clusters\n",
        population.consumers.len()
    );

    for (label, use_recs) in [
        ("WITHOUT recommendations", false),
        ("WITH recommendations", true),
    ] {
        let mut platform = Platform::builder(7)
            .marketplaces(split_across_markets(listings.clone(), 2))
            .build();
        let mut rng = StdRng::seed_from_u64(99);
        let config = SessionConfig {
            queries: 3,
            use_recommendations: use_recs,
            ..SessionConfig::default()
        };
        let report = run_population_sessions(&mut platform, &population, &config, &mut rng);
        println!("--- {label} ---");
        println!("sessions:              {}", report.sessions);
        println!("conversion rate:       {:.2}", report.conversion_rate());
        println!(
            "average order size:    {:.2} items",
            report.average_order_size()
        );
        println!("purchases:             {}", report.purchases);
        println!("  via recommendations: {}", report.recommended_purchases);
        println!("total spend:           {}", report.spent);
        println!("mean satisfaction:     {:.2}", report.mean_satisfaction);
        let m = platform.world().metrics();
        println!(
            "platform work:         {} messages, {} migrations, {} deactivations\n",
            m.messages_delivered, m.migrations, m.deactivations
        );
    }

    println!(
        "The WITH run should show more purchases (cross-sell via recommended \n\
         items the queries alone did not surface) — the §2.3 claims in action."
    );
}
