//! Future-work showcase (paper §5.2): weekly-hottest merchandise,
//! tied-sale bundles, and the consumer community graph, computed from a
//! behaviour history the mechanism observed.
//!
//! ```bash
//! cargo run --release --example community
//! ```

use abcrm::core::extensions::{CommunityGraph, TiedSale, WeeklyHottest};
use abcrm::core::learning::BehaviorKind;
use abcrm::core::similarity::SimilarityConfig;
use abcrm::eval::harness::build_store;
use abcrm::eval::sweep::{make_workload, SweepSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = SweepSpec {
        items: 60,
        consumers: 24,
        clusters: 3,
        ..SweepSpec::default()
    };
    let w = make_workload(&spec);
    let mut rng = StdRng::seed_from_u64(2026);
    let history = w.population.sample_history(&w.listings, 15, &mut rng);
    let mut store = build_store(&w.listings, &history);
    println!(
        "history: {} events from {} consumers over {} items\n",
        history.len(),
        w.population.consumers.len(),
        w.listings.len()
    );

    // -- weekly hottest (§5.2 item 2) ------------------------------------
    let mut hottest = WeeklyHottest::new();
    let mut tick = 0;
    for (_, item, kind) in &history {
        if matches!(kind, BehaviorKind::Purchase) {
            tick += 1;
            hottest.record_sale(tick, item.id);
        }
    }
    println!("weekly hottest (last 40 sales window):");
    for (item, n) in hottest.hottest(tick, 40, 5) {
        let name = store
            .catalog()
            .get(item)
            .map(|m| m.name.clone())
            .unwrap_or_default();
        println!("  {n:>3} sold  {name}");
    }

    // -- tied-sale bundles (§5.2 item 2) ----------------------------------
    for truth in &w.population.consumers {
        let owned: Vec<_> = store.purchased_by(truth.id).into_iter().take(3).collect();
        if owned.len() >= 2 {
            store.record_basket(truth.id, &owned);
        }
    }
    let miner = TiedSale::new(2);
    if let Some((top_item, _)) = store.top_sellers(1).first().copied() {
        let name = store
            .catalog()
            .get(top_item)
            .map(|m| m.name.clone())
            .unwrap_or_default();
        println!("\ntied-sale companions of the best seller ({name}):");
        for (item, n) in miner.companions(&store, top_item, 5) {
            let cname = store
                .catalog()
                .get(item)
                .map(|m| m.name.clone())
                .unwrap_or_default();
            println!("  bought together {n:>2}x  {cname}");
        }
    }

    // -- consumer community graph (§5.2 item 3) ---------------------------
    let graph = CommunityGraph::build(&store, &SimilarityConfig::default(), 0.3);
    let communities = graph.communities();
    println!(
        "\ncommunity graph: {} connected consumers in {} communities",
        graph.len(),
        communities.len()
    );
    for (i, community) in communities.iter().enumerate() {
        // verify against the generator's latent clusters
        let clusters: std::collections::BTreeSet<usize> = community
            .iter()
            .filter_map(|c| w.population.truth(*c).map(|t| t.cluster))
            .collect();
        println!(
            "  community {}: {} members, latent clusters represented: {:?}",
            i + 1,
            community.len(),
            clusters
        );
    }
    println!(
        "\nwhen each community maps onto one latent cluster, the similarity\n\
         graph has recovered the population structure the generator hid."
    );
}
