//! Auction house: several consumers' MBAs compete in an English auction
//! on a marketplace (the third trading service of §3.2), demonstrating
//! the Fig 4.3 auction workflow with real inter-agent bidding.
//!
//! ```bash
//! cargo run --example auction_house
//! ```

use abcrm::core::agents::msg::ResponseBody;
use abcrm::core::profile::ConsumerId;
use abcrm::core::server::{listing, Platform};
use abcrm::ecp::merchandise::{ItemId, Money};
use agentsim::clock::SimDuration;

fn main() {
    let mut platform = Platform::builder(1001)
        .marketplaces(vec![vec![
            listing(
                1,
                "Signed First Edition",
                "books",
                "collectibles",
                100,
                &[("rare", 1.0)],
            ),
            listing(
                2,
                "Vintage Pressing",
                "music",
                "collectibles",
                80,
                &[("rare", 1.0)],
            ),
        ]])
        .build();

    // Three bidders with different limits.
    let bidders = [
        (ConsumerId(1), Money::from_units(120)),
        (ConsumerId(2), Money::from_units(150)),
        (ConsumerId(3), Money::from_units(135)),
    ];
    for (consumer, _) in &bidders {
        platform.login(*consumer);
    }

    // The seller opens an auction with a $50 reserve, $1 increments.
    platform.open_auction(
        0,
        ItemId(1),
        Money::from_units(50),
        Money::from_units(1),
        SimDuration::from_secs(60),
    );
    println!("auction opened on item-1: reserve $50, increment $1, 60s\n");

    // Queue all three auction tasks before letting the world run, so
    // the MBAs genuinely bid against each other at the marketplace.
    let market = platform.markets()[0];
    for (consumer, limit) in &bidders {
        platform.submit_task(
            *consumer,
            abcrm::core::agents::msg::ConsumerTask::Auction {
                item: ItemId(1),
                market,
                limit: *limit,
            },
        );
    }
    for (consumer, response) in platform.run_and_drain() {
        match response {
            ResponseBody::AuctionResult { item, won, price } => {
                println!(
                    "{consumer}: auction over for {} — won={won}, price={:?}",
                    item.name,
                    price.map(|p| p.to_string())
                );
            }
            ResponseBody::Error(e) => println!("{consumer}: error: {e}"),
            _ => {}
        }
    }

    // Whoever joined before the deadline got results above. Show the
    // authoritative marketplace ledger and the platform trace.
    println!("\n--- auction-related trace ---");
    for e in platform.world().trace().events() {
        if e.label.contains("auction") {
            println!("  [{}] {}", e.at, e.label);
        }
    }

    let m = platform.world().metrics();
    println!(
        "\nmetrics: {} migrations (MBA hops), {} deactivations (BRAs parked), {} messages",
        m.migrations, m.deactivations, m.messages_delivered
    );
    println!(
        "note: each consumer's BRA was deactivated to stable storage while\n\
         their MBA sat at the marketplace bidding — §4.1 principle 3."
    );
}
